// A replicated key-value store with multiple concurrent legacy clients.
//
// Demonstrates the service-integration surface (§III-E): KvService
// implements the four Service methods (classify / execute / checkpoint /
// restore) and nothing else — the same class runs unreplicated, under
// the baseline, or behind Troxies. Here three clients hammer it through
// different contact replicas while a fourth audits the results.
//
// Run:  ./build/examples/kv_store
#include <cstdio>
#include <string>

#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"

using namespace troxy;
using apps::KvService;

int main() {
    bench::TroxyCluster::Params params;
    params.base.seed = 77;
    params.service = []() { return std::make_unique<KvService>(); };
    params.classifier = [](ByteView request) {
        return KvService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));

    // Three writers, each connected to a different replica's Troxy.
    auto& alice = cluster.add_client(0);
    auto& bob = cluster.add_client(1);
    auto& carol = cluster.add_client(2);

    int writes_done = 0;
    auto put = [&](troxy_core::LegacyClient& client, std::string key,
                   std::string value) {
        client.send(KvService::make_put(key, value),
                    [&writes_done](Bytes) { ++writes_done; });
    };

    alice.start([&]() {
        put(alice, "user:alice", "online");
        put(alice, "doc:readme", "v1");
    });
    bob.start([&]() {
        put(bob, "user:bob", "online");
        put(bob, "doc:readme", "v2");  // races with alice's write
    });
    carol.start([&]() { put(carol, "user:carol", "away"); });

    cluster.simulator().run_until(sim::seconds(5));
    std::printf("writes acknowledged: %d/5\n\n", writes_done);

    // An auditor connects afterwards and scans — every client sees the
    // same linearized outcome regardless of contact replica.
    auto& auditor = cluster.add_client();
    auditor.start([&]() {
        auditor.send(KvService::make_scan("user:"), [&](Bytes listing) {
            Reader r(listing);
            const std::uint32_t count = r.u32();
            std::printf("scan user:* → %u keys\n", count);
            for (std::uint32_t i = 0; i < count; ++i) {
                std::printf("  %s\n", r.str().c_str());
            }
            auditor.send(KvService::make_get("doc:readme"),
                         [&](Bytes value) {
                             std::printf(
                                 "\ndoc:readme = \"%s\" (the later of the "
                                 "two racing writes, on every replica)\n",
                                 to_string(value).c_str());
                         });
        });
    });
    cluster.simulator().run_until(sim::seconds(10));

    // All replicas hold identical state.
    const Bytes reference = cluster.host(0).replica().service().checkpoint();
    bool consistent = true;
    for (int r = 1; r < cluster.n(); ++r) {
        consistent &=
            cluster.host(r).replica().service().checkpoint() == reference;
    }
    std::printf("replica states identical: %s\n",
                consistent ? "yes" : "NO");
    return consistent ? 0 : 1;
}
