// Quickstart: a BFT-replicated echo service, a completely BFT-unaware
// client, and five lines of interaction.
//
// What this demonstrates (the paper's core claim): the client below only
// knows (a) a server address list from its "location service" and (b) a
// TLS-like secure channel. It never votes, never sees a replica identity,
// never holds a BFT key — yet every reply it receives is backed by f+1
// matching, Troxy-authenticated replica replies.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"

using namespace troxy;
using apps::EchoService;

int main() {
    // 1. Deploy a Troxy-backed cluster: 2f+1 = 3 replicas, each hosting
    //    an untrusted Hybster replica plus a trusted Troxy enclave. The
    //    trusted subsystems attest to the deployment authority and are
    //    provisioned with the shared group key during construction.
    bench::TroxyCluster::Params params;
    params.base.seed = 2026;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));

    // 2. A legacy client. It connects to exactly one server over a secure
    //    channel — like talking to any ordinary web service.
    auto& client = cluster.add_client();

    std::printf("quickstart: %d replicas (f = %d), 1 legacy client\n\n",
                cluster.n(), cluster.config().f);

    // 3. Issue a write followed by reads. The Troxy orders the write
    //    through the BFT protocol, votes over the replies, and answers
    //    the reads from its managed cache after the first one.
    client.start([&]() {
        client.send(EchoService::make_write(7, 128), [&](Bytes ack) {
            std::printf("write acknowledged (%zu-byte ack)\n", ack.size());
            client.send(EchoService::make_read(7, 32, 256), [&](Bytes r1) {
                const bool correct =
                    r1 == EchoService::expected_read_reply(7, 1, 256);
                std::printf("read #1: %zu bytes, %s (ordered, fills the "
                            "cache)\n",
                            r1.size(), correct ? "correct" : "WRONG");
                client.send(
                    EchoService::make_read(7, 32, 256), [&](Bytes r2) {
                        const bool also_correct =
                            r2 ==
                            EchoService::expected_read_reply(7, 1, 256);
                        std::printf("read #2: %zu bytes, %s (fast-read "
                                    "path)\n",
                                    r2.size(),
                                    also_correct ? "correct" : "WRONG");
                    });
            });
        });
    });

    cluster.simulator().run_until(sim::seconds(5));

    // 4. What happened behind the curtain.
    std::printf("\nbehind the transparent facade:\n");
    for (int r = 0; r < cluster.n(); ++r) {
        const auto status = cluster.host(r).troxy().status();
        std::printf(
            "  replica %d: executed %llu requests, troxy ordered %llu, "
            "fast-read hits %llu, enclave transitions %llu\n",
            r,
            static_cast<unsigned long long>(
                cluster.host(r).replica().last_executed()),
            static_cast<unsigned long long>(status.ordered_requests),
            static_cast<unsigned long long>(status.fast_read_hits),
            static_cast<unsigned long long>(status.enclave_transitions));
    }
    std::printf("\nthe client never saw any of it.\n");
    return 0;
}
