// Fault injection tour: the §VI-B security analysis, live.
//
// Each scene injects one misbehaviour into the untrusted part of a
// replica and shows what the legacy client experiences: nothing but
// correct results (and occasionally a reconnect).
//
// Run:  ./build/examples/fault_injection
#include <cstdio>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"

using namespace troxy;
using apps::EchoService;

namespace {

bench::TroxyCluster::Params make_params(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.vote_timeout = sim::milliseconds(500);
    return params;
}

}  // namespace

int main() {
    std::printf("=== scene 1: a replica lies about results ===\n");
    {
        bench::TroxyCluster cluster(make_params(1));
        hybster::FaultProfile corrupt;
        corrupt.corrupt_replies = true;
        cluster.host(2).replica().set_faults(corrupt);

        auto& client = cluster.add_client(0);
        client.start([&]() {
            client.send(EchoService::make_write(1, 64), [&](Bytes) {
                client.send(EchoService::make_read(1, 32, 128),
                            [&](Bytes reply) {
                    const bool correct =
                        reply == EchoService::expected_read_reply(1, 1, 128);
                    std::printf("  client read: %s — the voter needed f+1 "
                                "matching Troxy-authenticated replies, so "
                                "the liar was outvoted\n",
                                correct ? "correct" : "WRONG");
                });
            });
        });
        cluster.simulator().run_until(sim::seconds(10));
        std::printf("  rejected replies at contact troxy: %llu\n",
                    static_cast<unsigned long long>(
                        cluster.host(0).troxy().status().rejected_replies));
    }

    std::printf("\n=== scene 2: stale-cache performance attack ===\n");
    {
        bench::TroxyCluster cluster(make_params(2));
        auto& client = cluster.add_client(0);

        // Warm the caches, then replica 2 stops maintaining its Troxy.
        int phase = 0;
        client.start([&]() {
            client.send(EchoService::make_write(1, 64), [&](Bytes) {
                client.send(EchoService::make_read(1, 32, 64),
                            [&](Bytes) { phase = 1; });
            });
        });
        cluster.simulator().run_until(sim::seconds(5));

        hybster::FaultProfile silent;
        silent.drop_replies = true;
        cluster.host(2).replica().set_faults(silent);

        client.send(EchoService::make_write(1, 64), [&](Bytes) {
            phase = 2;
        });
        cluster.simulator().run_until(sim::seconds(10));

        int correct = 0;
        for (int i = 0; i < 6; ++i) {
            client.send(EchoService::make_read(1, 32, 64),
                        [&correct](Bytes reply) {
                            if (reply == EchoService::expected_read_reply(
                                             1, 2, 64)) {
                                ++correct;
                            }
                        });
        }
        cluster.simulator().run_until(sim::seconds(30));
        const auto status = cluster.host(0).troxy().status();
        std::printf("  6/6 reads returned the latest write: %s\n",
                    correct == 6 ? "yes" : "NO");
        std::printf("  fast-read conflicts handled by fallback: %llu "
                    "(slower, never wrong)\n",
                    static_cast<unsigned long long>(
                        status.fast_read_conflicts));
    }

    std::printf("\n=== scene 3: the leader crashes ===\n");
    {
        bench::TroxyCluster cluster(make_params(3));
        auto& client = cluster.add_client(1);  // contact a follower

        bool before = false, after = false;
        client.start([&]() {
            client.send(EchoService::make_write(5, 64),
                        [&](Bytes) { before = true; });
        });
        cluster.simulator().run_until(sim::seconds(5));

        hybster::FaultProfile crash;
        crash.crashed = true;
        cluster.host(0).set_faults(crash);  // the view-0 leader

        client.send(EchoService::make_write(5, 64),
                    [&](Bytes) { after = true; });
        cluster.simulator().run_until(sim::seconds(40));
        std::printf("  write before crash: %s, write after crash: %s\n",
                    before ? "ok" : "LOST", after ? "ok" : "LOST");
        std::printf("  replica 1 is now in view %llu (view change ran "
                    "behind the scenes)\n",
                    static_cast<unsigned long long>(
                        cluster.host(1).replica().view()));
    }

    std::printf("\n=== scene 4: enclave reboot (rollback attack) ===\n");
    {
        bench::TroxyCluster cluster(make_params(4));
        auto& client = cluster.add_client(0);

        int phase = 0;
        client.start([&]() {
            client.send(EchoService::make_write(9, 64), [&](Bytes) {
                client.send(EchoService::make_read(9, 32, 64),
                            [&](Bytes) { phase = 1; });
            });
        });
        cluster.simulator().run_until(sim::seconds(5));

        cluster.host(0).troxy().restart();
        std::printf("  troxy restarted: cache entries now %zu — the cache "
                    "cannot be rolled back to a stale state, it can only "
                    "start empty (§IV-B)\n",
                    cluster.host(0).troxy().status().cache_entries);

        client.send(EchoService::make_read(9, 32, 64), [&](Bytes reply) {
            const bool correct =
                reply == EchoService::expected_read_reply(9, 1, 64);
            std::printf("  read after restart: %s (served by ordering, "
                        "after the client's transparent reconnect)\n",
                        correct ? "correct" : "WRONG");
            phase = 2;
        });
        cluster.simulator().run_until(sim::seconds(30));
        (void)phase;
    }

    std::printf("\nall scenes complete: the legacy client never saw a "
                "wrong result.\n");
    return 0;
}
