// A Byzantine fault-tolerant web service behind plain HTTPS (§VI-D).
//
// The page store is replicated over 2f+1 Hybster replicas; the "browser"
// below speaks ordinary HTTP/1.1 over a secure channel to one server.
// GETs are served by the Troxy fast-read cache, POSTs are ordered; a
// crashed contact server is handled by the client's ordinary reconnect
// logic — no browser would need a plugin for any of this.
//
// Run:  ./build/examples/http_service
#include <cstdio>

#include "bench_support/cluster.hpp"
#include "http/http.hpp"
#include "http/page_service.hpp"

using namespace troxy;
using http::PageService;

namespace {

void show(const char* what, const Bytes& raw_response) {
    const auto response = http::parse_response(raw_response);
    if (!response) {
        std::printf("%-28s <unparseable>\n", what);
        return;
    }
    std::printf("%-28s HTTP %d, %zu-byte body\n", what, response->status,
                response->body.size());
}

}  // namespace

int main() {
    bench::TroxyCluster::Params params;
    params.base.seed = 8080;
    params.service = []() { return std::make_unique<PageService>(16); };
    params.classifier = PageService::classifier();
    bench::TroxyCluster cluster(std::move(params));

    auto& browser = cluster.add_client();
    std::printf("BFT web service on %d replicas; browsing…\n\n",
                cluster.n());

    browser.start([&]() {
        browser.send(PageService::make_get(3), [&](Bytes response) {
            show("GET /page/3", response);
            browser.send(
                PageService::make_post(3, to_bytes("<h1>edited</h1>")),
                [&](Bytes post_response) {
                    show("POST /page/3", post_response);
                    browser.send(PageService::make_get(3), [&](Bytes fresh) {
                        show("GET /page/3 (after edit)", fresh);
                        const auto parsed = http::parse_response(fresh);
                        std::printf(
                            "%-28s %s\n", "  body is the new content:",
                            parsed && to_string(parsed->body) ==
                                          "<h1>edited</h1>"
                                ? "yes"
                                : "NO");
                        browser.send(PageService::make_get(99),
                                     [&](Bytes missing) {
                                         show("GET /page/99", missing);
                                     });
                    });
                });
        });
    });
    cluster.simulator().run_until(sim::seconds(5));

    // Crash the browser's contact server; the next request rides the
    // client's ordinary failover (§III-D) to another Troxy.
    std::printf("\ncrashing the contact server…\n");
    hybster::FaultProfile crash;
    crash.crashed = true;
    const int contact = cluster.config().replica_of(browser.current_server());
    cluster.host(contact).set_faults(crash);

    browser.send(PageService::make_get(3), [&](Bytes after_failover) {
        show("GET /page/3 (failover)", after_failover);
    });
    cluster.simulator().run_until(sim::seconds(30));
    std::printf("client failovers: %llu — transparent to the \"browser\"\n",
                static_cast<unsigned long long>(browser.failovers()));
    return 0;
}
