# Empty dependencies file for bench_fig8_reads_local.
# This may be replaced when dependencies are built.
