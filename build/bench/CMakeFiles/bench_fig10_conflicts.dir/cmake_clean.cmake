file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_conflicts.dir/bench_fig10_conflicts.cpp.o"
  "CMakeFiles/bench_fig10_conflicts.dir/bench_fig10_conflicts.cpp.o.d"
  "bench_fig10_conflicts"
  "bench_fig10_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
