# Empty dependencies file for bench_fig10_conflicts.
# This may be replaced when dependencies are built.
