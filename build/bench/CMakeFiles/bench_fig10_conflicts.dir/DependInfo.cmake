
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_conflicts.cpp" "bench/CMakeFiles/bench_fig10_conflicts.dir/bench_fig10_conflicts.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_conflicts.dir/bench_fig10_conflicts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/troxy_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/troxy_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/troxy_http.dir/DependInfo.cmake"
  "/root/repo/build/src/troxy/CMakeFiles/troxy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/troxy_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hybster/CMakeFiles/troxy_hybster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/troxy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/troxy_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/troxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/troxy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/troxy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
