# Empty dependencies file for bench_fig11_http.
# This may be replaced when dependencies are built.
