file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_http.dir/bench_fig11_http.cpp.o"
  "CMakeFiles/bench_fig11_http.dir/bench_fig11_http.cpp.o.d"
  "bench_fig11_http"
  "bench_fig11_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
