file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ordered_local.dir/bench_fig6_ordered_local.cpp.o"
  "CMakeFiles/bench_fig6_ordered_local.dir/bench_fig6_ordered_local.cpp.o.d"
  "bench_fig6_ordered_local"
  "bench_fig6_ordered_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ordered_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
