# Empty dependencies file for bench_fig6_ordered_local.
# This may be replaced when dependencies are built.
