# Empty compiler generated dependencies file for bench_ablation_ecall.
# This may be replaced when dependencies are built.
