file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ecall.dir/bench_ablation_ecall.cpp.o"
  "CMakeFiles/bench_ablation_ecall.dir/bench_ablation_ecall.cpp.o.d"
  "bench_ablation_ecall"
  "bench_ablation_ecall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
