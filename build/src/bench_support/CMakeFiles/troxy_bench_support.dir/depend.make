# Empty dependencies file for troxy_bench_support.
# This may be replaced when dependencies are built.
