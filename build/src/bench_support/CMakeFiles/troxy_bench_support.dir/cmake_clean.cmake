file(REMOVE_RECURSE
  "CMakeFiles/troxy_bench_support.dir/cluster.cpp.o"
  "CMakeFiles/troxy_bench_support.dir/cluster.cpp.o.d"
  "CMakeFiles/troxy_bench_support.dir/experiments.cpp.o"
  "CMakeFiles/troxy_bench_support.dir/experiments.cpp.o.d"
  "CMakeFiles/troxy_bench_support.dir/stats.cpp.o"
  "CMakeFiles/troxy_bench_support.dir/stats.cpp.o.d"
  "CMakeFiles/troxy_bench_support.dir/workload.cpp.o"
  "CMakeFiles/troxy_bench_support.dir/workload.cpp.o.d"
  "libtroxy_bench_support.a"
  "libtroxy_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
