file(REMOVE_RECURSE
  "libtroxy_bench_support.a"
)
