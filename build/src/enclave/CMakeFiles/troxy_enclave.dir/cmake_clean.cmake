file(REMOVE_RECURSE
  "CMakeFiles/troxy_enclave.dir/attestation.cpp.o"
  "CMakeFiles/troxy_enclave.dir/attestation.cpp.o.d"
  "CMakeFiles/troxy_enclave.dir/gate.cpp.o"
  "CMakeFiles/troxy_enclave.dir/gate.cpp.o.d"
  "CMakeFiles/troxy_enclave.dir/meter.cpp.o"
  "CMakeFiles/troxy_enclave.dir/meter.cpp.o.d"
  "CMakeFiles/troxy_enclave.dir/sealed.cpp.o"
  "CMakeFiles/troxy_enclave.dir/sealed.cpp.o.d"
  "CMakeFiles/troxy_enclave.dir/trinx.cpp.o"
  "CMakeFiles/troxy_enclave.dir/trinx.cpp.o.d"
  "libtroxy_enclave.a"
  "libtroxy_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
