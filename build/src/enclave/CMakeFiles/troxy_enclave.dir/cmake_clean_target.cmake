file(REMOVE_RECURSE
  "libtroxy_enclave.a"
)
