# Empty dependencies file for troxy_enclave.
# This may be replaced when dependencies are built.
