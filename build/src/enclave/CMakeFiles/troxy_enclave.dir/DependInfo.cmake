
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enclave/attestation.cpp" "src/enclave/CMakeFiles/troxy_enclave.dir/attestation.cpp.o" "gcc" "src/enclave/CMakeFiles/troxy_enclave.dir/attestation.cpp.o.d"
  "/root/repo/src/enclave/gate.cpp" "src/enclave/CMakeFiles/troxy_enclave.dir/gate.cpp.o" "gcc" "src/enclave/CMakeFiles/troxy_enclave.dir/gate.cpp.o.d"
  "/root/repo/src/enclave/meter.cpp" "src/enclave/CMakeFiles/troxy_enclave.dir/meter.cpp.o" "gcc" "src/enclave/CMakeFiles/troxy_enclave.dir/meter.cpp.o.d"
  "/root/repo/src/enclave/sealed.cpp" "src/enclave/CMakeFiles/troxy_enclave.dir/sealed.cpp.o" "gcc" "src/enclave/CMakeFiles/troxy_enclave.dir/sealed.cpp.o.d"
  "/root/repo/src/enclave/trinx.cpp" "src/enclave/CMakeFiles/troxy_enclave.dir/trinx.cpp.o" "gcc" "src/enclave/CMakeFiles/troxy_enclave.dir/trinx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/troxy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/troxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/troxy_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
