# Empty compiler generated dependencies file for troxy_core.
# This may be replaced when dependencies are built.
