file(REMOVE_RECURSE
  "libtroxy_core.a"
)
