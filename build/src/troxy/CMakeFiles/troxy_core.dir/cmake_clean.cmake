file(REMOVE_RECURSE
  "CMakeFiles/troxy_core.dir/cache.cpp.o"
  "CMakeFiles/troxy_core.dir/cache.cpp.o.d"
  "CMakeFiles/troxy_core.dir/cache_messages.cpp.o"
  "CMakeFiles/troxy_core.dir/cache_messages.cpp.o.d"
  "CMakeFiles/troxy_core.dir/enclave.cpp.o"
  "CMakeFiles/troxy_core.dir/enclave.cpp.o.d"
  "CMakeFiles/troxy_core.dir/host.cpp.o"
  "CMakeFiles/troxy_core.dir/host.cpp.o.d"
  "CMakeFiles/troxy_core.dir/legacy_client.cpp.o"
  "CMakeFiles/troxy_core.dir/legacy_client.cpp.o.d"
  "libtroxy_core.a"
  "libtroxy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
