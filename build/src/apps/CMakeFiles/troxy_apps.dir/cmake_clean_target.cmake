file(REMOVE_RECURSE
  "libtroxy_apps.a"
)
