# Empty dependencies file for troxy_apps.
# This may be replaced when dependencies are built.
