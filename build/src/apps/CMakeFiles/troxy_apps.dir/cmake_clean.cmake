file(REMOVE_RECURSE
  "CMakeFiles/troxy_apps.dir/echo_service.cpp.o"
  "CMakeFiles/troxy_apps.dir/echo_service.cpp.o.d"
  "CMakeFiles/troxy_apps.dir/kv_service.cpp.o"
  "CMakeFiles/troxy_apps.dir/kv_service.cpp.o.d"
  "CMakeFiles/troxy_apps.dir/mail_service.cpp.o"
  "CMakeFiles/troxy_apps.dir/mail_service.cpp.o.d"
  "libtroxy_apps.a"
  "libtroxy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
