file(REMOVE_RECURSE
  "CMakeFiles/troxy_crypto.dir/aead.cpp.o"
  "CMakeFiles/troxy_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/troxy_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/troxy_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/troxy_crypto.dir/fastmode.cpp.o"
  "CMakeFiles/troxy_crypto.dir/fastmode.cpp.o.d"
  "CMakeFiles/troxy_crypto.dir/hmac.cpp.o"
  "CMakeFiles/troxy_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/troxy_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/troxy_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/troxy_crypto.dir/sha256.cpp.o"
  "CMakeFiles/troxy_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/troxy_crypto.dir/x25519.cpp.o"
  "CMakeFiles/troxy_crypto.dir/x25519.cpp.o.d"
  "libtroxy_crypto.a"
  "libtroxy_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
