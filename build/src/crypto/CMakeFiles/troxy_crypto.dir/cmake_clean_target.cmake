file(REMOVE_RECURSE
  "libtroxy_crypto.a"
)
