# Empty dependencies file for troxy_crypto.
# This may be replaced when dependencies are built.
