file(REMOVE_RECURSE
  "CMakeFiles/troxy_hybster.dir/client.cpp.o"
  "CMakeFiles/troxy_hybster.dir/client.cpp.o.d"
  "CMakeFiles/troxy_hybster.dir/messages.cpp.o"
  "CMakeFiles/troxy_hybster.dir/messages.cpp.o.d"
  "CMakeFiles/troxy_hybster.dir/replica.cpp.o"
  "CMakeFiles/troxy_hybster.dir/replica.cpp.o.d"
  "libtroxy_hybster.a"
  "libtroxy_hybster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_hybster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
