file(REMOVE_RECURSE
  "libtroxy_hybster.a"
)
