# Empty dependencies file for troxy_hybster.
# This may be replaced when dependencies are built.
