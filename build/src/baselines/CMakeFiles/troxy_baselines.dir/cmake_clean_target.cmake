file(REMOVE_RECURSE
  "libtroxy_baselines.a"
)
