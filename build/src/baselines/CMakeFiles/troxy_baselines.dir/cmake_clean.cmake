file(REMOVE_RECURSE
  "CMakeFiles/troxy_baselines.dir/baseline_host.cpp.o"
  "CMakeFiles/troxy_baselines.dir/baseline_host.cpp.o.d"
  "CMakeFiles/troxy_baselines.dir/pbft.cpp.o"
  "CMakeFiles/troxy_baselines.dir/pbft.cpp.o.d"
  "CMakeFiles/troxy_baselines.dir/prophecy.cpp.o"
  "CMakeFiles/troxy_baselines.dir/prophecy.cpp.o.d"
  "libtroxy_baselines.a"
  "libtroxy_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
