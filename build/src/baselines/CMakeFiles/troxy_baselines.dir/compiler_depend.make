# Empty compiler generated dependencies file for troxy_baselines.
# This may be replaced when dependencies are built.
