file(REMOVE_RECURSE
  "CMakeFiles/troxy_sim.dir/cost.cpp.o"
  "CMakeFiles/troxy_sim.dir/cost.cpp.o.d"
  "CMakeFiles/troxy_sim.dir/network.cpp.o"
  "CMakeFiles/troxy_sim.dir/network.cpp.o.d"
  "CMakeFiles/troxy_sim.dir/node.cpp.o"
  "CMakeFiles/troxy_sim.dir/node.cpp.o.d"
  "CMakeFiles/troxy_sim.dir/simulator.cpp.o"
  "CMakeFiles/troxy_sim.dir/simulator.cpp.o.d"
  "libtroxy_sim.a"
  "libtroxy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
