file(REMOVE_RECURSE
  "libtroxy_sim.a"
)
