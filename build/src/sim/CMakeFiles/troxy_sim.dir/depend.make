# Empty dependencies file for troxy_sim.
# This may be replaced when dependencies are built.
