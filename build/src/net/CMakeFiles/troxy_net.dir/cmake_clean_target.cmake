file(REMOVE_RECURSE
  "libtroxy_net.a"
)
