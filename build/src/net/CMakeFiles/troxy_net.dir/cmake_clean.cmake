file(REMOVE_RECURSE
  "CMakeFiles/troxy_net.dir/fabric.cpp.o"
  "CMakeFiles/troxy_net.dir/fabric.cpp.o.d"
  "CMakeFiles/troxy_net.dir/mac_table.cpp.o"
  "CMakeFiles/troxy_net.dir/mac_table.cpp.o.d"
  "CMakeFiles/troxy_net.dir/secure_channel.cpp.o"
  "CMakeFiles/troxy_net.dir/secure_channel.cpp.o.d"
  "libtroxy_net.a"
  "libtroxy_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
