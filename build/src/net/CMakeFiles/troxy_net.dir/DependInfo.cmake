
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/troxy_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/troxy_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/mac_table.cpp" "src/net/CMakeFiles/troxy_net.dir/mac_table.cpp.o" "gcc" "src/net/CMakeFiles/troxy_net.dir/mac_table.cpp.o.d"
  "/root/repo/src/net/secure_channel.cpp" "src/net/CMakeFiles/troxy_net.dir/secure_channel.cpp.o" "gcc" "src/net/CMakeFiles/troxy_net.dir/secure_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/troxy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/troxy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/troxy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/troxy_enclave.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
