# Empty compiler generated dependencies file for troxy_net.
# This may be replaced when dependencies are built.
