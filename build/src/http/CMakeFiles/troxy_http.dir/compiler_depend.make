# Empty compiler generated dependencies file for troxy_http.
# This may be replaced when dependencies are built.
