file(REMOVE_RECURSE
  "libtroxy_http.a"
)
