file(REMOVE_RECURSE
  "CMakeFiles/troxy_http.dir/http.cpp.o"
  "CMakeFiles/troxy_http.dir/http.cpp.o.d"
  "CMakeFiles/troxy_http.dir/page_service.cpp.o"
  "CMakeFiles/troxy_http.dir/page_service.cpp.o.d"
  "CMakeFiles/troxy_http.dir/standalone_server.cpp.o"
  "CMakeFiles/troxy_http.dir/standalone_server.cpp.o.d"
  "libtroxy_http.a"
  "libtroxy_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
