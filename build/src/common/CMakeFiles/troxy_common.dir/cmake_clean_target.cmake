file(REMOVE_RECURSE
  "libtroxy_common.a"
)
