# Empty compiler generated dependencies file for troxy_common.
# This may be replaced when dependencies are built.
