file(REMOVE_RECURSE
  "CMakeFiles/troxy_common.dir/bytes.cpp.o"
  "CMakeFiles/troxy_common.dir/bytes.cpp.o.d"
  "CMakeFiles/troxy_common.dir/log.cpp.o"
  "CMakeFiles/troxy_common.dir/log.cpp.o.d"
  "CMakeFiles/troxy_common.dir/rng.cpp.o"
  "CMakeFiles/troxy_common.dir/rng.cpp.o.d"
  "libtroxy_common.a"
  "libtroxy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troxy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
