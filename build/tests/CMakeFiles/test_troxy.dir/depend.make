# Empty dependencies file for test_troxy.
# This may be replaced when dependencies are built.
