file(REMOVE_RECURSE
  "CMakeFiles/test_troxy.dir/test_troxy.cpp.o"
  "CMakeFiles/test_troxy.dir/test_troxy.cpp.o.d"
  "test_troxy"
  "test_troxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_troxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
