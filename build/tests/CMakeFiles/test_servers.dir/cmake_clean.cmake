file(REMOVE_RECURSE
  "CMakeFiles/test_servers.dir/test_servers.cpp.o"
  "CMakeFiles/test_servers.dir/test_servers.cpp.o.d"
  "test_servers"
  "test_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
