file(REMOVE_RECURSE
  "CMakeFiles/test_hybster.dir/test_hybster.cpp.o"
  "CMakeFiles/test_hybster.dir/test_hybster.cpp.o.d"
  "test_hybster"
  "test_hybster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
