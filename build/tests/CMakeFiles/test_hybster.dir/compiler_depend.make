# Empty compiler generated dependencies file for test_hybster.
# This may be replaced when dependencies are built.
