file(REMOVE_RECURSE
  "CMakeFiles/test_enclave.dir/test_enclave.cpp.o"
  "CMakeFiles/test_enclave.dir/test_enclave.cpp.o.d"
  "test_enclave"
  "test_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
