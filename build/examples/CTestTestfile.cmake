# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_http_service "/root/repo/build/examples/http_service")
set_tests_properties(example_http_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/kv_store")
set_tests_properties(example_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_injection "/root/repo/build/examples/fault_injection")
set_tests_properties(example_fault_injection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
