# Empty dependencies file for http_service.
# This may be replaced when dependencies are built.
