file(REMOVE_RECURSE
  "CMakeFiles/http_service.dir/http_service.cpp.o"
  "CMakeFiles/http_service.dir/http_service.cpp.o.d"
  "http_service"
  "http_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
