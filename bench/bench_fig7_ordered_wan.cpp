// Figure 7 (§VI-C1): totally ordered write requests with a simulated
// wide-area network (100 ± 20 ms on the client links).
//
// Paper shape: the server-side reply voter lets a Troxy client wait for a
// single WAN reply instead of f+1, giving Troxy up to 60-70% higher
// throughput. Our transport model reproduces the single-reply effect
// (order statistics of reply arrivals) but not the TCP-under-jitter
// retransmission dynamics of the testbed, so the measured gap is smaller;
// see EXPERIMENTS.md for the discussion.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Figure 7: totally ordered requests, WAN clients\n");
    std::printf("(writes of varying size, 10 B replies, closed loop,\n");
    std::printf(" 100±20 ms client links)\n");

    for (const std::size_t size : {256u, 1024u, 4096u, 8192u}) {
        MicroParams params;
        params.read_workload = false;
        params.request_size = size;
        params.wan = true;
        params.clients = 100;
        params.pipeline = 96;
        params.warmup = troxy::sim::milliseconds(1000);
        params.window = troxy::sim::seconds(2);

        std::vector<Row> rows;
        for (const SystemKind system :
             {SystemKind::Baseline, SystemKind::CTroxy,
              SystemKind::ETroxy}) {
            rows.push_back(run_micro(system, params).row);
        }
        print_table("request size " + std::to_string(size) + " B (WAN)",
                    rows);
    }
    return 0;
}
