// Ablation: fast-read cache design knobs.
//
// Two sweeps at a contended mixed workload (95% reads / 5% writes):
//   1. miss-rate threshold of the adaptive monitor — too low flips to
//      total-order mode prematurely, too high burns fast-read attempts
//      that mostly conflict;
//   2. write fraction — shows where the fast path stops paying off,
//      motivating the §IV-B automatic switch.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    MicroParams base;
    base.read_workload = true;
    base.reply_size = 1024;
    base.key_count = 4;
    base.clients = 64;
    base.pipeline = 8;

    {
        std::printf("Ablation 1: write-fraction sweep "
                    "(fast reads, adaptive off)\n");
        std::vector<Row> rows;
        for (const double writes : {0.0, 0.01, 0.05, 0.10, 0.25}) {
            MicroParams params = base;
            params.write_fraction = writes;
            params.adaptive_monitor = false;
            MicroResult result = run_micro(SystemKind::ETroxy, params);
            result.row.label =
                "writes " + std::to_string(static_cast<int>(writes * 100)) +
                "% (conflict " +
                std::to_string(
                    static_cast<int>(100 * result.conflict_rate())) +
                "%)";
            rows.push_back(result.row);
        }
        print_table("write fraction", rows);
    }

    {
        std::printf("\nAblation 2: miss-threshold sweep "
                    "(10%% writes, adaptive on)\n");
        std::vector<Row> rows;
        for (const double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            MicroParams params = base;
            params.write_fraction = 0.10;
            params.adaptive_monitor = true;
            params.monitor_threshold = threshold;
            MicroResult result = run_micro(SystemKind::ETroxy, params);
            result.row.label =
                "threshold " +
                std::to_string(static_cast<int>(threshold * 100)) +
                "% (switches " + std::to_string(result.mode_switches) + ")";
            rows.push_back(result.row);
        }
        print_table("miss threshold", rows);
    }
    return 0;
}
