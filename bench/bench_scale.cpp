// Simulator-engine scale benchmark: calendar-queue scheduler + slab/arena
// allocation vs the original binary-heap/std::function engine, and an
// open-loop million-client sweep over a full Troxy cluster.
//
// Two parts:
//
//   1. Engine microbench — the seed engine (std::priority_queue of events
//      whose callbacks are std::function closures, one heap allocation
//      per scheduled event plus a payload vector per message) is
//      reimplemented here verbatim as the "before"; the "after" is the
//      production Simulator (calendar queue, slab event nodes, 48-byte
//      inline callbacks, pooled payload buffers). Both run the same
//      self-rescheduling timer population; we report events/sec and
//      allocations/event. CI gates the speedup (>= 3x) and the allocation
//      ratio (>= 10x).
//
//   2. Scale sweep — {1e4, 1e5, 1e6} virtual clients x {uniform,
//      zipf-0.99} keys driven by the OpenLoopSuite against a ctroxy
//      TroxyCluster: ONE aggregate-rate Poisson arrival chain fans the
//      population over a bounded set of physical sessions (O(rate)
//      timers, not O(clients)), with connection churn re-handshaking
//      sessions throughout. Reports wall-clock, simulated events/sec,
//      allocations/event, p50/p99 latency, pool and scheduler counters.
//
// Flags: --smoke     engine microbench at reduced size + 1e5-client sweep
//        --out PATH  JSON output path (default BENCH_scale.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"
#include "crypto/fastmode.hpp"
#include "sim/simulator.hpp"

// ------------------------------------------------- allocation accounting
//
// Global operator new/delete overrides count every heap allocation in the
// process; deltas around a measured region give allocations/event. The
// overrides must not allocate and must pair with the matching sized /
// aligned forms.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) -
                                      1) &
                                         ~(static_cast<std::size_t>(align) -
                                           1))) {
        return p;
    }
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using namespace troxy;
using namespace troxy::bench;
namespace sim = troxy::sim;

double wall_seconds_since(
    std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

// ------------------------------------------------------ engine microbench

/// The seed engine, verbatim: a binary heap of events carrying
/// std::function callbacks, with the top event copied out on every pop.
class LegacyEngine {
  public:
    void at(std::uint64_t t, std::function<void()> fn) {
        queue_.push(Event{t, next_seq_++, std::move(fn)});
    }
    bool step() {
        if (queue_.empty()) return false;
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ev.fn();
        return true;
    }
    [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  private:
    struct Event {
        std::uint64_t time;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };
    std::uint64_t now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Deterministic per-chain gap sequence (splitmix-style), identical for
/// both engines so they execute the same timer population.
std::uint64_t next_gap(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return 500 + z % 1000000;  // 0.5 us .. 1 ms inter-event gaps
}

struct EngineResult {
    double events_per_sec = 0.0;
    double allocs_per_event = 0.0;
    double wall_s = 0.0;
};

/// The representative event shape: each firing consumes a wire-sized
/// payload, then schedules its chain's successor carrying a fresh one —
/// the message cycle of the old Network/Fabric path.
EngineResult run_legacy_engine(std::size_t chains, std::uint64_t events) {
    LegacyEngine engine;
    std::uint64_t executed = 0;
    std::uint64_t sink = 0;

    struct Chain {
        std::uint64_t rng;
    };
    std::vector<Chain> state(chains);

    std::function<void(std::size_t)> fire = [&](std::size_t chain) {
        if (executed >= events) return;
        ++executed;
        // One payload per message, one closure per schedule — both heap
        // allocations, exactly like the pre-slab engine.
        Bytes payload(256);
        payload[0] = static_cast<std::uint8_t>(chain);
        sink += payload[0];
        const std::uint64_t gap = next_gap(state[chain].rng);
        engine.at(engine.now() + gap,
                  [&fire, &sink, chain, carried = std::move(payload)]() {
                      sink += carried.size();
                      fire(chain);
                  });
    };

    for (std::size_t c = 0; c < chains; ++c) {
        state[c].rng = c * 0x1234567ull + 1;
        fire(c);
    }

    const std::uint64_t alloc_base = g_allocs.load();
    const auto start = std::chrono::steady_clock::now();
    while (engine.step()) {
    }
    EngineResult result;
    result.wall_s = wall_seconds_since(start);
    result.events_per_sec = static_cast<double>(executed) / result.wall_s;
    result.allocs_per_event =
        static_cast<double>(g_allocs.load() - alloc_base) /
        static_cast<double>(executed);
    if (sink == 0xdeadbeef) std::printf("impossible\n");
    return result;
}

EngineResult run_calendar_engine(std::size_t chains, std::uint64_t events) {
    sim::Simulator simulator(1);
    sim::BufferPool pool;
    std::uint64_t executed = 0;
    std::uint64_t sink = 0;

    struct Chain {
        std::uint64_t rng;
    };
    std::vector<Chain> state(chains);

    std::function<void(std::size_t, Bytes)> fire = [&](std::size_t chain,
                                                       Bytes payload) {
        sink += payload[0];
        pool.release(std::move(payload));
        if (executed >= events) return;
        ++executed;
        Bytes next = pool.acquire(256);
        next[0] = static_cast<std::uint8_t>(chain);
        const std::uint64_t gap = next_gap(state[chain].rng);
        // The capture (fire ref + index + Bytes) stays under the 48-byte
        // inline budget: scheduling allocates nothing once the slab and
        // pool are warm.
        simulator.after(static_cast<sim::Duration>(gap),
                        [&fire, chain, carried = std::move(next)]() mutable {
                            fire(chain, std::move(carried));
                        });
    };

    for (std::size_t c = 0; c < chains; ++c) {
        state[c].rng = c * 0x1234567ull + 1;
        ++executed;
        Bytes first = pool.acquire(256);
        first[0] = static_cast<std::uint8_t>(c);
        const std::uint64_t gap = next_gap(state[c].rng);
        simulator.after(static_cast<sim::Duration>(gap),
                        [&fire, c, carried = std::move(first)]() mutable {
                            fire(c, std::move(carried));
                        });
    }

    const std::uint64_t alloc_base = g_allocs.load();
    const auto start = std::chrono::steady_clock::now();
    simulator.run();
    const auto& st = simulator.scheduler_stats();
    std::printf(
        "    [calendar stats: %llu buckets, %llu rebuilds, %llu far, "
        "%llu direct searches, %llu inline / %llu heap callbacks, "
        "%llu node reuses / %llu allocs]\n",
        static_cast<unsigned long long>(st.buckets),
        static_cast<unsigned long long>(st.rebuilds),
        static_cast<unsigned long long>(st.far_events),
        static_cast<unsigned long long>(st.direct_searches),
        static_cast<unsigned long long>(st.inline_callbacks),
        static_cast<unsigned long long>(st.heap_callbacks),
        static_cast<unsigned long long>(st.node_reuses),
        static_cast<unsigned long long>(st.node_allocs));
    EngineResult result;
    result.wall_s = wall_seconds_since(start);
    result.events_per_sec =
        static_cast<double>(simulator.executed_events()) / result.wall_s;
    result.allocs_per_event =
        static_cast<double>(g_allocs.load() - alloc_base) /
        static_cast<double>(simulator.executed_events());
    if (sink == 0xdeadbeef) std::printf("impossible\n");
    return result;
}

// ------------------------------------------------------------ scale sweep

struct SweepCell {
    std::uint64_t virtual_clients = 0;
    std::string distribution;
    double zipf_s = 0.0;

    double wall_s = 0.0;
    double sim_events_per_sec = 0.0;
    std::uint64_t sim_events = 0;
    double allocs_per_event = 0.0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t churned = 0;
    double offered_rate = 0.0;
    double achieved_rate = 0.0;
    sim::BufferPool::Stats pool;
    sim::Simulator::SchedulerStats scheduler;
    std::uint64_t packet_reuses = 0;
    std::uint64_t packet_allocs = 0;
};

/// `rate_override` > 0 replaces the sweep's default offered rate (used
/// by the knee finder); the sweep cells themselves pass 0 and keep their
/// historical configuration byte-for-byte.
SweepCell run_sweep_cell(std::uint64_t virtual_clients, double zipf_s,
                         bool smoke, double rate_override = 0.0) {
    TroxyCluster::Params params;
    params.base.seed = 42;
    params.base.batch_size_max = 16;
    params.base.batch_delay = sim::microseconds(200);
    params.base.coalesce_wire = true;
    params.host.coalesce_wire = true;
    params.host.voter_batch_max = 16;
    params.host.batch_reply_auth = true;
    params.ctroxy = true;
    params.service = []() { return std::make_unique<apps::KvService>(); };
    params.classifier = [](ByteView request) {
        return apps::KvService().classify(request);
    };
    TroxyCluster cluster(params);

    // The physical session set: what a front-end connection pool would
    // hold open. The virtual-client population fans out over it.
    const int connections = 24;
    std::vector<troxy_core::LegacyClient*> conns;
    conns.reserve(connections);
    for (int i = 0; i < connections; ++i) {
        conns.push_back(&cluster.add_client());
    }

    const sim::Duration warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(500);
    const sim::Duration window =
        smoke ? sim::milliseconds(600) : sim::seconds(2);
    Recorder recorder(warmup, window);

    OpenLoopOptions wl;
    wl.rate_per_sec =
        rate_override > 0.0 ? rate_override : (smoke ? 8000.0 : 20000.0);
    wl.virtual_clients = virtual_clients;
    wl.keys = 65536;
    wl.zipf_s = zipf_s;
    wl.read_fraction = 0.5;
    wl.churn_per_sec = 20.0;  // sessions cycling through handshakes
    OpenLoopSuite suite(
        cluster.simulator(), recorder, wl,
        [](Rng&, const OpenLoopArrival& arrival) {
            const std::string key = "k" + std::to_string(arrival.key);
            if (arrival.is_read) return apps::KvService::make_get(key);
            return apps::KvService::make_put(key, std::string(64, 'v'));
        },
        params.base.seed);
    for (auto* conn : conns) suite.add_connection(*conn);
    suite.start();

    const std::uint64_t alloc_base = g_allocs.load();
    const auto start = std::chrono::steady_clock::now();
    cluster.simulator().run_until(recorder.window_end() +
                                  sim::milliseconds(500));

    SweepCell cell;
    cell.virtual_clients = virtual_clients;
    cell.zipf_s = zipf_s;
    cell.distribution = zipf_s > 0.0
                            ? "zipf-" + std::to_string(zipf_s).substr(0, 4)
                            : "uniform";
    cell.wall_s = wall_seconds_since(start);
    cell.sim_events = cluster.simulator().executed_events();
    cell.sim_events_per_sec =
        static_cast<double>(cell.sim_events) / cell.wall_s;
    cell.allocs_per_event =
        static_cast<double>(g_allocs.load() - alloc_base) /
        static_cast<double>(cell.sim_events);
    cell.throughput = recorder.throughput_per_sec();
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.issued = suite.issued();
    cell.completed = suite.completed();
    cell.churned = suite.churned_sessions();
    cell.offered_rate = wl.rate_per_sec;
    if (suite.last_arrival() > suite.first_arrival()) {
        cell.achieved_rate =
            static_cast<double>(suite.issued() - 1) * 1e9 /
            static_cast<double>(suite.last_arrival() -
                                suite.first_arrival());
    }
    cell.pool = cluster.network().pool().stats();
    cell.scheduler = cluster.simulator().scheduler_stats();
    cell.packet_reuses = cluster.network().packet_reuses();
    cell.packet_allocs = cluster.network().packet_allocs();
    return cell;
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_scale.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // Part 1: engine microbench. The chain count is the pending-event
    // population (every chain keeps one timer outstanding), sized like a
    // large client fleet's timer load.
    const std::size_t chains = smoke ? 50000 : 100000;
    const std::uint64_t events = smoke ? 1000000 : 4000000;
    std::printf("engine microbench: %zu pending timers, %llu events\n",
                chains, static_cast<unsigned long long>(events));
    // Best of three per engine: the ratio should compare engine
    // capability, not scheduler noise on a shared machine.
    EngineResult legacy, calendar;
    for (int rep = 0; rep < 3; ++rep) {
        const EngineResult r = run_legacy_engine(chains, events);
        if (r.events_per_sec > legacy.events_per_sec) legacy = r;
    }
    std::printf("  binary-heap/std::function: %.2fM events/s, "
                "%.2f allocs/event\n",
                legacy.events_per_sec / 1e6, legacy.allocs_per_event);
    for (int rep = 0; rep < 3; ++rep) {
        const EngineResult r = run_calendar_engine(chains, events);
        if (r.events_per_sec > calendar.events_per_sec) calendar = r;
    }
    std::printf("  calendar/slab/inline:      %.2fM events/s, "
                "%.4f allocs/event\n",
                calendar.events_per_sec / 1e6, calendar.allocs_per_event);
    const double engine_speedup =
        calendar.events_per_sec / legacy.events_per_sec;
    const double alloc_ratio =
        calendar.allocs_per_event > 0.0
            ? legacy.allocs_per_event / calendar.allocs_per_event
            : 1e9;
    std::printf("  speedup %.2fx, allocation ratio %.0fx\n", engine_speedup,
                alloc_ratio);

    // Part 2: open-loop scale sweep.
    std::vector<std::uint64_t> populations =
        smoke ? std::vector<std::uint64_t>{100000}
              : std::vector<std::uint64_t>{10000, 100000, 1000000};
    const std::vector<double> skews = {0.0, 0.99};

    std::vector<SweepCell> cells;
    for (const std::uint64_t population : populations) {
        for (const double s : skews) {
            SweepCell cell = run_sweep_cell(population, s, smoke);
            std::printf(
                "  [%7llu clients %-9s] %6.2fs wall, %5.2fM sim-events/s, "
                "%.3f allocs/event, %.0f req/s, p50 %.2f ms, p99 %.2f ms, "
                "%llu sessions churned\n",
                static_cast<unsigned long long>(cell.virtual_clients),
                cell.distribution.c_str(), cell.wall_s,
                cell.sim_events_per_sec / 1e6, cell.allocs_per_event,
                cell.throughput, cell.p50_ms, cell.p99_ms,
                static_cast<unsigned long long>(cell.churned));
            cells.push_back(std::move(cell));
        }
    }

    // Part 3: find the knee. Per configuration, ramp the offered
    // open-loop rate geometrically until p99 breaches the SLO; the knee
    // is the highest offered rate that still met it. Probes run after
    // the sweep in fresh clusters, so the historical cells above are
    // untouched.
    struct KneeProbe {
        double offered = 0.0;
        double throughput = 0.0;
        double p99_ms = 0.0;
        bool breached = false;
    };
    struct KneeResult {
        std::uint64_t virtual_clients = 0;
        std::string distribution;
        double knee_rate = 0.0;    // highest offered rate meeting the SLO
        double breach_rate = 0.0;  // first offered rate breaching it
        std::vector<KneeProbe> probes;
    };
    const double slo_p99_ms = 10.0;
    const double knee_start = smoke ? 2000.0 : 5000.0;
    const int knee_probes_max = 5;
    std::printf("knee finder: ramp offered rate x2 from %.0f req/s until "
                "p99 > %.0f ms\n",
                knee_start, slo_p99_ms);
    std::vector<KneeResult> knees;
    for (const std::uint64_t population : populations) {
        for (const double s : skews) {
            KneeResult knee;
            knee.virtual_clients = population;
            double rate = knee_start;
            for (int probe = 0; probe < knee_probes_max; ++probe) {
                SweepCell cell = run_sweep_cell(population, s, smoke, rate);
                knee.distribution = cell.distribution;
                KneeProbe p;
                p.offered = rate;
                p.throughput = cell.throughput;
                p.p99_ms = cell.p99_ms;
                p.breached = cell.p99_ms > slo_p99_ms;
                knee.probes.push_back(p);
                if (p.breached) {
                    knee.breach_rate = rate;
                    break;
                }
                knee.knee_rate = rate;
                rate *= 2.0;
            }
            std::printf(
                "  [%7llu clients %-9s] knee %.0f req/s "
                "(first breach %.0f, %zu probes, last p99 %.2f ms)\n",
                static_cast<unsigned long long>(knee.virtual_clients),
                knee.distribution.c_str(), knee.knee_rate,
                knee.breach_rate, knee.probes.size(),
                knee.probes.back().p99_ms);
            knees.push_back(std::move(knee));
        }
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"simulator_scale\",\n");
    std::fprintf(json,
                 "  \"workload\": \"open-loop aggregate-rate kv ops, "
                 "virtual clients over 24 sessions, 50%% reads, "
                 "session churn 20/s\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"engine\": {\n");
    std::fprintf(json,
                 "    \"legacy_events_per_sec\": %.0f,\n"
                 "    \"legacy_allocs_per_event\": %.3f,\n"
                 "    \"calendar_events_per_sec\": %.0f,\n"
                 "    \"calendar_allocs_per_event\": %.4f,\n"
                 "    \"engine_speedup\": %.3f,\n"
                 "    \"alloc_ratio\": %.1f\n  },\n",
                 legacy.events_per_sec, legacy.allocs_per_event,
                 calendar.events_per_sec, calendar.allocs_per_event,
                 engine_speedup, alloc_ratio);
    std::fprintf(json, "  \"results\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell& c = cells[i];
        std::fprintf(
            json,
            "    {\"virtual_clients\": %llu, \"distribution\": \"%s\", "
            "\"wall_clock_s\": %.3f, \"sim_events\": %llu, "
            "\"sim_events_per_sec\": %.0f, \"allocs_per_event\": %.4f, "
            "\"throughput_per_sec\": %.1f, \"p50_ms\": %.3f, "
            "\"p99_ms\": %.3f, \"issued\": %llu, \"completed\": %llu, "
            "\"offered_rate\": %.0f, \"achieved_rate\": %.1f, "
            "\"churned_sessions\": %llu, \"pool_hits\": %llu, "
            "\"pool_misses\": %llu, \"packet_reuses\": %llu, "
            "\"packet_allocs\": %llu, \"inline_callbacks\": %llu, "
            "\"heap_callbacks\": %llu, \"node_reuses\": %llu, "
            "\"node_allocs\": %llu, \"buckets\": %llu, "
            "\"rebuilds\": %llu}%s\n",
            static_cast<unsigned long long>(c.virtual_clients),
            c.distribution.c_str(), c.wall_s,
            static_cast<unsigned long long>(c.sim_events),
            c.sim_events_per_sec, c.allocs_per_event, c.throughput,
            c.p50_ms, c.p99_ms,
            static_cast<unsigned long long>(c.issued),
            static_cast<unsigned long long>(c.completed), c.offered_rate,
            c.achieved_rate, static_cast<unsigned long long>(c.churned),
            static_cast<unsigned long long>(c.pool.hits),
            static_cast<unsigned long long>(c.pool.misses),
            static_cast<unsigned long long>(c.packet_reuses),
            static_cast<unsigned long long>(c.packet_allocs),
            static_cast<unsigned long long>(c.scheduler.inline_callbacks),
            static_cast<unsigned long long>(c.scheduler.heap_callbacks),
            static_cast<unsigned long long>(c.scheduler.node_reuses),
            static_cast<unsigned long long>(c.scheduler.node_allocs),
            static_cast<unsigned long long>(c.scheduler.buckets),
            static_cast<unsigned long long>(c.scheduler.rebuilds),
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"slo_p99_ms\": %.1f,\n  \"knee\": [\n",
                 slo_p99_ms);
    for (std::size_t i = 0; i < knees.size(); ++i) {
        const KneeResult& k = knees[i];
        std::fprintf(
            json,
            "    {\"virtual_clients\": %llu, \"distribution\": \"%s\", "
            "\"knee_rate\": %.0f, \"breach_rate\": %.0f, \"probes\": [",
            static_cast<unsigned long long>(k.virtual_clients),
            k.distribution.c_str(), k.knee_rate, k.breach_rate);
        for (std::size_t j = 0; j < k.probes.size(); ++j) {
            const KneeProbe& p = k.probes[j];
            std::fprintf(json,
                         "{\"offered\": %.0f, \"throughput\": %.1f, "
                         "\"p99_ms\": %.3f, \"breached\": %s}%s",
                         p.offered, p.throughput, p.p99_ms,
                         p.breached ? "true" : "false",
                         j + 1 < k.probes.size() ? ", " : "");
        }
        std::fprintf(json, "]}%s\n", i + 1 < knees.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
