// Batching sweep: ordered-write throughput/latency at saturation as a
// function of the ordering batch size.
//
// Fig. 6-style workload (256 B writes, 10 B acks, local network, closed
// loop at saturation) swept over batch_size_max ∈ {1, 4, 16, 64}. A batch
// amortizes one Prepare/Commit round — and, crucially, one trusted-counter
// certification per phase — over all member requests, so the leader's
// per-request ordering cost drops roughly linearly until the unamortized
// work (per-request verification, execution, replies) dominates.
//
// batch_size_max = 1 runs the pre-batching message flow and anchors the
// speedup column. Results are also written as JSON (default
// BENCH_batching.json) to seed the repo's performance trajectory.
//
// Flags: --smoke     reduced configuration for CI (fewer clients, shorter
//                    window, sweep {1, 16} only)
//        --out PATH  JSON output path (default BENCH_batching.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/echo_service.hpp"
#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"
#include "hybster/config.hpp"
#include "hybster/messages.hpp"
#include "hybster/replica.hpp"
#include "net/envelope.hpp"

namespace {

using namespace troxy::bench;
namespace sim = troxy::sim;

struct Sample {
    std::string system;
    std::size_t batch;
    Row row;
};

/// Ordering-pipeline measurement: a bare Hybster group driven at its
/// ordering interface, with the per-request client work (MAC check, reply
/// MAC) charged via hooks but without the client channel stack. This
/// isolates the subsystem batching optimizes — the end-to-end systems
/// below add voter/channel costs that batching cannot amortize.
Row run_core(std::size_t batch, sim::Duration delay, int clients,
             int pipeline, sim::Duration window) {
    using namespace troxy;
    namespace hy = troxy::hybster;

    sim::Simulator simulator(123);
    sim::Network network(simulator);
    network.set_default_link(sim::LinkSpec::lan());
    net::Fabric fabric(simulator, network);
    const sim::CostProfile profile = sim::CostProfile::java();

    hy::Config config;
    config.f = 1;
    config.batch_size_max = batch;
    config.batch_delay = delay;
    for (int i = 0; i < 3; ++i) {
        config.replicas.push_back(static_cast<sim::NodeId>(i + 1));
    }

    Recorder recorder(sim::milliseconds(300), window);

    struct Pending {
        int replies = 0;
        sim::SimTime start = 0;
    };
    std::map<std::uint64_t, Pending> pending;
    std::vector<std::unique_ptr<sim::Node>> nodes;
    std::vector<std::unique_ptr<hy::Replica>> replicas;
    std::uint64_t next_number = 0;
    std::function<void()> submit_one;

    const Bytes group_key = to_bytes("bench-batching-group-key");
    for (int i = 0; i < 3; ++i) {
        nodes.push_back(std::make_unique<sim::Node>(
            simulator, config.replicas[static_cast<std::size_t>(i)],
            "r" + std::to_string(i), 8));
        auto trinx = std::make_shared<enclave::TrinX>(
            static_cast<std::uint32_t>(i), group_key);

        hy::Replica::Hooks hooks;
        // One client-MAC verification per request (the signed view is
        // 17 B of header plus the payload — see Request::signed_view).
        hooks.verify_request = [profile](enclave::CostedCrypto& crypto,
                                         const hy::Request& request) {
            crypto.charge(profile.mac(17 + request.payload.size()));
            return true;
        };
        hooks.deliver_reply = [&, profile](enclave::CostedCrypto& crypto,
                                           net::Outbox&,
                                           const hy::Request&,
                                           hy::Reply reply) {
            // Reply MAC toward the client (certified-view size).
            crypto.charge(profile.mac(37 + crypto::kSha256DigestSize +
                                      reply.result.size()));
            const auto it = pending.find(reply.request_id.number);
            if (it == pending.end()) return;
            if (++it->second.replies < config.quorum()) return;
            recorder.record(simulator.now(),
                            simulator.now() - it->second.start);
            pending.erase(it);
            simulator.after(sim::microseconds(1), submit_one);
        };
        replicas.push_back(std::make_unique<hy::Replica>(
            fabric, *nodes.back(), config, static_cast<std::uint32_t>(i),
            std::make_unique<apps::EchoService>(), std::move(trinx),
            profile, std::move(hooks)));
        auto* replica = replicas.back().get();
        fabric.attach(config.replicas[static_cast<std::size_t>(i)],
                      [replica](sim::NodeId from, Bytes message) {
                          auto unwrapped = net::unwrap(message);
                          if (!unwrapped) return;
                          replica->on_message(from, unwrapped->second);
                      });
    }

    const std::uint64_t key_space = 16;
    submit_one = [&]() {
        const std::uint64_t number = ++next_number;
        hy::Request request;
        request.id = {static_cast<sim::NodeId>(
                          1000 + number % static_cast<std::uint64_t>(
                                              clients)),
                      number};
        request.payload =
            apps::EchoService::make_write(number % key_space, 256);
        pending[number].start = simulator.now();
        replicas[0]->submit(request);
    };

    // Closed loop: clients × pipeline requests in flight, ramped up across
    // the warmup so measurement starts from steady state.
    const int in_flight = clients * pipeline;
    const sim::Duration stagger =
        sim::milliseconds(300) / (2 * static_cast<unsigned>(in_flight) + 2);
    for (int i = 0; i < in_flight; ++i) {
        simulator.after(stagger * static_cast<unsigned>(i), submit_one);
    }
    simulator.run_until(recorder.window_end() + sim::seconds(2));

    Row row;
    row.throughput = recorder.throughput_per_sec();
    row.mean_ms = recorder.mean_latency_ms();
    row.p50_ms = recorder.percentile_latency_ms(50);
    row.p99_ms = recorder.percentile_latency_ms(99);
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    bool smoke = false;
    std::string out_path = "BENCH_batching.json";
    int clients = 0;
    int pipeline = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
            pipeline = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] [--clients N] "
                         "[--pipeline N]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::size_t> batches =
        smoke ? std::vector<std::size_t>{1, 16}
              : std::vector<std::size_t>{1, 4, 16, 64};
    const std::vector<SystemKind> systems = {
        SystemKind::Baseline, SystemKind::CTroxy, SystemKind::ETroxy};

    std::printf("Batching sweep: ordered 256 B writes, local network%s\n",
                smoke ? " (smoke configuration)" : "");
    std::printf("(one Prepare/Commit round and one trusted-counter\n");
    std::printf(" certification per phase per batch)\n");

    std::vector<Sample> samples;
    auto emit = [&](const std::string& system, std::size_t batch,
                    Row row, std::vector<Row>& rows,
                    double& base_throughput) {
        if (batch == 1) base_throughput = row.throughput;
        row.label = system + " b=" + std::to_string(batch);
        if (base_throughput > 0.0) {
            std::printf("  [%s] %.0f req/s (%.2fx vs b=1)\n",
                        row.label.c_str(), row.throughput,
                        row.throughput / base_throughput);
        }
        rows.push_back(row);
        samples.push_back(Sample{system, batch, row});
    };
    // The delay boundary only matters when load is too thin to fill
    // batches; at saturation the size boundary cuts. batch 1 keeps
    // delay 0 = the exact pre-batching flow.
    const auto delay_for = [](std::size_t batch) {
        return batch > 1 ? sim::microseconds(500) : sim::Duration{0};
    };

    // Headline: the ordering pipeline itself at saturation.
    {
        std::vector<Row> rows;
        double base_throughput = 0.0;
        for (const std::size_t batch : batches) {
            Row row = run_core(
                batch, delay_for(batch),
                clients > 0 ? clients : (smoke ? 24 : 64),
                pipeline > 0 ? pipeline : 8,
                smoke ? sim::milliseconds(400) : sim::seconds(1));
            emit("core", batch, row, rows, base_throughput);
        }
        print_table("hybster ordering pipeline (core)", rows);
    }

    // End-to-end systems for context: the Troxy voter and the client
    // channel stack add per-request work batching cannot amortize. The
    // smoke configuration skips them — at reduced load their batched runs
    // sit far from saturation and the numbers mean nothing.
    for (const SystemKind system : smoke ? std::vector<SystemKind>{}
                                         : systems) {
        std::vector<Row> rows;
        double base_throughput = 0.0;
        for (const std::size_t batch : batches) {
            MicroParams params;
            params.read_workload = false;
            params.request_size = 256;
            // Saturation needs enough outstanding requests to keep large
            // batches full (well beyond fig6's 48×4 operating point).
            params.clients = clients > 0 ? clients : (smoke ? 16 : 128);
            params.pipeline = pipeline > 0 ? pipeline : (smoke ? 4 : 8);
            if (smoke) params.window = sim::milliseconds(400);
            params.batch_size_max = batch;
            params.batch_delay = delay_for(batch);
            emit(system_name(system), batch, run_micro(system, params).row,
                 rows, base_throughput);
        }
        print_table("system " + system_name(system), rows);
    }

    // Troxy systems with the batched voter and wire coalescing riding
    // along: the voter batch matches the ordering batch, so the reply
    // path (ecall transitions, certificate MAC bases, wire records) is
    // amortized at the same granularity as the ordering pipeline. See
    // bench_voting for the full voter x ordering cross sweep.
    for (const SystemKind system :
         smoke ? std::vector<SystemKind>{}
               : std::vector<SystemKind>{SystemKind::CTroxy,
                                         SystemKind::ETroxy}) {
        std::vector<Row> rows;
        double base_throughput = 0.0;
        for (const std::size_t batch : batches) {
            MicroParams params;
            params.read_workload = false;
            params.request_size = 256;
            params.clients = clients > 0 ? clients : 128;
            params.pipeline = pipeline > 0 ? pipeline : 8;
            params.batch_size_max = batch;
            params.batch_delay = delay_for(batch);
            params.voter_batch_max = batch;
            params.coalesce_wire = batch > 1;
            params.coalesce_client_sends = batch > 1;
            emit(system_name(system) + "+vote", batch,
                 run_micro(system, params).row, rows, base_throughput);
        }
        print_table("system " + system_name(system) + " + batched voter",
                    rows);
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"batching_sweep\",\n");
    std::fprintf(json,
                 "  \"workload\": \"ordered 256B writes, local network, "
                 "closed loop\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n  \"results\": [\n",
                 smoke ? "true" : "false");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        double base = 0.0;
        for (const Sample& t : samples) {
            if (t.system == s.system && t.batch == 1) {
                base = t.row.throughput;
            }
        }
        std::fprintf(
            json,
            "    {\"system\": \"%s\", \"batch_size_max\": %zu, "
            "\"throughput_per_sec\": %.1f, \"mean_ms\": %.3f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"speedup_vs_batch1\": %.3f}%s\n",
            s.system.c_str(), s.batch, s.row.throughput,
            s.row.mean_ms, s.row.p50_ms, s.row.p99_ms,
            base > 0.0 ? s.row.throughput / base : 0.0,
            i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
