// Production-fleet recovery benchmark: Merkle-incremental state transfer
// versus monolithic snapshots, transfer resume under loss, and the
// rolling-restart chaos scenario with proactive enclave recovery.
//
// Four phases against a Troxy cluster over the echo service:
//
//   full         — a rejoiner with an empty chunk store streams the whole
//                  checkpoint (the monolithic baseline; ratio ~ 1).
//   incremental  — the same rejoiner comes back with its durable store
//                  intact after a small-delta window: responders skip the
//                  advertised chunks, so only the dirtied ones travel.
//                  The headline `incremental_ratio` (bytes shipped /
//                  monolithic bytes) is gated < 0.25 in CI.
//   resume       — a loss window swallows part of the chunk stream; the
//                  state_transfer_retry re-requests with the banked chunk
//                  hashes, so the transfer resumes instead of restarting.
//   rolling      — run_chaos with rolling_restart: every replica host is
//                  crash/restarted in sequence and every enclave
//                  proactively recovered under an open client loop, with
//                  linearizability, liveness and a fast-read hit-rate
//                  floor all checked.
//
// Flags: --smoke     reduced configuration for CI (smaller state, shorter
//                    chaos run)
//        --out PATH  JSON output path (default BENCH_recovery.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "apps/echo_service.hpp"
#include "bench_support/chaos.hpp"
#include "bench_support/cluster.hpp"
#include "crypto/fastmode.hpp"

namespace {

using namespace troxy::bench;
using troxy::Bytes;
using troxy::ByteView;
using troxy::apps::EchoService;
namespace sim = troxy::sim;
namespace core = troxy::troxy_core;

struct TransferSample {
    std::uint64_t bytes_sent = 0;    // chunk payload actually shipped
    std::uint64_t bytes_full = 0;    // monolithic-snapshot cost
    std::uint64_t chunks_sent = 0;
    std::uint64_t chunks_skipped = 0;
    std::uint64_t chunks_reused = 0;
    std::uint64_t resumed = 0;

    [[nodiscard]] double ratio() const {
        return bytes_full == 0
                   ? 0.0
                   : static_cast<double>(bytes_sent) /
                         static_cast<double>(bytes_full);
    }
};

TransferSample snapshot_stats(TroxyCluster& cluster) {
    TransferSample s;
    for (int i = 0; i < cluster.n(); ++i) {
        const auto& stats = cluster.host(i).replica().state_stats();
        s.bytes_sent += stats.bytes_sent;
        s.bytes_full += stats.bytes_full;
        s.chunks_sent += stats.chunks_sent;
        s.chunks_skipped += stats.chunks_skipped;
        s.chunks_reused += stats.chunks_reused;
        s.resumed += stats.transfers_resumed;
    }
    return s;
}

TransferSample diff(const TransferSample& before,
                    const TransferSample& after) {
    TransferSample d;
    d.bytes_sent = after.bytes_sent - before.bytes_sent;
    d.bytes_full = after.bytes_full - before.bytes_full;
    d.chunks_sent = after.chunks_sent - before.chunks_sent;
    d.chunks_skipped = after.chunks_skipped - before.chunks_skipped;
    d.chunks_reused = after.chunks_reused - before.chunks_reused;
    d.resumed = after.resumed - before.resumed;
    return d;
}

TroxyCluster::Params transfer_params(std::uint64_t seed, int chunks_per_msg) {
    TroxyCluster::Params params;
    params.base.seed = seed;
    params.base.checkpoint_interval = 8;
    params.base.state_chunk_size = 128;
    params.base.state_chunks_per_message =
        static_cast<std::size_t>(chunks_per_msg);
    params.base.state_transfer_retry = sim::milliseconds(250);
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    params.host.vote_timeout = sim::milliseconds(300);
    params.client.connection_timeout = sim::milliseconds(500);
    return params;
}

/// Issues `count` sequential writes cycling over keys [0, keys), then
/// reports completion through `done`.
void drive_writes(core::LegacyClient& client, int count, int keys,
                  std::function<void()> done) {
    auto remaining = std::make_shared<int>(count);
    auto issue = std::make_shared<std::function<void()>>();
    // Weak self-capture: a strong one is a shared_ptr cycle (leak); the
    // async callbacks below keep the chain alive with strong copies.
    *issue = [&client, remaining, keys, weak = std::weak_ptr(issue),
              done = std::move(done)]() {
        if (*remaining == 0) {
            if (done) done();
            return;
        }
        const auto issue = weak.lock();
        if (!issue) return;
        const auto key = static_cast<std::uint64_t>(*remaining % keys);
        --*remaining;
        client.send(EchoService::make_write(key, 64),
                    [issue](Bytes) { (*issue)(); });
    };
    client.start([issue]() { (*issue)(); });
}

/// Runs one rejoin cycle: crash replica 2, run `while_down` writes over
/// `delta_keys` keys, restart it, drain with tail writes, and return the
/// transfer accounting attributable to this cycle.
TransferSample rejoin_cycle(TroxyCluster& cluster, core::LegacyClient& client,
                            sim::SimTime& clock, int while_down,
                            int delta_keys, bool clear_store) {
    cluster.crash_host(2);
    if (clear_store) cluster.host(2).replica().clear_chunk_store();

    bool delta_done = false;
    auto issue = std::make_shared<std::function<void(int)>>();
    *issue = [&, delta_keys](int left) {
        if (left == 0) {
            delta_done = true;
            return;
        }
        client.send(
            EchoService::make_write(
                static_cast<std::uint64_t>(left % delta_keys), 64),
            [&, left](Bytes) { (*issue)(left - 1); });
    };
    (*issue)(while_down);
    clock += sim::seconds(5);
    cluster.simulator().run_until(clock);
    if (!delta_done) std::fprintf(stderr, "warning: delta did not drain\n");

    const TransferSample before = snapshot_stats(cluster);
    cluster.restart_host(2);

    bool tail_done = false;
    auto tail = std::make_shared<std::function<void(int)>>();
    *tail = [&, delta_keys](int left) {
        if (left == 0) {
            tail_done = true;
            return;
        }
        client.send(
            EchoService::make_write(
                static_cast<std::uint64_t>(left % delta_keys), 64),
            [&, left](Bytes) { (*tail)(left - 1); });
    };
    (*tail)(24);
    clock += sim::seconds(15);
    cluster.simulator().run_until(clock);
    if (!tail_done) std::fprintf(stderr, "warning: tail did not drain\n");
    return diff(before, snapshot_stats(cluster));
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_recovery.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // Enough keys that a checkpoint spans many 128-byte chunks; the delta
    // window dirties only a handful of them.
    const int keys = smoke ? 512 : 2048;
    const int populate = smoke ? 600 : 2400;
    const int delta_writes = 24;
    const int delta_keys = 8;

    std::printf("Recovery benchmark: Merkle-incremental state transfer%s\n",
                smoke ? " (smoke configuration)" : "");

    // ---------------------------------------------- full vs incremental
    TransferSample full;
    TransferSample incremental;
    {
        TroxyCluster cluster(transfer_params(42, 64));
        auto& client = cluster.add_client(0);
        bool populated = false;
        drive_writes(client, populate, keys, [&]() { populated = true; });
        sim::SimTime clock = sim::seconds(smoke ? 20 : 60);
        cluster.simulator().run_until(clock);
        if (!populated) {
            std::fprintf(stderr, "populate phase did not finish\n");
            return 1;
        }

        // Full baseline: the rejoiner lost its durable store, so the
        // checkpoint streams whole.
        full = rejoin_cycle(cluster, client, clock, delta_writes, delta_keys,
                            /*clear_store=*/true);
        std::printf(
            "  full:        %llu bytes shipped / %llu monolithic "
            "(ratio %.3f, %llu chunks)\n",
            static_cast<unsigned long long>(full.bytes_sent),
            static_cast<unsigned long long>(full.bytes_full), full.ratio(),
            static_cast<unsigned long long>(full.chunks_sent));

        // Incremental: same crash, but the store survives — only the
        // chunks dirtied by the small delta travel.
        incremental = rejoin_cycle(cluster, client, clock, delta_writes,
                                   delta_keys, /*clear_store=*/false);
        std::printf(
            "  incremental: %llu bytes shipped / %llu monolithic "
            "(ratio %.3f, %llu sent, %llu skipped, %llu reused)\n",
            static_cast<unsigned long long>(incremental.bytes_sent),
            static_cast<unsigned long long>(incremental.bytes_full),
            incremental.ratio(),
            static_cast<unsigned long long>(incremental.chunks_sent),
            static_cast<unsigned long long>(incremental.chunks_skipped),
            static_cast<unsigned long long>(incremental.chunks_reused));
    }

    // ------------------------------------------------ resume under loss
    TransferSample resumed;
    {
        TroxyCluster cluster(transfer_params(43, 1));
        auto& client = cluster.add_client(0);
        bool populated = false;
        drive_writes(client, smoke ? 300 : 600, keys / 2,
                     [&]() { populated = true; });
        sim::SimTime clock = sim::seconds(smoke ? 15 : 30);
        cluster.simulator().run_until(clock);
        if (!populated) {
            std::fprintf(stderr, "resume populate did not finish\n");
            return 1;
        }

        cluster.crash_host(2);
        cluster.host(2).replica().clear_chunk_store();
        clock += sim::seconds(2);
        cluster.simulator().run_until(clock);

        const sim::NodeId rejoiner_node = cluster.config().replicas[2];
        for (int i = 0; i < 2; ++i) {
            cluster.network().set_loss_bidirectional(
                cluster.config().replicas[static_cast<std::size_t>(i)],
                rejoiner_node, 0.8);
        }
        const TransferSample before = snapshot_stats(cluster);
        cluster.restart_host(2);
        cluster.simulator().after(sim::seconds(2), [&]() {
            for (int i = 0; i < 2; ++i) {
                cluster.network().set_loss_bidirectional(
                    cluster.config().replicas[static_cast<std::size_t>(i)],
                    rejoiner_node, 0.0);
            }
        });
        bool tail_done = false;
        auto tail = std::make_shared<std::function<void(int)>>();
        *tail = [&](int left) {
            if (left == 0) {
                tail_done = true;
                return;
            }
            client.send(EchoService::make_write(1, 64),
                        [&, left](Bytes) { (*tail)(left - 1); });
        };
        (*tail)(24);
        clock += sim::seconds(20);
        cluster.simulator().run_until(clock);
        if (!tail_done) std::fprintf(stderr, "warning: resume tail stuck\n");
        resumed = diff(before, snapshot_stats(cluster));
        std::printf(
            "  resume:      %llu transfers resumed after the loss window "
            "(%llu chunks skipped on re-request)\n",
            static_cast<unsigned long long>(resumed.resumed),
            static_cast<unsigned long long>(resumed.chunks_skipped));
    }

    // ------------------------------------------------- rolling chaos
    ChaosOptions chaos;
    chaos.seed = 44;
    chaos.clients = 3;
    chaos.requests_per_client = smoke ? 40 : 100;
    chaos.write_fraction = 0.3;  // read-heavy, like the paper's fast path
    chaos.rolling_restart = true;
    // Long enough between recoveries for the wiped caches to re-warm and
    // the fast path to re-enable; every enclave still recovers at least
    // twice inside the horizon.
    chaos.enclave_recovery_period = sim::seconds(10);
    chaos.fault_start = sim::seconds(1);
    chaos.heal_by = smoke ? sim::seconds(7) : sim::seconds(13);
    chaos.horizon = smoke ? sim::seconds(30) : sim::seconds(60);
    chaos.state_chunk_size = 64;
    chaos.fastread_hitrate_floor = 0.02;
    const ChaosReport report = run_chaos(chaos);
    std::printf(
        "  rolling:     %llu/%llu completed, %llu violations, "
        "%llu restarts, %llu enclave recoveries, hit rate %.2f\n",
        static_cast<unsigned long long>(report.completed),
        static_cast<unsigned long long>(report.issued),
        static_cast<unsigned long long>(report.violations),
        static_cast<unsigned long long>(report.restarts),
        static_cast<unsigned long long>(report.enclave_recoveries),
        report.fast_read_hit_rate);
    if (!report.ok()) {
        std::fprintf(stderr, "rolling chaos failed:\n%s\n",
                     report.plan_trace.c_str());
        for (const std::string& error : report.errors) {
            std::fprintf(stderr, "  %s\n", error.c_str());
        }
    }

    std::printf("headline incremental_ratio: %.3f (full baseline %.3f)\n",
                incremental.ratio(), full.ratio());

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"recovery\",\n");
    std::fprintf(json,
                 "  \"workload\": \"echo writes, Merkle-incremental rejoin "
                 "+ rolling-restart chaos with enclave recovery\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"incremental_ratio\": %.4f,\n",
                 incremental.ratio());
    std::fprintf(json, "  \"full_ratio\": %.4f,\n", full.ratio());
    std::fprintf(
        json,
        "  \"full\": {\"bytes_sent\": %llu, \"bytes_full\": %llu, "
        "\"chunks_sent\": %llu, \"chunks_skipped\": %llu},\n",
        static_cast<unsigned long long>(full.bytes_sent),
        static_cast<unsigned long long>(full.bytes_full),
        static_cast<unsigned long long>(full.chunks_sent),
        static_cast<unsigned long long>(full.chunks_skipped));
    std::fprintf(
        json,
        "  \"incremental\": {\"bytes_sent\": %llu, \"bytes_full\": %llu, "
        "\"chunks_sent\": %llu, \"chunks_skipped\": %llu, "
        "\"chunks_reused\": %llu},\n",
        static_cast<unsigned long long>(incremental.bytes_sent),
        static_cast<unsigned long long>(incremental.bytes_full),
        static_cast<unsigned long long>(incremental.chunks_sent),
        static_cast<unsigned long long>(incremental.chunks_skipped),
        static_cast<unsigned long long>(incremental.chunks_reused));
    std::fprintf(json, "  \"transfers_resumed\": %llu,\n",
                 static_cast<unsigned long long>(resumed.resumed));
    std::fprintf(
        json,
        "  \"rolling\": {\"ok\": %s, \"issued\": %llu, \"completed\": %llu, "
        "\"violations\": %llu, \"restarts\": %llu, "
        "\"enclave_recoveries\": %llu, \"fast_read_hit_rate\": %.4f, "
        "\"state_transfers_resumed\": %llu}\n",
        report.ok() ? "true" : "false",
        static_cast<unsigned long long>(report.issued),
        static_cast<unsigned long long>(report.completed),
        static_cast<unsigned long long>(report.violations),
        static_cast<unsigned long long>(report.restarts),
        static_cast<unsigned long long>(report.enclave_recoveries),
        report.fast_read_hit_rate,
        static_cast<unsigned long long>(report.st_transfers_resumed));
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return report.ok() ? 0 : 1;
}
