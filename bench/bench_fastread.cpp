// Fast-read sweep: end-to-end Troxy read throughput as a function of the
// fast-read batch size (cache queries per CacheQueryBatch burst / remote
// ecall) crossed with the ordering batch size.
//
// Fig. 8-style workload (10 B read requests, 1 KiB replies, local
// network, closed loop at saturation, read-only so the fast-read cache
// stays hot after the first ordered miss per key). The read-batch knob v
// drives the whole read-path amortization stack at once: the contact
// buffers fast-read starts and ships one CacheQueryBatch per remote
// (answered in ONE handle_cache_queries transition), response bursts are
// applied in ONE handle_cache_responses transition, ordered fallbacks
// ride the batched voter, executed batches are certified in ONE
// authenticate_replies transition, and flush bursts coalesce into one
// wire record per destination. read_batch = 1 runs the exact seed flow —
// one wire message and one ecall transition per query/response/reply —
// and anchors the speedup column.
//
// Each row also reports the mechanism counters: total Troxy ecall
// transitions, the cache-query/response batch splits, the
// authenticate_replies split, fast-read hits/conflicts and simulated
// wire records.
//
// Flags: --smoke     reduced configuration for CI (etroxy only, fewer
//                    clients, shorter window, sweep {1, 16} x {1, 16})
//        --out PATH  JSON output path (default BENCH_fastread.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

namespace {

using namespace troxy::bench;
namespace sim = troxy::sim;

struct Sample {
    std::string system;
    std::size_t read_batch;
    std::size_t order_batch;
    MicroResult result;
};

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_fastread.json";
    int clients = 0;
    int pipeline = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
            pipeline = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] [--clients N] "
                         "[--pipeline N]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::size_t> batches =
        smoke ? std::vector<std::size_t>{1, 16}
              : std::vector<std::size_t>{1, 4, 16, 64};
    const std::vector<SystemKind> systems =
        smoke ? std::vector<SystemKind>{SystemKind::ETroxy}
              : std::vector<SystemKind>{SystemKind::CTroxy,
                                        SystemKind::ETroxy};

    std::printf("Fast-read sweep: 10 B reads / 1 KiB replies, local "
                "network%s\n",
                smoke ? " (smoke configuration)" : "");
    std::printf("(read batch = cache queries per CacheQueryBatch burst / "
                "remote ecall;\n");
    std::printf(" the same knob batches response application, reply "
                "certification\n");
    std::printf(" and wire records)\n");

    std::vector<Sample> samples;
    for (const SystemKind system : systems) {
        for (const std::size_t order : batches) {
            std::vector<Row> rows;
            double base_throughput = 0.0;
            for (const std::size_t read_batch : batches) {
                MicroParams params;
                params.read_workload = true;
                params.reply_size = 1024;
                params.write_fraction = 0.0;
                // Saturation needs enough outstanding reads to fill the
                // query bursts; thin load underfills the batches and
                // understates the speedup.
                params.clients = clients > 0 ? clients : 128;
                params.pipeline = pipeline > 0 ? pipeline : 8;
                if (smoke) params.window = sim::milliseconds(400);
                params.batch_size_max = order;
                // A short hold: ordered traffic is rare in a read
                // workload (cache fills and fallbacks), and a long cut
                // delay only inflates their latency — which gates the
                // strict in-order release of the fast reads behind them.
                params.batch_delay =
                    order > 1 ? sim::microseconds(100) : sim::Duration{0};
                // read_batch 1 is the seed flow: one wire message and one
                // ecall per query/response/reply, nothing coalesced.
                params.fastread_batch_max = read_batch;
                params.voter_batch_max = read_batch;
                params.batch_reply_auth = read_batch > 1;
                params.coalesce_wire = read_batch > 1;
                params.coalesce_client_sends = read_batch > 1;

                MicroResult result = run_micro(system, params);
                result.row.label = system_name(system) + " r=" +
                                   std::to_string(read_batch) + " b=" +
                                   std::to_string(order);
                if (read_batch == 1) base_throughput = result.row.throughput;
                std::printf(
                    "  [%s] %.0f req/s (%.2fx vs r=1)  transitions=%llu "
                    "qbatches=%llu/%llu rbatches=%llu/%llu hits=%llu "
                    "wire=%llu\n",
                    result.row.label.c_str(), result.row.throughput,
                    base_throughput > 0.0
                        ? result.row.throughput / base_throughput
                        : 0.0,
                    static_cast<unsigned long long>(
                        result.enclave_transitions),
                    static_cast<unsigned long long>(
                        result.cache_query_batches),
                    static_cast<unsigned long long>(
                        result.batched_cache_queries),
                    static_cast<unsigned long long>(
                        result.cache_response_batches),
                    static_cast<unsigned long long>(
                        result.batched_cache_responses),
                    static_cast<unsigned long long>(result.fast_read_hits),
                    static_cast<unsigned long long>(result.wire_messages));
                rows.push_back(result.row);
                samples.push_back(Sample{system_name(system), read_batch,
                                         order, std::move(result)});
            }
            print_table("system " + system_name(system) + ", ordering b=" +
                            std::to_string(order),
                        rows);
        }
    }

    // Headline acceptance number: etroxy end-to-end read throughput at
    // read batch 16 over read batch 1, at the seed ordering batch (1) so
    // only the read-batch knob differs from the seed row. Etroxy is the
    // headline system because enclave transitions — what the batching
    // amortizes — cost the most there.
    double headline = 0.0;
    {
        const std::size_t order = batches.front();
        double r1 = 0.0;
        double r16 = 0.0;
        for (const Sample& s : samples) {
            if (s.system != "etroxy" || s.order_batch != order) continue;
            if (s.read_batch == 1) r1 = s.result.row.throughput;
            if (s.read_batch == 16) r16 = s.result.row.throughput;
        }
        if (r1 > 0.0) headline = r16 / r1;
        std::printf("etroxy read-batch-16 speedup at b=%zu: %.2fx\n", order,
                    headline);
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"fastread_sweep\",\n");
    std::fprintf(json,
                 "  \"workload\": \"10B reads / 1KiB replies, local "
                 "network, closed loop\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"fastread_speedup\": %.3f,\n", headline);
    std::fprintf(json, "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        double base = 0.0;
        for (const Sample& t : samples) {
            if (t.system == s.system && t.order_batch == s.order_batch &&
                t.read_batch == 1) {
                base = t.result.row.throughput;
            }
        }
        std::fprintf(
            json,
            "    {\"system\": \"%s\", \"read_batch\": %zu, "
            "\"batch_size_max\": %zu, \"throughput_per_sec\": %.1f, "
            "\"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"speedup_vs_read1\": %.3f, "
            "\"enclave_transitions\": %llu, "
            "\"fast_read_hits\": %llu, \"fast_read_conflicts\": %llu, "
            "\"cache_query_batches\": %llu, \"batched_cache_queries\": "
            "%llu, \"cache_response_batches\": %llu, "
            "\"batched_cache_responses\": %llu, \"reply_auth_batches\": "
            "%llu, \"batch_authenticated_replies\": %llu, "
            "\"wire_messages\": %llu, \"wire_bytes\": %llu}%s\n",
            s.system.c_str(), s.read_batch, s.order_batch,
            s.result.row.throughput, s.result.row.mean_ms,
            s.result.row.p50_ms, s.result.row.p99_ms,
            base > 0.0 ? s.result.row.throughput / base : 0.0,
            static_cast<unsigned long long>(s.result.enclave_transitions),
            static_cast<unsigned long long>(s.result.fast_read_hits),
            static_cast<unsigned long long>(s.result.fast_read_conflicts),
            static_cast<unsigned long long>(s.result.cache_query_batches),
            static_cast<unsigned long long>(s.result.batched_cache_queries),
            static_cast<unsigned long long>(
                s.result.cache_response_batches),
            static_cast<unsigned long long>(
                s.result.batched_cache_responses),
            static_cast<unsigned long long>(s.result.reply_auth_batches),
            static_cast<unsigned long long>(
                s.result.batch_authenticated_replies),
            static_cast<unsigned long long>(s.result.wire_messages),
            static_cast<unsigned long long>(s.result.wire_bytes),
            i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
