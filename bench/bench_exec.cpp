// Execution-lane sweep: ordered kv-write throughput as a function of the
// modeled lane count, the ordering batch size and the workload's
// write-conflict ratio.
//
// A committed batch's modeled CPU time is the makespan of the greedy
// conflict-aware lane schedule (hybster::plan_execution): members sharing
// a state key stay in sequence order on one lane, disjoint keys run on
// parallel lanes. Conflict-free batches therefore approach a lanes-fold
// reduction of the execution stage, while a fully conflicting workload
// (every put hitting one hot key) degenerates to a single chain and gains
// nothing — exactly the spread this sweep shows.
//
// The stock KvService charge (800 ns + size/10) models a trivial
// in-memory map where ordering dominates and lanes have little to bite
// on; the sweep instead wraps it in a compute-heavy kv profile (15 us
// per put, the regime that motivates parallel execution — think
// content-addressed stores or per-key validation logic). Replies and
// checkpoints stay byte-identical across lane counts; only modeled time
// changes.
//
// lanes = 1 runs the serial seed flow and anchors the speedup column.
// Results are also written as JSON (default BENCH_exec.json); the
// headline "exec_speedup" field is the 4-lane vs 1-lane throughput ratio
// on the conflict-free workload at ordering batch 16, gated in CI.
//
// Flags: --smoke     reduced configuration for CI (fewer clients, shorter
//                    window, lanes {1, 4} x batch {16} x conflict {0, 100})
//        --out PATH  JSON output path (default BENCH_exec.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/kv_service.hpp"
#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"
#include "hybster/config.hpp"
#include "hybster/messages.hpp"
#include "hybster/replica.hpp"
#include "net/envelope.hpp"

namespace {

using namespace troxy::bench;
namespace sim = troxy::sim;

/// KvService with a compute-heavy execution-cost model (classification,
/// execution and state handling stay the stock kv semantics, so the
/// conflict classes are the real kv state keys).
class HeavyKvService final : public troxy::hybster::Service {
  public:
    [[nodiscard]] troxy::hybster::RequestInfo classify(
        troxy::ByteView request) const override {
        return kv_.classify(request);
    }
    troxy::Bytes execute(troxy::ByteView request) override {
        return kv_.execute(request);
    }
    [[nodiscard]] troxy::Bytes checkpoint() const override {
        return kv_.checkpoint();
    }
    void restore(troxy::ByteView snapshot) override { kv_.restore(snapshot); }
    [[nodiscard]] sim::Duration execution_cost(
        troxy::ByteView request) const override {
        return sim::microseconds(15) + sim::nanoseconds(request.size() / 10);
    }

  private:
    troxy::apps::KvService kv_;
};

struct Sample {
    std::size_t lanes;
    std::size_t batch;
    int conflict_pct;
    Row row;
    troxy::hybster::Replica::ExecStats exec;
};

/// Deterministic, well-mixed per-request conflict decision: `pct` percent
/// of the puts hit one hot key, the rest cycle through a key pool larger
/// than any batch (so they are conflict-free within a batch but keep the
/// store bounded).
bool is_hot(std::uint64_t number, int pct) {
    std::uint64_t h = number * 0x9E3779B97F4A7C15ull;
    h ^= h >> 33;
    return static_cast<int>(h % 100) < pct;
}

/// Same bare ordering-pipeline harness as bench_batching's run_core —
/// a 3-replica Hybster group driven at its ordering interface with the
/// per-request client work (MAC check, reply MAC) charged via hooks —
/// parameterized over execution lanes and the conflict ratio.
Sample run_lanes(std::size_t lanes, std::size_t batch, int conflict_pct,
                 int clients, int pipeline, sim::Duration window) {
    using namespace troxy;
    namespace hy = troxy::hybster;

    sim::Simulator simulator(123);
    sim::Network network(simulator);
    network.set_default_link(sim::LinkSpec::lan());
    net::Fabric fabric(simulator, network);
    const sim::CostProfile profile = sim::CostProfile::java();

    hy::Config config;
    config.f = 1;
    config.batch_size_max = batch;
    config.batch_delay = batch > 1 ? sim::microseconds(500) : sim::Duration{0};
    config.execution_lanes = lanes;
    // The cold-key pool makes full-state checkpoints expensive; a long
    // interval keeps the periodic snapshot charge from dominating the
    // latency tail of what is an execution-stage measurement.
    config.checkpoint_interval = 1024;
    for (int i = 0; i < 3; ++i) {
        config.replicas.push_back(static_cast<sim::NodeId>(i + 1));
    }

    Recorder recorder(sim::milliseconds(300), window);

    struct Pending {
        int replies = 0;
        sim::SimTime start = 0;
    };
    std::map<std::uint64_t, Pending> pending;
    std::vector<std::unique_ptr<sim::Node>> nodes;
    std::vector<std::unique_ptr<hy::Replica>> replicas;
    std::uint64_t next_number = 0;
    std::function<void()> submit_one;

    const Bytes group_key = to_bytes("bench-exec-group-key");
    for (int i = 0; i < 3; ++i) {
        nodes.push_back(std::make_unique<sim::Node>(
            simulator, config.replicas[static_cast<std::size_t>(i)],
            "r" + std::to_string(i), 8));
        auto trinx = std::make_shared<enclave::TrinX>(
            static_cast<std::uint32_t>(i), group_key);

        hy::Replica::Hooks hooks;
        hooks.verify_request = [profile](enclave::CostedCrypto& crypto,
                                         const hy::Request& request) {
            crypto.charge(profile.mac(17 + request.payload.size()));
            return true;
        };
        hooks.deliver_reply = [&, profile](enclave::CostedCrypto& crypto,
                                           net::Outbox&, const hy::Request&,
                                           hy::Reply reply) {
            crypto.charge(profile.mac(37 + crypto::kSha256DigestSize +
                                      reply.result.size()));
            const auto it = pending.find(reply.request_id.number);
            if (it == pending.end()) return;
            if (++it->second.replies < config.quorum()) return;
            recorder.record(simulator.now(),
                            simulator.now() - it->second.start);
            pending.erase(it);
            simulator.after(sim::microseconds(1), submit_one);
        };
        replicas.push_back(std::make_unique<hy::Replica>(
            fabric, *nodes.back(), config, static_cast<std::uint32_t>(i),
            std::make_unique<HeavyKvService>(), std::move(trinx), profile,
            std::move(hooks)));
        auto* replica = replicas.back().get();
        fabric.attach(config.replicas[static_cast<std::size_t>(i)],
                      [replica](sim::NodeId from, Bytes message) {
                          auto unwrapped = net::unwrap(message);
                          if (!unwrapped) return;
                          replica->on_message(from, unwrapped->second);
                      });
    }

    // Cold keys cycle through a pool larger than any batch: conflict-free
    // within a batch, bounded kv store across the run.
    const std::uint64_t cold_pool = 4096;
    submit_one = [&]() {
        const std::uint64_t number = ++next_number;
        hy::Request request;
        request.id = {static_cast<sim::NodeId>(
                          1000 + number % static_cast<std::uint64_t>(
                                              clients)),
                      number};
        const std::string key =
            is_hot(number, conflict_pct)
                ? std::string("hot")
                : "k" + std::to_string(number % cold_pool);
        request.payload =
            apps::KvService::make_put(key, std::string(64, 'v'));
        pending[number].start = simulator.now();
        replicas[0]->submit(request);
    };

    const int in_flight = clients * pipeline;
    const sim::Duration stagger =
        sim::milliseconds(300) / (2 * static_cast<unsigned>(in_flight) + 2);
    for (int i = 0; i < in_flight; ++i) {
        simulator.after(stagger * static_cast<unsigned>(i), submit_one);
    }
    simulator.run_until(recorder.window_end() + sim::seconds(2));

    Sample sample;
    sample.lanes = lanes;
    sample.batch = batch;
    sample.conflict_pct = conflict_pct;
    sample.row.throughput = recorder.throughput_per_sec();
    sample.row.mean_ms = recorder.mean_latency_ms();
    sample.row.p50_ms = recorder.percentile_latency_ms(50);
    sample.row.p99_ms = recorder.percentile_latency_ms(99);
    // Deterministic execution: every replica commits the same batches, so
    // the scheduler counters agree; report replica 0's.
    sample.exec = replicas[0]->exec_stats();
    return sample;
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    bool smoke = false;
    std::string out_path = "BENCH_exec.json";
    int clients = 0;
    int pipeline = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
            pipeline = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] [--clients N] "
                         "[--pipeline N]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::size_t> lane_counts =
        smoke ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 2, 4, 8};
    const std::vector<std::size_t> batches =
        smoke ? std::vector<std::size_t>{16}
              : std::vector<std::size_t>{1, 16, 64};
    const std::vector<int> conflicts = smoke ? std::vector<int>{0, 100}
                                             : std::vector<int>{0, 50, 100};

    std::printf(
        "Execution-lane sweep: ordered kv puts (compute-heavy profile), "
        "local network%s\n",
        smoke ? " (smoke configuration)" : "");
    std::printf(
        "(batch cost = makespan of the conflict-aware lane schedule)\n");

    std::vector<Sample> samples;
    for (const std::size_t batch : batches) {
        for (const int conflict : conflicts) {
            std::vector<Row> rows;
            double base_throughput = 0.0;
            for (const std::size_t lanes : lane_counts) {
                Sample s = run_lanes(
                    lanes, batch, conflict,
                    clients > 0 ? clients : 64,
                    pipeline > 0 ? pipeline : 16,
                    smoke ? sim::milliseconds(400) : sim::seconds(1));
                if (lanes == 1) base_throughput = s.row.throughput;
                s.row.label = "lanes=" + std::to_string(lanes);
                if (base_throughput > 0.0) {
                    std::printf(
                        "  [b=%zu conflict=%d%% lanes=%zu] %.0f req/s "
                        "(%.2fx vs 1 lane, %llu stalls)\n",
                        batch, conflict, lanes, s.row.throughput,
                        s.row.throughput / base_throughput,
                        static_cast<unsigned long long>(
                            s.exec.conflict_stalls));
                }
                rows.push_back(s.row);
                samples.push_back(std::move(s));
            }
            print_table("batch " + std::to_string(batch) + ", conflict " +
                            std::to_string(conflict) + "%",
                        rows);
        }
    }

    // Headline for the CI gate: conflict-free kv writes at batch 16,
    // 4 lanes vs 1.
    double base = 0.0;
    double four = 0.0;
    for (const Sample& s : samples) {
        if (s.batch == 16 && s.conflict_pct == 0) {
            if (s.lanes == 1) base = s.row.throughput;
            if (s.lanes == 4) four = s.row.throughput;
        }
    }
    const double exec_speedup = base > 0.0 ? four / base : 0.0;
    std::printf("headline exec_speedup (4 lanes vs 1, b=16, conflict-free): "
                "%.2fx\n",
                exec_speedup);

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"exec_lanes_sweep\",\n");
    std::fprintf(json,
                 "  \"workload\": \"ordered kv puts, compute-heavy profile "
                 "(15us/op), local network, closed loop\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"exec_speedup\": %.3f,\n", exec_speedup);
    std::fprintf(json, "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        double lane1 = 0.0;
        for (const Sample& t : samples) {
            if (t.batch == s.batch && t.conflict_pct == s.conflict_pct &&
                t.lanes == 1) {
                lane1 = t.row.throughput;
            }
        }
        const double batches_sched =
            s.exec.scheduled_batches > 0
                ? static_cast<double>(s.exec.scheduled_batches)
                : 0.0;
        std::fprintf(
            json,
            "    {\"lanes\": %zu, \"batch_size_max\": %zu, "
            "\"conflict_pct\": %d, \"throughput_per_sec\": %.1f, "
            "\"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"speedup_vs_1lane\": %.3f, \"conflict_stalls\": %llu, "
            "\"avg_lanes_used\": %.2f, \"parallelism\": %.3f}%s\n",
            s.lanes, s.batch, s.conflict_pct, s.row.throughput,
            s.row.mean_ms, s.row.p50_ms, s.row.p99_ms,
            lane1 > 0.0 ? s.row.throughput / lane1 : 0.0,
            static_cast<unsigned long long>(s.exec.conflict_stalls),
            batches_sched > 0.0
                ? static_cast<double>(s.exec.lanes_used_sum) / batches_sched
                : 0.0,
            s.exec.charged_cost > 0
                ? static_cast<double>(s.exec.serial_cost) /
                      static_cast<double>(s.exec.charged_cost)
                : 1.0,
            i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
