// Figure 11 (§VI-D): HTTP service latency.
//
// A replicated page store (GET/POST, 200 B POST bodies, 4–18 KB
// responses) measured with an open-loop JMeter-style workload: 100
// clients, 500 req/s total — deliberately below saturation, so the figure
// shows *latency*, not throughput. Four deployments:
//
//   Jetty      — unreplicated standalone server (the latency floor)
//   BL         — Hybster with the client-side library doing the voting
//   Prophecy   — PBFT (3f+1) behind a trusted middlebox with a sketch
//                cache (weak consistency)
//   Troxy      — Troxy-backed Hybster (strong consistency)
//
// Paper shape, local network: BL and Troxy within ~1.8 ms of Jetty;
// Prophecy ≈ 2× (two socket hops). WAN: BL's latency explodes (the voter
// sits behind the WAN and waits for f+1 replies), while Prophecy and
// Troxy track the standalone server (their voters sit next to the
// replicas).
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Figure 11: HTTP service mean latency\n");
    std::printf("(100 clients, 500 req/s open loop, GET/POST page store,\n");
    std::printf(" responses 4-18 KB)\n");

    for (const bool wan : {false, true}) {
        HttpParams params;
        params.wan = wan;
        if (wan) {
            params.warmup = troxy::sim::milliseconds(1000);
        }

        std::vector<Row> rows;
        for (const HttpSystem system :
             {HttpSystem::Standalone, HttpSystem::Baseline,
              HttpSystem::Prophecy, HttpSystem::Troxy}) {
            rows.push_back(run_http(system, params));
        }
        print_table(wan ? "WAN clients (100±20 ms)" : "local network", rows,
                    /*ratio_vs_first=*/false);
    }
    return 0;
}
