// Ablation: how much of etroxy's overhead is the enclave boundary?
//
// Sweeps the modelled SGX transition cost from free to 4x the calibrated
// value at the paper's most transition-sensitive point (256 B writes,
// local network). At cost 0 etroxy collapses onto ctroxy-minus-JNI; at
// the calibrated value it shows the paper's ~43% loss.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Ablation: enclave transition cost sweep\n");
    std::printf("(256 B writes, local network; baseline BL for scale)\n");

    MicroParams params;
    params.read_workload = false;
    params.request_size = 256;
    params.clients = 64;
    params.pipeline = 8;

    std::vector<Row> rows;
    rows.push_back(run_micro(SystemKind::Baseline, params).row);

    const double calibrated =
        troxy::sim::EnclaveCosts::sgx_v1().ecall_transition_ns;
    for (const double factor : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        MicroParams swept = params;
        swept.enclave_costs = troxy::sim::EnclaveCosts::sgx_v1();
        swept.enclave_costs.ecall_transition_ns = calibrated * factor;
        swept.enclave_costs.ocall_transition_ns = calibrated * factor;
        MicroResult result = run_micro(SystemKind::ETroxy, swept);
        result.row.label = "etroxy, transition x" + std::to_string(factor)
                               .substr(0, 3);
        std::printf("  [%s] %llu ecall transitions\n",
                    result.row.label.c_str(),
                    static_cast<unsigned long long>(
                        result.enclave_transitions));
        rows.push_back(result.row);
    }
    print_table("transition-cost sweep", rows);

    // The orthogonal lever: instead of making each transition cheaper,
    // make fewer of them. Batched voting + wire coalescing at the
    // calibrated transition cost — the transition count itself drops.
    {
        std::vector<Row> vote_rows;
        for (const std::size_t voter : {std::size_t{1}, std::size_t{16}}) {
            MicroParams swept = params;
            swept.voter_batch_max = voter;
            swept.coalesce_wire = voter > 1;
            swept.coalesce_client_sends = voter > 1;
            MicroResult result = run_micro(SystemKind::ETroxy, swept);
            result.row.label =
                "etroxy, voter batch " + std::to_string(voter);
            std::printf(
                "  [%s] %llu ecall transitions (%llu reply batches, "
                "%llu batched replies)\n",
                result.row.label.c_str(),
                static_cast<unsigned long long>(result.enclave_transitions),
                static_cast<unsigned long long>(result.reply_batches),
                static_cast<unsigned long long>(result.batched_replies));
            vote_rows.push_back(result.row);
        }
        print_table("batched voter (calibrated transition cost)",
                    vote_rows);
    }

    // The same lever on the read path: a fast read costs ~3 transitions
    // (handle_request, the remote handle_cache_query, the contact's
    // handle_cache_response). Read-path batching collapses these to
    // per-burst — the transition count drops from per-request to
    // per-burst while throughput rises.
    {
        std::vector<Row> read_rows;
        for (const std::size_t read_batch :
             {std::size_t{1}, std::size_t{16}}) {
            MicroParams swept = params;
            swept.read_workload = true;
            swept.reply_size = 1024;
            swept.fastread_batch_max = read_batch;
            swept.voter_batch_max = read_batch;
            swept.batch_reply_auth = read_batch > 1;
            swept.coalesce_wire = read_batch > 1;
            swept.coalesce_client_sends = read_batch > 1;
            MicroResult result = run_micro(SystemKind::ETroxy, swept);
            result.row.label =
                "etroxy, read batch " + std::to_string(read_batch);
            const double per_request =
                result.row.throughput > 0.0
                    ? static_cast<double>(result.enclave_transitions) /
                          (result.fast_read_hits + result.ordered_requests +
                           1.0)
                    : 0.0;
            std::printf(
                "  [%s] %llu ecall transitions (%.2f per served request; "
                "%llu query batches / %llu batched queries)\n",
                result.row.label.c_str(),
                static_cast<unsigned long long>(result.enclave_transitions),
                per_request,
                static_cast<unsigned long long>(result.cache_query_batches),
                static_cast<unsigned long long>(
                    result.batched_cache_queries));
            read_rows.push_back(result.row);
        }
        print_table("batched fast reads (calibrated transition cost)",
                    read_rows);
    }
    return 0;
}
