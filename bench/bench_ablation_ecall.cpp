// Ablation: how much of etroxy's overhead is the enclave boundary?
//
// Sweeps the modelled SGX transition cost from free to 4x the calibrated
// value at the paper's most transition-sensitive point (256 B writes,
// local network). At cost 0 etroxy collapses onto ctroxy-minus-JNI; at
// the calibrated value it shows the paper's ~43% loss.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Ablation: enclave transition cost sweep\n");
    std::printf("(256 B writes, local network; baseline BL for scale)\n");

    MicroParams params;
    params.read_workload = false;
    params.request_size = 256;
    params.clients = 64;
    params.pipeline = 8;

    std::vector<Row> rows;
    rows.push_back(run_micro(SystemKind::Baseline, params).row);

    const double calibrated =
        troxy::sim::EnclaveCosts::sgx_v1().ecall_transition_ns;
    for (const double factor : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        MicroParams swept = params;
        swept.enclave_costs = troxy::sim::EnclaveCosts::sgx_v1();
        swept.enclave_costs.ecall_transition_ns = calibrated * factor;
        swept.enclave_costs.ocall_transition_ns = calibrated * factor;
        Row row = run_micro(SystemKind::ETroxy, swept).row;
        row.label = "etroxy, transition x" + std::to_string(factor)
                        .substr(0, 3);
        rows.push_back(row);
    }
    print_table("transition-cost sweep", rows);
    return 0;
}
