// Figure 6 (§VI-C1): totally ordered write requests, local network.
//
// Request sizes 256 B / 1 KB / 4 KB / 8 KB, reply 10 B. Compares the
// original Hybster (BL, traditional client-side library) against the
// Troxy variants: ctroxy (native code outside SGX — isolates the cost of
// relocating the client library) and etroxy (inside the enclave — adds
// transition costs).
//
// Paper shape: etroxy ≈ 43% below BL at 256 B, roughly half of that loss
// attributable to the trusted subsystem (ctroxy sits in between), and
// etroxy converges to BL at 8 KB because native message authentication
// outpaces Java on large payloads.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Figure 6: totally ordered requests, local network\n");
    std::printf("(writes of varying size, 10 B replies, closed loop)\n");

    for (const std::size_t size : {256u, 1024u, 4096u, 8192u}) {
        MicroParams params;
        params.read_workload = false;
        params.request_size = size;
        params.clients = 48;
        params.pipeline = 4;

        std::vector<Row> rows;
        for (const SystemKind system :
             {SystemKind::Baseline, SystemKind::CTroxy,
              SystemKind::ETroxy}) {
            rows.push_back(run_micro(system, params).row);
        }
        print_table("request size " + std::to_string(size) + " B", rows);
    }
    return 0;
}
