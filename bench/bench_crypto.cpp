// Microbenchmarks of the real cryptographic primitives (google-benchmark).
//
// These run the actual implementations (no fast mode): useful both as a
// regression guard and to sanity-check the cost-model ratios used by the
// simulation (native SHA/HMAC per-byte costs vs the modelled values).
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace {

using namespace troxy;

Bytes make_payload(std::size_t size) {
    Bytes data(size);
    for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::uint8_t>(i * 131 + 7);
    }
    return data;
}

void BM_Sha256(benchmark::State& state) {
    const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha256(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_HmacSha256(benchmark::State& state) {
    const Bytes key = to_bytes("benchmark-key");
    const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(1024)->Arg(8192);

void BM_AeadSeal(benchmark::State& state) {
    crypto::ChaChaKey key{};
    key[0] = 1;
    crypto::ChaChaNonce nonce{};
    const Bytes aad = to_bytes("header");
    const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::aead_seal(key, nonce, aad, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(256)->Arg(1024)->Arg(8192);

void BM_AeadOpen(benchmark::State& state) {
    crypto::ChaChaKey key{};
    key[0] = 1;
    crypto::ChaChaNonce nonce{};
    const Bytes aad = to_bytes("header");
    const Bytes sealed = crypto::aead_seal(
        key, nonce, aad, make_payload(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::aead_open(key, nonce, aad, sealed));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(256)->Arg(8192);

void BM_X25519(benchmark::State& state) {
    const crypto::X25519Keypair alice =
        crypto::x25519_keypair_from_seed(to_bytes("alice"));
    const crypto::X25519Keypair bob =
        crypto::x25519_keypair_from_seed(to_bytes("bob"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::x25519(alice.private_key, bob.public_key));
    }
}
BENCHMARK(BM_X25519);

}  // namespace

BENCHMARK_MAIN();
