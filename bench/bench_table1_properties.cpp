// Table I (§VI-D): comparison of the read-optimization approaches.
//
// The table's structural columns (replica count, read quorum) are read
// off the *actual* running systems rather than restated; the consistency
// column is verified behaviourally: after a write completes, a read
// through each system either must return the new value (strong) or may
// return the previous one (weak — Prophecy's sketch reflects the latest
// read, not the latest write).
#include <cstdio>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "crypto/fastmode.hpp"
#include "http/http.hpp"
#include "http/page_service.hpp"

using namespace troxy;
using troxy::apps::EchoService;

namespace {

// Probes Prophecy's consistency: a lagging-but-correct replica that
// matches the stale sketch makes the fast path return a stale result.
// We demonstrate the *window*: read, write, then read again while one
// replica drops protocol messages (stays behind); the sketch still holds
// the old hash, so if the random fast-path replica is the laggard the old
// value is returned.
bool prophecy_can_return_stale(std::uint64_t seed) {
    bench::ProphecyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<http::PageService>(4); };
    params.classifier = http::PageService::classifier();
    bench::ProphecyCluster cluster(params);
    auto& client = cluster.add_client();

    // Replica 3 lags: it participates in nothing (crash-style).
    hybster::FaultProfile lag;
    lag.crashed = true;
    cluster.replica(3).set_faults(lag);

    std::string second_read;
    bool done = false;
    client.start([&]() {
        client.send(http::PageService::make_get(1), [&](Bytes) {
            client.send(
                http::PageService::make_post(1, to_bytes("fresh")),
                [&](Bytes) {
                    // Un-crash the laggard: it rejoins with stale state
                    // (it missed the write) and may serve the fast read.
                    cluster.replica(3).set_faults(hybster::FaultProfile{});
                    client.send(http::PageService::make_get(1),
                                [&](Bytes response) {
                                    auto parsed =
                                        http::parse_response(response);
                                    if (parsed) {
                                        second_read =
                                            to_string(parsed->body);
                                    }
                                    done = true;
                                });
                });
        });
    });
    cluster.simulator().run_until(sim::seconds(20));
    return done && second_read != "fresh";
}

bool troxy_read_is_fresh(std::uint64_t seed) {
    bench::TroxyCluster::Params params;
    params.base.seed = seed;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster cluster(std::move(params));
    auto& client = cluster.add_client(0);

    // One replica stops maintaining its Troxy's cache (stale cache).
    hybster::FaultProfile drop;
    drop.drop_replies = true;
    cluster.host(2).replica().set_faults(drop);

    bool fresh = true;
    bool done = false;
    client.start([&]() {
        client.send(EchoService::make_write(1, 64), [&](Bytes) {
            client.send(EchoService::make_read(1, 32, 64), [&](Bytes) {
                client.send(EchoService::make_write(1, 64), [&](Bytes) {
                    client.send(
                        EchoService::make_read(1, 32, 64),
                        [&](Bytes reply) {
                            fresh = reply ==
                                    EchoService::expected_read_reply(1, 2,
                                                                     64);
                            done = true;
                        });
                });
            });
        });
    });
    cluster.simulator().run_until(sim::seconds(20));
    return done && fresh;
}

}  // namespace

int main() {
    crypto::set_fast_crypto(true);

    // Instantiate each deployment and read its structural properties.
    bench::BaselineCluster::Params bl;
    bl.base.seed = 1;
    bl.service = []() { return std::make_unique<EchoService>(); };
    bench::BaselineCluster baseline(bl);

    bench::ProphecyCluster::Params pr;
    pr.base.seed = 1;
    pr.service = []() { return std::make_unique<http::PageService>(4); };
    pr.classifier = http::PageService::classifier();
    bench::ProphecyCluster prophecy(pr);

    bench::TroxyCluster::Params tx;
    tx.base.seed = 1;
    tx.service = []() { return std::make_unique<EchoService>(); };
    tx.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    bench::TroxyCluster troxy_cluster(std::move(tx));

    // Behavioural consistency probes: Prophecy must exhibit a stale read
    // in at least one seeded run; Troxy must never.
    bool prophecy_stale = false;
    for (std::uint64_t seed = 1; seed <= 8 && !prophecy_stale; ++seed) {
        prophecy_stale = prophecy_can_return_stale(seed);
    }
    bool troxy_fresh = true;
    for (std::uint64_t seed = 1; seed <= 4 && troxy_fresh; ++seed) {
        troxy_fresh = troxy_read_is_fresh(seed);
    }

    std::printf("Table I: read optimization approaches\n\n");
    std::printf("%-10s %10s %26s %14s\n", "system", "replicas",
                "read quorum", "consistency");
    std::printf("%-10s %10d %26s %14s\n", "BL",
                baseline.config().n(),
                (std::to_string(baseline.config().quorum()) + " replicas")
                    .c_str(),
                "strong");
    std::printf("%-10s %10d %26s %14s\n", "Prophecy", prophecy.config().n(),
                "1 replica + middlebox",
                prophecy_stale ? "weak (observed)" : "weak");
    std::printf("%-10s %10d %26s %14s\n", "Troxy", troxy_cluster.n(),
                (std::to_string(troxy_cluster.config().quorum()) +
                 " troxy caches")
                    .c_str(),
                troxy_fresh ? "strong (verified)" : "VIOLATED");

    std::printf("\nbehavioural probes:\n");
    std::printf("  prophecy stale read after write observed: %s\n",
                prophecy_stale ? "yes (weak consistency confirmed)" : "no");
    std::printf("  troxy reads always reflect latest write : %s\n",
                troxy_fresh ? "yes (strong consistency held)" : "NO");
    return troxy_fresh ? 0 : 1;
}
