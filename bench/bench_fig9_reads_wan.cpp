// Figure 9 (§VI-C2): read-only workload with WAN clients.
//
// The abstract's headline: for read-heavy workloads over a wide-area
// network Troxy improves throughput by ~130%. Mechanism: the BL read
// optimization pulls 2f+1 full-size replies across the clients' WAN
// downlink per read, while a Troxy fast read sends exactly one — and the
// Troxies only exchange reply *hashes* among themselves (§VI-C2).
//
// Paper shape: etroxy −33% at 256 B replies, ≥ +15% above 1 KB, growing
// with reply size.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Figure 9: read-only requests, WAN clients\n");
    std::printf("(10 B requests, replies of varying size, 100±20 ms\n");
    std::printf(" client links)\n");

    for (const std::size_t reply : {256u, 1024u, 4096u, 8192u}) {
        MicroParams params;
        params.read_workload = true;
        params.write_fraction = 0.0;
        params.reply_size = reply;
        params.baseline_optimistic_reads = true;
        params.wan = true;
        params.clients = 100;
        params.pipeline = 320;
        params.warmup = troxy::sim::milliseconds(1000);
        params.window = troxy::sim::seconds(2);

        std::vector<Row> rows;
        for (const SystemKind system :
             {SystemKind::Baseline, SystemKind::ETroxy}) {
            rows.push_back(run_micro(system, params).row);
        }
        {
            // Batched read pipeline on top of the WAN win: server-side
            // ecall amortization is orthogonal to the downlink savings.
            MicroParams batched = params;
            batched.fastread_batch_max = 16;
            batched.voter_batch_max = 16;
            batched.batch_reply_auth = true;
            batched.coalesce_wire = true;
            batched.coalesce_client_sends = true;
            MicroResult result = run_micro(SystemKind::ETroxy, batched);
            result.row.label = "etroxy r=16";
            rows.push_back(result.row);
        }
        print_table("reply size " + std::to_string(reply) + " B (WAN)",
                    rows);
    }
    return 0;
}
