// Figure 8 (§VI-C2): read-only workload, local network.
//
// Requests are 10 B, replies 256 B / 1 KB / 4 KB / 8 KB. BL uses the
// PBFT-like read optimization (non-ordered execution at all replicas, the
// client accepts f+1 identical replies); Troxy serves reads from its
// managed fast-read cache (local hit + f matching remote cache hashes).
//
// Paper shape: at 256 B replies the server-side voter costs etroxy up to
// 115% vs BL; as replies grow the cheap hash-only cache coordination and
// the single full-size reply win — etroxy overtakes around 4 KB and is
// ~30% ahead at 8 KB.
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Figure 8: read-only requests, local network\n");
    std::printf("(10 B requests, replies of varying size; BL = PBFT-like\n");
    std::printf(" read optimization, Troxy = fast-read cache)\n");

    for (const std::size_t reply : {256u, 1024u, 4096u, 8192u}) {
        MicroParams params;
        params.read_workload = true;
        params.write_fraction = 0.0;
        params.reply_size = reply;
        params.baseline_optimistic_reads = true;
        params.clients = 64;
        params.pipeline = 8;

        std::vector<Row> rows;
        std::vector<MicroResult> results;
        for (const SystemKind system :
             {SystemKind::Baseline, SystemKind::ETroxy}) {
            results.push_back(run_micro(system, params));
            rows.push_back(results.back().row);
        }
        {
            // Batched read pipeline: cache-query bursts, batched response
            // application, batched reply certification, coalesced records.
            MicroParams batched = params;
            batched.fastread_batch_max = 16;
            batched.voter_batch_max = 16;
            batched.batch_reply_auth = true;
            batched.coalesce_wire = true;
            batched.coalesce_client_sends = true;
            MicroResult result = run_micro(SystemKind::ETroxy, batched);
            result.row.label = "etroxy r=16";
            results.push_back(std::move(result));
            rows.push_back(results.back().row);
        }
        print_table("reply size " + std::to_string(reply) + " B", rows);
        const MicroResult& troxy_result = results.back();
        std::printf("  troxy fast reads: %llu hits, %llu ordered, "
                    "%llu conflicts\n",
                    static_cast<unsigned long long>(
                        troxy_result.fast_read_hits),
                    static_cast<unsigned long long>(
                        troxy_result.ordered_requests),
                    static_cast<unsigned long long>(
                        troxy_result.fast_read_conflicts));
    }
    return 0;
}
