// Figure 10 (§VI-C3): concurrency handling — 1% writes among reads.
//
// The writes invalidate cache entries / outdate optimistic read results,
// so both read optimizations suffer conflicts:
//   * BL's PBFT-like optimization re-orders a read whenever the f+1
//     optimistic replies disagree (paper: ~50% of reads conflict, pushing
//     BL to about half of its all-ordered reference throughput);
//   * Troxy's cache invalidation turns subsequent reads into ordered
//     requests before they can conflict (paper: ~14% observed conflicts),
//     landing slightly below Troxy's own reference;
//   * the optimized Troxy monitors the miss rate and switches to
//     total-order mode when fast reads stop paying off, guaranteeing the
//     reference throughput as a lower bound.
//
// Reference rows execute every read through the ordering protocol
// (optimizations disabled).
#include <cstdio>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

int main() {
    troxy::crypto::set_fast_crypto(true);
    using namespace troxy::bench;

    std::printf("Figure 10: concurrency handling (99%% reads, 1%% writes,\n");
    std::printf("local network, contended keys)\n");

    MicroParams base;
    base.read_workload = true;
    base.write_fraction = 0.01;
    base.reply_size = 1024;
    base.key_count = 1;  // one hot key → real write contention
    base.clients = 64;
    base.pipeline = 8;
    // Real testbeds de-synchronize replicas (GC pauses, switch queueing);
    // the conflict phenomenon depends on it (see ClusterOptions).
    base.lan_jitter = troxy::sim::microseconds(800);

    std::vector<Row> rows;

    // BL reference: no read optimization, everything ordered.
    MicroParams bl_ref = base;
    bl_ref.baseline_optimistic_reads = false;
    Row bl_ref_row = run_micro(SystemKind::Baseline, bl_ref).row;
    bl_ref_row.label = "BL reference (all ordered)";
    rows.push_back(bl_ref_row);

    // BL with the PBFT-like read optimization under write contention.
    MicroParams bl_opt = base;
    bl_opt.baseline_optimistic_reads = true;
    MicroResult bl_result = run_micro(SystemKind::Baseline, bl_opt);
    bl_result.row.label = "BL read optimization";
    rows.push_back(bl_result.row);

    // Troxy reference: fast reads disabled.
    MicroParams troxy_ref = base;
    troxy_ref.fast_reads = false;
    Row troxy_ref_row = run_micro(SystemKind::ETroxy, troxy_ref).row;
    troxy_ref_row.label = "Troxy reference (all ordered)";
    rows.push_back(troxy_ref_row);

    // Troxy fast reads without the adaptive monitor.
    MicroParams troxy_plain = base;
    troxy_plain.adaptive_monitor = false;
    MicroResult troxy_result = run_micro(SystemKind::ETroxy, troxy_plain);
    troxy_result.row.label = "Troxy fast-read cache";
    rows.push_back(troxy_result.row);

    // Optimized Troxy: miss-rate monitor may switch to total-order mode.
    MicroParams troxy_adaptive = base;
    troxy_adaptive.adaptive_monitor = true;
    MicroResult adaptive_result =
        run_micro(SystemKind::ETroxy, troxy_adaptive);
    adaptive_result.row.label = "Troxy optimized (adaptive)";
    rows.push_back(adaptive_result.row);

    print_table("99% reads / 1% writes", rows, /*ratio_vs_first=*/true);

    std::printf("\nconflict rates:\n");
    std::printf("  BL read optimization : %5.1f%% of optimistic reads "
                "re-ordered\n",
                100.0 * bl_result.conflict_rate());
    std::printf("  Troxy fast reads     : %5.1f%% of fast-read attempts "
                "missed/conflicted\n",
                100.0 * troxy_result.conflict_rate());
    std::printf("  Troxy optimized      : %5.1f%% (mode switches: %llu)\n",
                100.0 * adaptive_result.conflict_rate(),
                static_cast<unsigned long long>(
                    adaptive_result.mode_switches));
    return 0;
}
