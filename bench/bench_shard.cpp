// Sharded-Troxy benchmark: partitioned replica groups behind one
// transparent front (BENCH_shard.json).
//
// Three parts:
//
//   1. Saturation sweep — closed-loop pure-write workload against a
//      ShardedTroxyCluster for S ∈ {1, 2, 4, 8}. The service carries a
//      fixed modeled execution cost, so ordered-write throughput is
//      execution-bound — exactly the resource a key-range partition
//      multiplies: each shard orders and executes only its slice of the
//      key space. S = 1 is the unsharded deployment (no front node);
//      S > 1 routes everything through the ShardFrontHost. CI gates the
//      S=4 aggregate ordered-write throughput at >= 3.0x S=1. One extra
//      cell runs S=4 with a multiwrite fraction whose partner key lands
//      on another shard, pricing the ordered two-shard commit lane.
//
//   2. Multiwrite sweep — S=4 with zero modeled execution cost:
//      cross_shard_fraction ∈ {0, 10, 50, 100}% x F ∈ {1, 2, 4} fronts
//      at 64 B requests (the cross-shard commit engine is the variable;
//      the shards bind before one front does), plus a serialized-lane
//      baseline (cross_pipeline_depth = 1) at 50% and a front-scaling
//      set at 4 KB requests where the front's per-byte AEAD passes
//      dominate and routed throughput tracks F. Reports windowed
//      cross-commit rate, commit latency percentiles and lock-table
//      counters; CI gates the pipelined engine's cross-commit rate
//      against the serialized lane and the F=2 routed throughput
//      against F=1 in the 4 KB set.
//
//   3. Open-loop population sweep — S ∈ {1, 2, 4, 8} x {1e4, 1e5, 1e6}
//      virtual clients (OpenLoopSuite: one aggregate-rate Poisson chain
//      over a bounded connection pool with session churn) at a fixed
//      offered rate, reporting tail latency and front routing counters
//      as the population grows.
//
// Flags: --smoke     S ∈ {1, 4}, reduced sweeps, short windows
//        --out PATH  JSON output path (default BENCH_shard.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"
#include "crypto/fastmode.hpp"

namespace {

using namespace troxy;
using namespace troxy::bench;
namespace sim = troxy::sim;

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// EchoService with a fixed modeled execution cost on top: a service
/// whose request handling, not the protocol, is the bottleneck — the
/// regime where partitioning the key space multiplies throughput.
class HeavyEchoService final : public hybster::Service {
  public:
    explicit HeavyEchoService(sim::Duration cost) : cost_(cost) {}

    [[nodiscard]] hybster::RequestInfo classify(
        ByteView request) const override {
        return inner_.classify(request);
    }
    Bytes execute(ByteView request) override {
        return inner_.execute(request);
    }
    [[nodiscard]] Bytes checkpoint() const override {
        return inner_.checkpoint();
    }
    void restore(ByteView snapshot) override { inner_.restore(snapshot); }
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override {
        return cost_ + inner_.execution_cost(request);
    }

  private:
    apps::EchoService inner_;
    sim::Duration cost_;
};

std::unique_ptr<ShardedTroxyCluster> make_cluster(
    int shards, int keys, sim::Duration exec_cost, int fronts = 1,
    std::size_t cross_pipeline_depth = 0) {
    ShardedTroxyCluster::Params params;
    params.base.seed = 42;
    params.base.shard_count = shards;
    params.base.front_count = fronts;
    params.front.cross_pipeline_depth = cross_pipeline_depth;
    params.base.batch_size_max = 16;
    params.base.batch_delay = sim::microseconds(200);
    params.base.coalesce_wire = true;
    params.host.coalesce_wire = true;
    params.host.voter_batch_max = 16;
    params.host.batch_reply_auth = true;
    params.ctroxy = true;
    if (exec_cost > 0) {
        params.service = [exec_cost]() {
            return std::make_unique<HeavyEchoService>(exec_cost);
        };
    } else {
        params.service = []() {
            return std::make_unique<apps::EchoService>();
        };
    }
    params.classifier = [](ByteView request) {
        return apps::EchoService().classify(request);
    };
    if (shards > 1) {
        std::vector<std::string> universe;
        universe.reserve(static_cast<std::size_t>(keys));
        for (int k = 0; k < keys; ++k) {
            universe.push_back("k" + std::to_string(k));
        }
        params.map = troxy_core::ShardMap::split_evenly(
            std::move(universe), shards);
    }
    return std::make_unique<ShardedTroxyCluster>(std::move(params));
}

struct FrontCounters {
    std::uint64_t requests = 0;
    std::uint64_t released = 0;
    std::uint64_t cross_shard_commits = 0;
    std::uint64_t upstream_failovers = 0;
    int router_fanout = 0;
    std::uint64_t cross_lock_waits = 0;
    std::uint64_t cross_inflight_peak = 0;  // max over fronts
    std::vector<std::uint64_t> shard_forwarded;
};

/// Tier-wide counters: sums over every front (peaks take the max).
FrontCounters front_counters(ShardedTroxyCluster& cluster) {
    FrontCounters out;
    for (int f = 0; f < cluster.front_count(); ++f) {
        const auto status = cluster.front(f).status();
        out.requests += status.requests;
        out.released += status.released;
        out.cross_shard_commits += status.cross_shard_commits;
        out.upstream_failovers += status.upstream_failovers;
        out.router_fanout = status.router_fanout;
        out.cross_lock_waits += status.cross_lock_waits;
        out.cross_inflight_peak = std::max(out.cross_inflight_peak,
                                           status.cross_inflight_peak);
        if (out.shard_forwarded.size() < status.shards.size()) {
            out.shard_forwarded.resize(status.shards.size(), 0);
        }
        for (std::size_t s = 0; s < status.shards.size(); ++s) {
            out.shard_forwarded[s] += status.shards[s].forwarded;
        }
    }
    return out;
}

void json_front(std::FILE* json, const FrontCounters& front);

/// Cross-commit latency percentile merged over every front's samples.
double tier_cross_percentile_ms(ShardedTroxyCluster& cluster, double p) {
    std::vector<sim::Duration> samples;
    for (int f = 0; f < cluster.front_count(); ++f) {
        const auto& front_samples = cluster.front(f).cross_latencies();
        samples.insert(samples.end(), front_samples.begin(),
                       front_samples.end());
    }
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const auto index = std::min(static_cast<std::size_t>(rank + 0.5),
                                samples.size() - 1);
    return sim::to_millis(samples[index]);
}

// --------------------------------------------------------- saturation

struct SatCell {
    int shards = 0;
    double cross_fraction = 0.0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    double wall_s = 0.0;
    std::uint64_t sim_events = 0;
    FrontCounters front;
};

SatCell run_saturation(int shards, double cross_fraction, bool smoke,
                       int connections, int pipeline) {
    const int keys = 4096;
    // 400 us of modeled execution per write: the shard's replica cores
    // saturate near 20k ordered writes/s, well under the routing front's
    // ceiling, so the S-sweep measures how the partition multiplies the
    // execution budget.
    auto cluster = make_cluster(shards, keys, sim::microseconds(400));
    std::vector<troxy_core::LegacyClient*> conns;
    for (int i = 0; i < connections; ++i) {
        conns.push_back(&cluster->add_client());
    }

    const sim::Duration warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(400);
    const sim::Duration window =
        smoke ? sim::milliseconds(800) : sim::milliseconds(1500);
    Recorder recorder(warmup, window);

    Workload workload(
        cluster->simulator(), recorder,
        [keys, cross_fraction](Rng& rng) {
            GeneratedRequest out;
            const std::uint64_t key =
                rng.next_below(static_cast<std::uint64_t>(keys));
            if (cross_fraction > 0.0 &&
                rng.next_double() < cross_fraction) {
                // Partner half the key space away: on another shard for
                // every even S, forcing the ordered two-shard commit.
                out.payload = apps::EchoService::make_multi_write(
                    key,
                    (key + static_cast<std::uint64_t>(keys) / 2) %
                        static_cast<std::uint64_t>(keys),
                    64);
            } else {
                out.payload = apps::EchoService::make_write(key, 64);
            }
            return out;
        },
        /*seed=*/42);
    for (auto* conn : conns) workload.drive_legacy(*conn, pipeline);

    const auto start = std::chrono::steady_clock::now();
    cluster->simulator().run_until(recorder.window_end() +
                                   sim::milliseconds(500));

    SatCell cell;
    cell.shards = shards;
    cell.cross_fraction = cross_fraction;
    cell.throughput = recorder.throughput_per_sec();
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.issued = workload.issued();
    cell.completed = recorder.completed();
    cell.wall_s = wall_seconds_since(start);
    cell.sim_events = cluster->simulator().executed_events();
    cell.front = front_counters(*cluster);
    return cell;
}

// ---------------------------------------------------- multiwrite sweep

struct MwCell {
    int shards = 0;
    int fronts = 0;
    double cross_fraction = 0.0;
    std::size_t depth = 0;  // 0 = unbounded pipelining, 1 = serialized
    std::size_t payload = 64;  // request bytes (front AEAD work scales)
    double throughput = 0.0;       // routed requests/s (all ops)
    double cross_rate = 0.0;       // cross-shard commits/s in the window
    double cross_p50_ms = 0.0;     // admission → owner-reply release
    double cross_p99_ms = 0.0;
    double p50_ms = 0.0;           // client-observed request latency
    double p99_ms = 0.0;
    std::uint64_t completed = 0;
    double wall_s = 0.0;
    FrontCounters front;
};

/// Multiwrite-heavy cell with zero modeled execution cost: the shards'
/// execution budget is out of the picture, so throughput measures the
/// front tier and the cross-shard commit engine — the two things this
/// sweep varies (F fronts, pipelined vs serialized lane).
MwCell run_multiwrite(int shards, int fronts, double cross_fraction,
                      std::size_t depth, bool smoke,
                      std::size_t payload = 64) {
    const int keys = 4096;
    const int connections = 64;
    const int pipeline = 64;
    auto cluster =
        make_cluster(shards, keys, /*exec_cost=*/0, fronts, depth);
    std::vector<troxy_core::LegacyClient*> conns;
    for (int i = 0; i < connections; ++i) {
        conns.push_back(&cluster->add_client());
    }

    const sim::Duration warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(400);
    const sim::Duration window =
        smoke ? sim::milliseconds(800) : sim::milliseconds(1500);
    Recorder recorder(warmup, window);

    Workload workload(
        cluster->simulator(), recorder,
        [keys, cross_fraction, payload](Rng& rng) {
            GeneratedRequest out;
            const std::uint64_t key =
                rng.next_below(static_cast<std::uint64_t>(keys));
            if (cross_fraction > 0.0 &&
                rng.next_double() < cross_fraction) {
                out.payload = apps::EchoService::make_multi_write(
                    key,
                    (key + static_cast<std::uint64_t>(keys) / 2) %
                        static_cast<std::uint64_t>(keys),
                    payload);
            } else {
                out.payload = apps::EchoService::make_write(key, payload);
            }
            return out;
        },
        /*seed=*/42);
    for (auto* conn : conns) workload.drive_legacy(*conn, pipeline);

    // Windowed cross-commit rate: snapshot the tier's completed-commit
    // counter at the measurement window's edges.
    std::uint64_t cross_at_start = 0;
    std::uint64_t cross_at_end = 0;
    auto tier_cross = [&cluster]() {
        std::uint64_t sum = 0;
        for (int f = 0; f < cluster->front_count(); ++f) {
            sum += cluster->front(f).status().cross_shard_commits;
        }
        return sum;
    };
    cluster->simulator().after(
        warmup, [&]() { cross_at_start = tier_cross(); });
    cluster->simulator().after(
        warmup + window, [&]() { cross_at_end = tier_cross(); });

    const auto start = std::chrono::steady_clock::now();
    cluster->simulator().run_until(recorder.window_end() +
                                   sim::milliseconds(500));

    MwCell cell;
    cell.shards = shards;
    cell.fronts = fronts;
    cell.cross_fraction = cross_fraction;
    cell.depth = depth;
    cell.payload = payload;
    cell.throughput = recorder.throughput_per_sec();
    cell.cross_rate =
        static_cast<double>(cross_at_end - cross_at_start) /
        sim::to_seconds(window);
    cell.cross_p50_ms = tier_cross_percentile_ms(*cluster, 0.50);
    cell.cross_p99_ms = tier_cross_percentile_ms(*cluster, 0.99);
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.completed = recorder.completed();
    cell.wall_s = wall_seconds_since(start);
    cell.front = front_counters(*cluster);
    return cell;
}

void print_mw(const MwCell& cell) {
    std::printf(
        "  [F=%d %3.0f%% cross %4lluB%s] %8.0f req/s, %8.0f commits/s, "
        "commit p50 %6.2f ms p99 %6.2f ms, %llu lock waits, peak %llu in "
        "flight\n",
        cell.fronts, cell.cross_fraction * 100.0,
        static_cast<unsigned long long>(cell.payload),
        cell.depth == 1 ? " serialized" : "", cell.throughput,
        cell.cross_rate, cell.cross_p50_ms, cell.cross_p99_ms,
        static_cast<unsigned long long>(cell.front.cross_lock_waits),
        static_cast<unsigned long long>(cell.front.cross_inflight_peak));
}

void json_mw(std::FILE* json, const MwCell& c) {
    std::fprintf(
        json,
        "{\"shards\": %d, \"fronts\": %d, \"cross_fraction\": %.2f, "
        "\"cross_pipeline_depth\": %llu, \"payload\": %llu, "
        "\"throughput_per_sec\": %.1f, "
        "\"cross_commits_per_sec\": %.1f, \"cross_p50_ms\": %.3f, "
        "\"cross_p99_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"completed\": %llu, \"wall_clock_s\": %.3f, ",
        c.shards, c.fronts, c.cross_fraction,
        static_cast<unsigned long long>(c.depth),
        static_cast<unsigned long long>(c.payload), c.throughput,
        c.cross_rate, c.cross_p50_ms, c.cross_p99_ms, c.p50_ms, c.p99_ms,
        static_cast<unsigned long long>(c.completed), c.wall_s);
    json_front(json, c.front);
    std::fprintf(json, "}");
}

// ---------------------------------------------------------- open loop

struct OpenCell {
    int shards = 0;
    std::uint64_t virtual_clients = 0;
    double offered_rate = 0.0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t churned = 0;
    double wall_s = 0.0;
    FrontCounters front;
};

OpenCell run_open_loop(int shards, std::uint64_t virtual_clients,
                       bool smoke) {
    const int keys = 65536;
    auto cluster = make_cluster(shards, keys, /*exec_cost=*/0);

    const int connections = 24;
    std::vector<troxy_core::LegacyClient*> conns;
    for (int i = 0; i < connections; ++i) {
        conns.push_back(&cluster->add_client());
    }

    const sim::Duration warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(500);
    const sim::Duration window =
        smoke ? sim::milliseconds(600) : sim::seconds(2);
    Recorder recorder(warmup, window);

    OpenLoopOptions wl;
    wl.rate_per_sec = smoke ? 8000.0 : 20000.0;
    wl.virtual_clients = virtual_clients;
    wl.keys = static_cast<std::uint64_t>(keys);
    wl.zipf_s = 0.0;
    wl.read_fraction = 0.5;
    wl.churn_per_sec = 20.0;
    OpenLoopSuite suite(
        cluster->simulator(), recorder, wl,
        [](Rng&, const OpenLoopArrival& arrival) {
            if (arrival.is_read) {
                return apps::EchoService::make_read(arrival.key, 32, 128);
            }
            return apps::EchoService::make_write(arrival.key, 64);
        },
        /*seed=*/42);
    for (auto* conn : conns) suite.add_connection(*conn);
    suite.start();

    const auto start = std::chrono::steady_clock::now();
    cluster->simulator().run_until(recorder.window_end() +
                                   sim::milliseconds(500));

    OpenCell cell;
    cell.shards = shards;
    cell.virtual_clients = virtual_clients;
    cell.offered_rate = wl.rate_per_sec;
    cell.throughput = recorder.throughput_per_sec();
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.issued = suite.issued();
    cell.completed = suite.completed();
    cell.churned = suite.churned_sessions();
    cell.wall_s = wall_seconds_since(start);
    cell.front = front_counters(*cluster);
    return cell;
}

void print_front(const FrontCounters& front) {
    if (front.router_fanout == 0) return;
    std::printf("      front: %llu routed, %llu released, %llu cross, "
                "%llu failovers, fanout %d, per-shard [",
                static_cast<unsigned long long>(front.requests),
                static_cast<unsigned long long>(front.released),
                static_cast<unsigned long long>(front.cross_shard_commits),
                static_cast<unsigned long long>(front.upstream_failovers),
                front.router_fanout);
    for (std::size_t s = 0; s < front.shard_forwarded.size(); ++s) {
        std::printf("%s%llu", s > 0 ? " " : "",
                    static_cast<unsigned long long>(
                        front.shard_forwarded[s]));
    }
    std::printf("]\n");
}

void json_front(std::FILE* json, const FrontCounters& front) {
    std::fprintf(json,
                 "\"front_requests\": %llu, \"front_released\": %llu, "
                 "\"cross_shard_commits\": %llu, "
                 "\"upstream_failovers\": %llu, \"router_fanout\": %d, "
                 "\"cross_lock_waits\": %llu, "
                 "\"cross_inflight_peak\": %llu, "
                 "\"shard_forwarded\": [",
                 static_cast<unsigned long long>(front.requests),
                 static_cast<unsigned long long>(front.released),
                 static_cast<unsigned long long>(front.cross_shard_commits),
                 static_cast<unsigned long long>(front.upstream_failovers),
                 front.router_fanout,
                 static_cast<unsigned long long>(front.cross_lock_waits),
                 static_cast<unsigned long long>(front.cross_inflight_peak));
    for (std::size_t s = 0; s < front.shard_forwarded.size(); ++s) {
        std::fprintf(json, "%s%llu", s > 0 ? ", " : "",
                     static_cast<unsigned long long>(
                         front.shard_forwarded[s]));
    }
    std::fprintf(json, "]");
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_shard.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // Part 1: saturation sweep.
    const std::vector<int> shard_counts =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
    std::printf("saturation: closed-loop pure writes, 400 us/op modeled "
                "execution, 48 conns x 48 pipeline\n");
    std::vector<SatCell> saturation;
    for (const int shards : shard_counts) {
        SatCell cell = run_saturation(shards, 0.0, smoke, 48, 48);
        std::printf("  [S=%d] %8.0f writes/s, p50 %6.2f ms, p99 %6.2f ms "
                    "(%llu completed, %.1fs wall)\n",
                    cell.shards, cell.throughput, cell.p50_ms, cell.p99_ms,
                    static_cast<unsigned long long>(cell.completed),
                    cell.wall_s);
        print_front(cell.front);
        saturation.push_back(std::move(cell));
    }
    double s1_throughput = 0.0;
    for (const SatCell& cell : saturation) {
        if (cell.shards == 1) s1_throughput = cell.throughput;
    }
    auto speedup_of = [&](int shards) {
        for (const SatCell& cell : saturation) {
            if (cell.shards == shards && s1_throughput > 0.0) {
                return cell.throughput / s1_throughput;
            }
        }
        return 0.0;
    };
    std::printf("  speedups vs S=1:");
    for (const int shards : shard_counts) {
        if (shards == 1) continue;
        std::printf(" S=%d %.2fx", shards, speedup_of(shards));
    }
    std::printf("\n");

    // Cross-shard pricing: S=4 with 10% two-key multiwrites whose
    // partner lives two shards away. The lane is serialized, so this
    // cell runs a light population — it prices the ordered two-shard
    // commit's latency, not a deliberately overloaded queue.
    SatCell cross = run_saturation(4, 0.10, smoke, 8, 8);
    std::printf("  [S=4 +10%% cross-shard] %8.0f writes/s, p50 %6.2f ms, "
                "p99 %6.2f ms, %llu two-shard commits\n",
                cross.throughput, cross.p50_ms, cross.p99_ms,
                static_cast<unsigned long long>(
                    cross.front.cross_shard_commits));

    // Part 2: multiwrite sweep — the pipelined cross-shard commit engine
    // and the multi-front tier, with execution cost out of the picture.
    const std::vector<double> mw_fractions =
        smoke ? std::vector<double>{0.50}
              : std::vector<double>{0.0, 0.10, 0.50, 1.0};
    const std::vector<int> mw_fronts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    std::printf("multiwrite sweep: S=4, zero exec cost, 64 conns x 64 "
                "pipeline, pipelined lock-table engine\n");
    std::vector<MwCell> mw_cells;
    for (const double fraction : mw_fractions) {
        for (const int fronts : mw_fronts) {
            MwCell cell = run_multiwrite(4, fronts, fraction,
                                         /*depth=*/0, smoke);
            print_mw(cell);
            mw_cells.push_back(std::move(cell));
        }
    }
    // Serialized-lane baseline: the pre-pipelining single-commit flow
    // (depth 1) at the sweep's heaviest shared configuration.
    MwCell serialized = run_multiwrite(4, 1, 0.50, /*depth=*/1, smoke);
    print_mw(serialized);

    auto mw_cell_of = [&](int fronts, double fraction) -> const MwCell* {
        for (const MwCell& cell : mw_cells) {
            if (cell.fronts == fronts &&
                cell.cross_fraction == fraction) {
                return &cell;
            }
        }
        return nullptr;
    };
    const MwCell* pipelined_50_f1 = mw_cell_of(1, 0.50);
    const double pipelined_vs_serialized =
        (pipelined_50_f1 != nullptr && serialized.cross_rate > 0.0)
            ? pipelined_50_f1->cross_rate / serialized.cross_rate
            : 0.0;

    // Front-scaling cells: 4 KB requests make the front's per-byte AEAD
    // passes (downstream record open + one upstream seal per touched
    // shard) the dominant cost, so aggregate routed throughput tracks
    // the number of fronts until the shards bind — the regime the
    // multi-front tier exists for. 64 B requests are front-cheap: there
    // the S=4 shards saturate long before one front does (the F sweep
    // above shows flat throughput across F for exactly that reason).
    const std::vector<int> fs_fronts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    std::printf("front scaling: S=4, 50%% cross, 4 KB requests — front "
                "AEAD-bound\n");
    std::vector<MwCell> fs_cells;
    for (const int fronts : fs_fronts) {
        MwCell cell = run_multiwrite(4, fronts, 0.50, /*depth=*/0, smoke,
                                     /*payload=*/4096);
        print_mw(cell);
        fs_cells.push_back(std::move(cell));
    }
    auto fs_cell_of = [&](int fronts) -> const MwCell* {
        for (const MwCell& cell : fs_cells) {
            if (cell.fronts == fronts) return &cell;
        }
        return nullptr;
    };
    const MwCell* fs_f1 = fs_cell_of(1);
    const MwCell* fs_f2 = fs_cell_of(2);
    const double f2_vs_f1_routed =
        (fs_f1 != nullptr && fs_f2 != nullptr && fs_f1->throughput > 0.0)
            ? fs_f2->throughput / fs_f1->throughput
            : 0.0;
    std::printf("  pipelined vs serialized cross-commit rate: %.2fx; "
                "F=2 vs F=1 routed throughput (4 KB): %.2fx\n",
                pipelined_vs_serialized, f2_vs_f1_routed);

    // Part 3: open-loop population sweep.
    const std::vector<std::uint64_t> populations =
        smoke ? std::vector<std::uint64_t>{100000}
              : std::vector<std::uint64_t>{10000, 100000, 1000000};
    std::printf("open loop: %.0f req/s offered, 50%% reads, 24 sessions, "
                "churn 20/s\n",
                smoke ? 8000.0 : 20000.0);
    std::vector<OpenCell> open_cells;
    for (const int shards : shard_counts) {
        for (const std::uint64_t population : populations) {
            OpenCell cell = run_open_loop(shards, population, smoke);
            std::printf("  [S=%d %7llu clients] %8.0f req/s, p50 %6.2f ms, "
                        "p99 %6.2f ms, %llu churned (%.1fs wall)\n",
                        cell.shards,
                        static_cast<unsigned long long>(
                            cell.virtual_clients),
                        cell.throughput, cell.p50_ms, cell.p99_ms,
                        static_cast<unsigned long long>(cell.churned),
                        cell.wall_s);
            open_cells.push_back(std::move(cell));
        }
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"sharded_troxy\",\n");
    std::fprintf(json,
                 "  \"workload\": \"closed-loop pure writes over 4096 "
                 "keys, 400us/op modeled execution, 48 conns x 48 "
                 "pipeline; open-loop 50%% reads over 65536 keys\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"saturation\": [\n");
    for (std::size_t i = 0; i < saturation.size(); ++i) {
        const SatCell& c = saturation[i];
        std::fprintf(
            json,
            "    {\"shards\": %d, \"cross_fraction\": %.2f, "
            "\"throughput_per_sec\": %.1f, \"p50_ms\": %.3f, "
            "\"p99_ms\": %.3f, \"issued\": %llu, \"completed\": %llu, "
            "\"wall_clock_s\": %.3f, \"sim_events\": %llu, ",
            c.shards, c.cross_fraction, c.throughput, c.p50_ms, c.p99_ms,
            static_cast<unsigned long long>(c.issued),
            static_cast<unsigned long long>(c.completed), c.wall_s,
            static_cast<unsigned long long>(c.sim_events));
        json_front(json, c.front);
        std::fprintf(json, "}%s\n",
                     i + 1 < saturation.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"s4_vs_s1_speedup\": %.3f,\n", speedup_of(4));
    if (!smoke) {
        std::fprintf(json, "  \"s2_vs_s1_speedup\": %.3f,\n",
                     speedup_of(2));
        std::fprintf(json, "  \"s8_vs_s1_speedup\": %.3f,\n",
                     speedup_of(8));
    }
    std::fprintf(json,
                 "  \"cross_shard\": {\"shards\": %d, "
                 "\"cross_fraction\": %.2f, \"throughput_per_sec\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, ",
                 cross.shards, cross.cross_fraction, cross.throughput,
                 cross.p50_ms, cross.p99_ms);
    json_front(json, cross.front);
    std::fprintf(json, "},\n");
    std::fprintf(json, "  \"multiwrite_sweep\": [\n");
    for (std::size_t i = 0; i < mw_cells.size(); ++i) {
        std::fprintf(json, "    ");
        json_mw(json, mw_cells[i]);
        std::fprintf(json, "%s\n", i + 1 < mw_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"cross_serialized\": ");
    json_mw(json, serialized);
    std::fprintf(json, ",\n");
    std::fprintf(json, "  \"front_scaling\": [\n");
    for (std::size_t i = 0; i < fs_cells.size(); ++i) {
        std::fprintf(json, "    ");
        json_mw(json, fs_cells[i]);
        std::fprintf(json, "%s\n", i + 1 < fs_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"cross_pipelined_vs_serialized\": %.3f,\n",
                 pipelined_vs_serialized);
    std::fprintf(json, "  \"f2_vs_f1_routed\": %.3f,\n", f2_vs_f1_routed);
    std::fprintf(json, "  \"open_loop\": [\n");
    for (std::size_t i = 0; i < open_cells.size(); ++i) {
        const OpenCell& c = open_cells[i];
        std::fprintf(
            json,
            "    {\"shards\": %d, \"virtual_clients\": %llu, "
            "\"offered_rate\": %.0f, \"throughput_per_sec\": %.1f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"issued\": %llu, "
            "\"completed\": %llu, \"churned_sessions\": %llu, "
            "\"wall_clock_s\": %.3f, ",
            c.shards, static_cast<unsigned long long>(c.virtual_clients),
            c.offered_rate, c.throughput, c.p50_ms, c.p99_ms,
            static_cast<unsigned long long>(c.issued),
            static_cast<unsigned long long>(c.completed),
            static_cast<unsigned long long>(c.churned), c.wall_s);
        json_front(json, c.front);
        std::fprintf(json, "}%s\n",
                     i + 1 < open_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
