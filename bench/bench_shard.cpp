// Sharded-Troxy benchmark: partitioned replica groups behind one
// transparent front (BENCH_shard.json).
//
// Two parts:
//
//   1. Saturation sweep — closed-loop pure-write workload against a
//      ShardedTroxyCluster for S ∈ {1, 2, 4, 8}. The service carries a
//      fixed modeled execution cost, so ordered-write throughput is
//      execution-bound — exactly the resource a key-range partition
//      multiplies: each shard orders and executes only its slice of the
//      key space. S = 1 is the unsharded deployment (no front node);
//      S > 1 routes everything through the ShardFrontHost. CI gates the
//      S=4 aggregate ordered-write throughput at >= 3.0x S=1. One extra
//      cell runs S=4 with a multiwrite fraction whose partner key lands
//      on another shard, pricing the ordered two-shard commit lane.
//
//   2. Open-loop population sweep — S ∈ {1, 2, 4, 8} x {1e4, 1e5, 1e6}
//      virtual clients (OpenLoopSuite: one aggregate-rate Poisson chain
//      over a bounded connection pool with session churn) at a fixed
//      offered rate, reporting tail latency and front routing counters
//      as the population grows.
//
// Flags: --smoke     S ∈ {1, 4}, 1e5-client sweep, short windows
//        --out PATH  JSON output path (default BENCH_shard.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"
#include "crypto/fastmode.hpp"

namespace {

using namespace troxy;
using namespace troxy::bench;
namespace sim = troxy::sim;

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// EchoService with a fixed modeled execution cost on top: a service
/// whose request handling, not the protocol, is the bottleneck — the
/// regime where partitioning the key space multiplies throughput.
class HeavyEchoService final : public hybster::Service {
  public:
    explicit HeavyEchoService(sim::Duration cost) : cost_(cost) {}

    [[nodiscard]] hybster::RequestInfo classify(
        ByteView request) const override {
        return inner_.classify(request);
    }
    Bytes execute(ByteView request) override {
        return inner_.execute(request);
    }
    [[nodiscard]] Bytes checkpoint() const override {
        return inner_.checkpoint();
    }
    void restore(ByteView snapshot) override { inner_.restore(snapshot); }
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override {
        return cost_ + inner_.execution_cost(request);
    }

  private:
    apps::EchoService inner_;
    sim::Duration cost_;
};

std::unique_ptr<ShardedTroxyCluster> make_cluster(int shards, int keys,
                                                  sim::Duration exec_cost) {
    ShardedTroxyCluster::Params params;
    params.base.seed = 42;
    params.base.shard_count = shards;
    params.base.batch_size_max = 16;
    params.base.batch_delay = sim::microseconds(200);
    params.base.coalesce_wire = true;
    params.host.coalesce_wire = true;
    params.host.voter_batch_max = 16;
    params.host.batch_reply_auth = true;
    params.ctroxy = true;
    if (exec_cost > 0) {
        params.service = [exec_cost]() {
            return std::make_unique<HeavyEchoService>(exec_cost);
        };
    } else {
        params.service = []() {
            return std::make_unique<apps::EchoService>();
        };
    }
    params.classifier = [](ByteView request) {
        return apps::EchoService().classify(request);
    };
    if (shards > 1) {
        std::vector<std::string> universe;
        universe.reserve(static_cast<std::size_t>(keys));
        for (int k = 0; k < keys; ++k) {
            universe.push_back("k" + std::to_string(k));
        }
        params.map = troxy_core::ShardMap::split_evenly(
            std::move(universe), shards);
    }
    return std::make_unique<ShardedTroxyCluster>(std::move(params));
}

struct FrontCounters {
    std::uint64_t requests = 0;
    std::uint64_t released = 0;
    std::uint64_t cross_shard_commits = 0;
    std::uint64_t upstream_failovers = 0;
    int router_fanout = 0;
    std::vector<std::uint64_t> shard_forwarded;
};

FrontCounters front_counters(ShardedTroxyCluster& cluster) {
    FrontCounters out;
    if (cluster.front() == nullptr) return out;
    const auto status = cluster.front()->status();
    out.requests = status.requests;
    out.released = status.released;
    out.cross_shard_commits = status.cross_shard_commits;
    out.upstream_failovers = status.upstream_failovers;
    out.router_fanout = status.router_fanout;
    for (const auto& shard : status.shards) {
        out.shard_forwarded.push_back(shard.forwarded);
    }
    return out;
}

// --------------------------------------------------------- saturation

struct SatCell {
    int shards = 0;
    double cross_fraction = 0.0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    double wall_s = 0.0;
    std::uint64_t sim_events = 0;
    FrontCounters front;
};

SatCell run_saturation(int shards, double cross_fraction, bool smoke,
                       int connections, int pipeline) {
    const int keys = 4096;
    // 400 us of modeled execution per write: the shard's replica cores
    // saturate near 20k ordered writes/s, well under the routing front's
    // ceiling, so the S-sweep measures how the partition multiplies the
    // execution budget.
    auto cluster = make_cluster(shards, keys, sim::microseconds(400));
    std::vector<troxy_core::LegacyClient*> conns;
    for (int i = 0; i < connections; ++i) {
        conns.push_back(&cluster->add_client());
    }

    const sim::Duration warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(400);
    const sim::Duration window =
        smoke ? sim::milliseconds(800) : sim::milliseconds(1500);
    Recorder recorder(warmup, window);

    Workload workload(
        cluster->simulator(), recorder,
        [keys, cross_fraction](Rng& rng) {
            GeneratedRequest out;
            const std::uint64_t key =
                rng.next_below(static_cast<std::uint64_t>(keys));
            if (cross_fraction > 0.0 &&
                rng.next_double() < cross_fraction) {
                // Partner half the key space away: on another shard for
                // every even S, forcing the ordered two-shard commit.
                out.payload = apps::EchoService::make_multi_write(
                    key,
                    (key + static_cast<std::uint64_t>(keys) / 2) %
                        static_cast<std::uint64_t>(keys),
                    64);
            } else {
                out.payload = apps::EchoService::make_write(key, 64);
            }
            return out;
        },
        /*seed=*/42);
    for (auto* conn : conns) workload.drive_legacy(*conn, pipeline);

    const auto start = std::chrono::steady_clock::now();
    cluster->simulator().run_until(recorder.window_end() +
                                   sim::milliseconds(500));

    SatCell cell;
    cell.shards = shards;
    cell.cross_fraction = cross_fraction;
    cell.throughput = recorder.throughput_per_sec();
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.issued = workload.issued();
    cell.completed = recorder.completed();
    cell.wall_s = wall_seconds_since(start);
    cell.sim_events = cluster->simulator().executed_events();
    cell.front = front_counters(*cluster);
    return cell;
}

// ---------------------------------------------------------- open loop

struct OpenCell {
    int shards = 0;
    std::uint64_t virtual_clients = 0;
    double offered_rate = 0.0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t churned = 0;
    double wall_s = 0.0;
    FrontCounters front;
};

OpenCell run_open_loop(int shards, std::uint64_t virtual_clients,
                       bool smoke) {
    const int keys = 65536;
    auto cluster = make_cluster(shards, keys, /*exec_cost=*/0);

    const int connections = 24;
    std::vector<troxy_core::LegacyClient*> conns;
    for (int i = 0; i < connections; ++i) {
        conns.push_back(&cluster->add_client());
    }

    const sim::Duration warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(500);
    const sim::Duration window =
        smoke ? sim::milliseconds(600) : sim::seconds(2);
    Recorder recorder(warmup, window);

    OpenLoopOptions wl;
    wl.rate_per_sec = smoke ? 8000.0 : 20000.0;
    wl.virtual_clients = virtual_clients;
    wl.keys = static_cast<std::uint64_t>(keys);
    wl.zipf_s = 0.0;
    wl.read_fraction = 0.5;
    wl.churn_per_sec = 20.0;
    OpenLoopSuite suite(
        cluster->simulator(), recorder, wl,
        [](Rng&, const OpenLoopArrival& arrival) {
            if (arrival.is_read) {
                return apps::EchoService::make_read(arrival.key, 32, 128);
            }
            return apps::EchoService::make_write(arrival.key, 64);
        },
        /*seed=*/42);
    for (auto* conn : conns) suite.add_connection(*conn);
    suite.start();

    const auto start = std::chrono::steady_clock::now();
    cluster->simulator().run_until(recorder.window_end() +
                                   sim::milliseconds(500));

    OpenCell cell;
    cell.shards = shards;
    cell.virtual_clients = virtual_clients;
    cell.offered_rate = wl.rate_per_sec;
    cell.throughput = recorder.throughput_per_sec();
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.issued = suite.issued();
    cell.completed = suite.completed();
    cell.churned = suite.churned_sessions();
    cell.wall_s = wall_seconds_since(start);
    cell.front = front_counters(*cluster);
    return cell;
}

void print_front(const FrontCounters& front) {
    if (front.router_fanout == 0) return;
    std::printf("      front: %llu routed, %llu released, %llu cross, "
                "%llu failovers, fanout %d, per-shard [",
                static_cast<unsigned long long>(front.requests),
                static_cast<unsigned long long>(front.released),
                static_cast<unsigned long long>(front.cross_shard_commits),
                static_cast<unsigned long long>(front.upstream_failovers),
                front.router_fanout);
    for (std::size_t s = 0; s < front.shard_forwarded.size(); ++s) {
        std::printf("%s%llu", s > 0 ? " " : "",
                    static_cast<unsigned long long>(
                        front.shard_forwarded[s]));
    }
    std::printf("]\n");
}

void json_front(std::FILE* json, const FrontCounters& front) {
    std::fprintf(json,
                 "\"front_requests\": %llu, \"front_released\": %llu, "
                 "\"cross_shard_commits\": %llu, "
                 "\"upstream_failovers\": %llu, \"router_fanout\": %d, "
                 "\"shard_forwarded\": [",
                 static_cast<unsigned long long>(front.requests),
                 static_cast<unsigned long long>(front.released),
                 static_cast<unsigned long long>(front.cross_shard_commits),
                 static_cast<unsigned long long>(front.upstream_failovers),
                 front.router_fanout);
    for (std::size_t s = 0; s < front.shard_forwarded.size(); ++s) {
        std::fprintf(json, "%s%llu", s > 0 ? ", " : "",
                     static_cast<unsigned long long>(
                         front.shard_forwarded[s]));
    }
    std::fprintf(json, "]");
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_shard.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // Part 1: saturation sweep.
    const std::vector<int> shard_counts =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
    std::printf("saturation: closed-loop pure writes, 400 us/op modeled "
                "execution, 48 conns x 48 pipeline\n");
    std::vector<SatCell> saturation;
    for (const int shards : shard_counts) {
        SatCell cell = run_saturation(shards, 0.0, smoke, 48, 48);
        std::printf("  [S=%d] %8.0f writes/s, p50 %6.2f ms, p99 %6.2f ms "
                    "(%llu completed, %.1fs wall)\n",
                    cell.shards, cell.throughput, cell.p50_ms, cell.p99_ms,
                    static_cast<unsigned long long>(cell.completed),
                    cell.wall_s);
        print_front(cell.front);
        saturation.push_back(std::move(cell));
    }
    double s1_throughput = 0.0;
    for (const SatCell& cell : saturation) {
        if (cell.shards == 1) s1_throughput = cell.throughput;
    }
    auto speedup_of = [&](int shards) {
        for (const SatCell& cell : saturation) {
            if (cell.shards == shards && s1_throughput > 0.0) {
                return cell.throughput / s1_throughput;
            }
        }
        return 0.0;
    };
    std::printf("  speedups vs S=1:");
    for (const int shards : shard_counts) {
        if (shards == 1) continue;
        std::printf(" S=%d %.2fx", shards, speedup_of(shards));
    }
    std::printf("\n");

    // Cross-shard pricing: S=4 with 10% two-key multiwrites whose
    // partner lives two shards away. The lane is serialized, so this
    // cell runs a light population — it prices the ordered two-shard
    // commit's latency, not a deliberately overloaded queue.
    SatCell cross = run_saturation(4, 0.10, smoke, 8, 8);
    std::printf("  [S=4 +10%% cross-shard] %8.0f writes/s, p50 %6.2f ms, "
                "p99 %6.2f ms, %llu two-shard commits\n",
                cross.throughput, cross.p50_ms, cross.p99_ms,
                static_cast<unsigned long long>(
                    cross.front.cross_shard_commits));

    // Part 2: open-loop population sweep.
    const std::vector<std::uint64_t> populations =
        smoke ? std::vector<std::uint64_t>{100000}
              : std::vector<std::uint64_t>{10000, 100000, 1000000};
    std::printf("open loop: %.0f req/s offered, 50%% reads, 24 sessions, "
                "churn 20/s\n",
                smoke ? 8000.0 : 20000.0);
    std::vector<OpenCell> open_cells;
    for (const int shards : shard_counts) {
        for (const std::uint64_t population : populations) {
            OpenCell cell = run_open_loop(shards, population, smoke);
            std::printf("  [S=%d %7llu clients] %8.0f req/s, p50 %6.2f ms, "
                        "p99 %6.2f ms, %llu churned (%.1fs wall)\n",
                        cell.shards,
                        static_cast<unsigned long long>(
                            cell.virtual_clients),
                        cell.throughput, cell.p50_ms, cell.p99_ms,
                        static_cast<unsigned long long>(cell.churned),
                        cell.wall_s);
            open_cells.push_back(std::move(cell));
        }
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"sharded_troxy\",\n");
    std::fprintf(json,
                 "  \"workload\": \"closed-loop pure writes over 4096 "
                 "keys, 400us/op modeled execution, 48 conns x 48 "
                 "pipeline; open-loop 50%% reads over 65536 keys\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"saturation\": [\n");
    for (std::size_t i = 0; i < saturation.size(); ++i) {
        const SatCell& c = saturation[i];
        std::fprintf(
            json,
            "    {\"shards\": %d, \"cross_fraction\": %.2f, "
            "\"throughput_per_sec\": %.1f, \"p50_ms\": %.3f, "
            "\"p99_ms\": %.3f, \"issued\": %llu, \"completed\": %llu, "
            "\"wall_clock_s\": %.3f, \"sim_events\": %llu, ",
            c.shards, c.cross_fraction, c.throughput, c.p50_ms, c.p99_ms,
            static_cast<unsigned long long>(c.issued),
            static_cast<unsigned long long>(c.completed), c.wall_s,
            static_cast<unsigned long long>(c.sim_events));
        json_front(json, c.front);
        std::fprintf(json, "}%s\n",
                     i + 1 < saturation.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"s4_vs_s1_speedup\": %.3f,\n", speedup_of(4));
    if (!smoke) {
        std::fprintf(json, "  \"s2_vs_s1_speedup\": %.3f,\n",
                     speedup_of(2));
        std::fprintf(json, "  \"s8_vs_s1_speedup\": %.3f,\n",
                     speedup_of(8));
    }
    std::fprintf(json,
                 "  \"cross_shard\": {\"shards\": %d, "
                 "\"cross_fraction\": %.2f, \"throughput_per_sec\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, ",
                 cross.shards, cross.cross_fraction, cross.throughput,
                 cross.p50_ms, cross.p99_ms);
    json_front(json, cross.front);
    std::fprintf(json, "},\n");
    std::fprintf(json, "  \"open_loop\": [\n");
    for (std::size_t i = 0; i < open_cells.size(); ++i) {
        const OpenCell& c = open_cells[i];
        std::fprintf(
            json,
            "    {\"shards\": %d, \"virtual_clients\": %llu, "
            "\"offered_rate\": %.0f, \"throughput_per_sec\": %.1f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"issued\": %llu, "
            "\"completed\": %llu, \"churned_sessions\": %llu, "
            "\"wall_clock_s\": %.3f, ",
            c.shards, static_cast<unsigned long long>(c.virtual_clients),
            c.offered_rate, c.throughput, c.p50_ms, c.p99_ms,
            static_cast<unsigned long long>(c.issued),
            static_cast<unsigned long long>(c.completed),
            static_cast<unsigned long long>(c.churned), c.wall_s);
        json_front(json, c.front);
        std::fprintf(json, "}%s\n",
                     i + 1 < open_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
