// Voting sweep: end-to-end Troxy throughput as a function of the voter
// batch size (replies per handle_replies ecall) crossed with the ordering
// batch size.
//
// Fig. 6-style workload (256 B writes, 10 B acks, local network, closed
// loop at saturation) swept over voter_batch × batch_size_max over
// {1, 4, 16, 64} for ctroxy and etroxy. A voter batch enters the enclave
// through ONE ecall transition and amortizes the per-source certificate
// MAC base across the batch; wire coalescing (enabled together with the
// voter batch) seals each flush burst into one AEAD record per
// destination. voter_batch = 1 runs the exact seed flow — per-reply
// handle_reply ecalls, one record per message, no coalescing — and
// anchors the speedup column.
//
// Each row also reports the observable mechanism counters: total Troxy
// ecall transitions, the handle_replies batch split, and simulated wire
// records — at voter batch N the transition count drops roughly N× on
// the reply path while throughput rises.
//
// Flags: --smoke     reduced configuration for CI (ctroxy only, fewer
//                    clients, shorter window, sweep {1, 16} x {1, 16})
//        --out PATH  JSON output path (default BENCH_voting.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support/experiments.hpp"
#include "crypto/fastmode.hpp"

namespace {

using namespace troxy::bench;
namespace sim = troxy::sim;

struct Sample {
    std::string system;
    std::size_t voter_batch;
    std::size_t order_batch;
    MicroResult result;
};

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_voting.json";
    int clients = 0;
    int pipeline = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
            pipeline = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] [--clients N] "
                         "[--pipeline N]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::size_t> batches =
        smoke ? std::vector<std::size_t>{1, 16}
              : std::vector<std::size_t>{1, 4, 16, 64};
    const std::vector<SystemKind> systems =
        smoke ? std::vector<SystemKind>{SystemKind::CTroxy}
              : std::vector<SystemKind>{SystemKind::CTroxy,
                                        SystemKind::ETroxy};

    std::printf("Voting sweep: ordered 256 B writes, local network%s\n",
                smoke ? " (smoke configuration)" : "");
    std::printf("(voter batch = replies per handle_replies ecall; wire\n");
    std::printf(" coalescing seals each flush burst into one record)\n");

    std::vector<Sample> samples;
    for (const SystemKind system : systems) {
        for (const std::size_t order : batches) {
            std::vector<Row> rows;
            double base_throughput = 0.0;
            for (const std::size_t voter : batches) {
                MicroParams params;
                params.read_workload = false;
                params.request_size = 256;
                // Saturation needs enough outstanding requests to keep
                // both the ordering and the voter batches full; thin
                // load underfills batches and understates the speedup.
                params.clients = clients > 0 ? clients : 128;
                params.pipeline = pipeline > 0 ? pipeline : 8;
                if (smoke) params.window = sim::milliseconds(400);
                params.batch_size_max = order;
                params.batch_delay =
                    order > 1 ? sim::microseconds(500) : sim::Duration{0};
                // voter_batch 1 is the seed flow: per-reply ecalls, one
                // record per message, nothing coalesced.
                params.voter_batch_max = voter;
                params.coalesce_wire = voter > 1;
                params.coalesce_client_sends = voter > 1;

                MicroResult result = run_micro(system, params);
                result.row.label = system_name(system) + " v=" +
                                   std::to_string(voter) + " b=" +
                                   std::to_string(order);
                if (voter == 1) base_throughput = result.row.throughput;
                std::printf(
                    "  [%s] %.0f req/s (%.2fx vs v=1)  "
                    "transitions=%llu batches=%llu/%llu wire=%llu\n",
                    result.row.label.c_str(), result.row.throughput,
                    base_throughput > 0.0
                        ? result.row.throughput / base_throughput
                        : 0.0,
                    static_cast<unsigned long long>(
                        result.enclave_transitions),
                    static_cast<unsigned long long>(result.reply_batches),
                    static_cast<unsigned long long>(result.batched_replies),
                    static_cast<unsigned long long>(result.wire_messages));
                rows.push_back(result.row);
                samples.push_back(Sample{system_name(system), voter, order,
                                         std::move(result)});
            }
            print_table("system " + system_name(system) + ", ordering b=" +
                            std::to_string(order),
                        rows);
        }
    }

    // Headline acceptance number: ctroxy end-to-end throughput at voter
    // batch 16 over voter batch 1, at the largest common ordering batch.
    double headline = 0.0;
    {
        const std::size_t order = batches.back();
        double v1 = 0.0;
        double v16 = 0.0;
        for (const Sample& s : samples) {
            if (s.system != "ctroxy" || s.order_batch != order) continue;
            if (s.voter_batch == 1) v1 = s.result.row.throughput;
            if (s.voter_batch == 16) v16 = s.result.row.throughput;
        }
        if (v1 > 0.0) headline = v16 / v1;
        std::printf("ctroxy voter-batch-16 speedup at b=%zu: %.2fx\n",
                    order, headline);
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"voting_sweep\",\n");
    std::fprintf(json,
                 "  \"workload\": \"ordered 256B writes, local network, "
                 "closed loop\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"ctroxy_voter16_speedup\": %.3f,\n", headline);
    std::fprintf(json, "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        double base = 0.0;
        for (const Sample& t : samples) {
            if (t.system == s.system && t.order_batch == s.order_batch &&
                t.voter_batch == 1) {
                base = t.result.row.throughput;
            }
        }
        std::fprintf(
            json,
            "    {\"system\": \"%s\", \"voter_batch\": %zu, "
            "\"batch_size_max\": %zu, \"throughput_per_sec\": %.1f, "
            "\"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"speedup_vs_voter1\": %.3f, "
            "\"enclave_transitions\": %llu, \"reply_batches\": %llu, "
            "\"batched_replies\": %llu, \"wire_messages\": %llu, "
            "\"wire_bytes\": %llu}%s\n",
            s.system.c_str(), s.voter_batch, s.order_batch,
            s.result.row.throughput, s.result.row.mean_ms,
            s.result.row.p50_ms, s.result.row.p99_ms,
            base > 0.0 ? s.result.row.throughput / base : 0.0,
            static_cast<unsigned long long>(s.result.enclave_transitions),
            static_cast<unsigned long long>(s.result.reply_batches),
            static_cast<unsigned long long>(s.result.batched_replies),
            static_cast<unsigned long long>(s.result.wire_messages),
            static_cast<unsigned long long>(s.result.wire_bytes),
            i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
