// Wire-path benchmark: zero-copy scatter-gather encoding and the
// kernel-bypass transport profile.
//
// Two parts:
//
//   1. Encode microbench — a coalesced flush burst is framed either by
//      make_bundle() (flatten every wrapped message into one contiguous
//      frame) or by encode_bundle() (a FragmentChain: inline framing
//      headers plus the message buffers referenced in place). Global
//      operator new/delete overrides count heap allocations; we report
//      allocations/frame and ns/frame per payload size. CI gates the
//      zero-copy path at <= 0.1x the copying path's allocations/frame.
//
//   2. Transport sweep — a ctroxy TroxyCluster under a closed-loop write
//      workload, payload size x transport profile {kernel (sendmsg entry
//      + full staging copy), bypass (doorbell entry + credit window),
//      bypass+zero-copy (doorbell, headers staged, payloads referenced)}.
//      Reports throughput/latency per cell, the network's wire counters,
//      and the crossover: the smallest payload at which zero-copy beats
//      the copying bypass path by more than 2%.
//
// Flags: --smoke     reduced payload set and shorter windows for CI
//        --out PATH  JSON output path (default BENCH_wire.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "apps/kv_service.hpp"
#include "bench_support/cluster.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"
#include "crypto/fastmode.hpp"
#include "net/envelope.hpp"
#include "net/fragment.hpp"
#include "sim/pool.hpp"

// ------------------------------------------------- allocation accounting
//
// Same global counting overrides as bench_scale: deltas around a measured
// region give allocations/frame. Must not allocate, must pair with the
// sized/aligned forms.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) -
                                      1) &
                                         ~(static_cast<std::size_t>(align) -
                                           1))) {
        return p;
    }
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using namespace troxy;
using namespace troxy::bench;
namespace sim = troxy::sim;

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

// ------------------------------------------------------ encode microbench

struct EncodeCell {
    std::size_t payload = 0;
    std::size_t burst = 0;
    std::size_t frame_bytes = 0;   // materialized wire size of one frame
    std::size_t header_bytes = 0;  // inline bytes the chain still copies
    double copy_ns_per_frame = 0.0;
    double copy_allocs_per_frame = 0.0;
    double zc_ns_per_frame = 0.0;
    double zc_allocs_per_frame = 0.0;
};

/// One flush burst, rebuilt from the pool each iteration so both paths
/// start from identical inputs; the measured difference is make_bundle's
/// flatten (one frame allocation + full copy) vs encode_bundle's chain
/// append (inline headers only, buffers referenced and later recycled).
EncodeCell run_encode_cell(std::size_t payload, std::size_t burst_size,
                           std::uint64_t frames) {
    sim::BufferPool pool;
    std::vector<Bytes> templates;
    for (std::size_t i = 0; i < burst_size; ++i) {
        Bytes t = net::wrap(net::Channel::Hybster,
                            Bytes(payload, static_cast<std::uint8_t>(i)));
        templates.push_back(std::move(t));
    }

    std::vector<Bytes> burst;
    burst.reserve(burst_size);
    auto build_burst = [&]() {
        burst.clear();
        for (const Bytes& t : templates) {
            Bytes m = pool.acquire(t.size());
            std::memcpy(m.data(), t.data(), t.size());
            burst.push_back(std::move(m));
        }
    };

    EncodeCell cell;
    cell.payload = payload;
    cell.burst = burst_size;
    std::uint64_t sink = 0;

    // Copying path: flatten into one contiguous Bundle frame.
    for (int warm = 0; warm < 64; ++warm) {
        build_burst();
        Bytes bundle = net::make_bundle(burst);
        sink += bundle.size();
        for (Bytes& m : burst) pool.release(std::move(m));
        pool.release(std::move(bundle));
    }
    {
        const std::uint64_t alloc_base = g_allocs.load();
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < frames; ++i) {
            build_burst();
            Bytes bundle = net::make_bundle(burst);
            sink += bundle.size();
            for (Bytes& m : burst) pool.release(std::move(m));
            pool.release(std::move(bundle));
        }
        cell.copy_ns_per_frame =
            wall_seconds_since(start) * 1e9 / static_cast<double>(frames);
        cell.copy_allocs_per_frame =
            static_cast<double>(g_allocs.load() - alloc_base) /
            static_cast<double>(frames);
    }

    // Zero-copy path: one reused chain, buffers recycled through the pool.
    net::FragmentChain chain;
    for (int warm = 0; warm < 64; ++warm) {
        build_burst();
        net::encode_bundle(chain, std::move(burst));
        cell.frame_bytes = chain.size();
        cell.header_bytes = chain.copied_bytes();
        sink += chain.size();
        chain.recycle(pool);
    }
    {
        const std::uint64_t alloc_base = g_allocs.load();
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < frames; ++i) {
            build_burst();
            net::encode_bundle(chain, std::move(burst));
            sink += chain.size();
            chain.recycle(pool);
        }
        cell.zc_ns_per_frame =
            wall_seconds_since(start) * 1e9 / static_cast<double>(frames);
        cell.zc_allocs_per_frame =
            static_cast<double>(g_allocs.load() - alloc_base) /
            static_cast<double>(frames);
    }

    if (sink == 0xdeadbeef) std::printf("impossible\n");
    return cell;
}

// -------------------------------------------------------- transport sweep

struct WireCell {
    std::size_t payload = 0;
    std::string profile;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    sim::WireStats wire;
    sim::BufferPool::Stats pool;
};

WireCell run_wire_cell(std::size_t payload, const std::string& profile_name,
                       const sim::TransportProfile& transport,
                       bool zero_copy, bool smoke) {
    TroxyCluster::Params params;
    params.base.seed = 42;
    // Kernel-bypass hardware context: 40 GbE-class NICs, so the sweep
    // compares transport CPU models instead of saturating the paper's
    // 4x1 Gbps links at the first large payload.
    params.base.replica_machine_bandwidth = 40e9;
    params.base.client_machine_bandwidth = 40e9;
    params.base.batch_size_max = 16;
    params.base.batch_delay = sim::microseconds(200);
    params.base.coalesce_wire = true;
    params.base.wire_zero_copy = zero_copy;
    params.base.transport = transport;
    params.host.coalesce_wire = true;
    params.host.voter_batch_max = 16;
    params.host.batch_reply_auth = true;
    params.ctroxy = true;
    params.service = []() { return std::make_unique<apps::KvService>(); };
    params.classifier = [](ByteView request) {
        return apps::KvService().classify(request);
    };
    TroxyCluster cluster(params);

    const sim::SimTime warmup =
        smoke ? sim::milliseconds(200) : sim::milliseconds(300);
    const sim::Duration window =
        smoke ? sim::milliseconds(400) : sim::seconds(1);
    Recorder recorder(warmup, window);

    const std::string value(payload, 'v');
    Workload workload(
        cluster.simulator(), recorder,
        [value](Rng& rng) {
            GeneratedRequest request;
            request.payload = apps::KvService::make_put(
                "k" + std::to_string(rng.next_below(16)), value);
            return request;
        },
        params.base.seed);

    const int clients = smoke ? 16 : 48;
    const int pipeline = smoke ? 4 : 8;
    for (int i = 0; i < clients; ++i) {
        workload.drive_legacy(cluster.add_client(), pipeline);
    }
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(1));

    WireCell cell;
    cell.payload = payload;
    cell.profile = profile_name;
    cell.throughput = recorder.throughput_per_sec();
    cell.p50_ms = recorder.percentile_latency_ms(50);
    cell.p99_ms = recorder.percentile_latency_ms(99);
    cell.wire = cluster.network().wire_stats();
    cell.pool = cluster.network().pool().stats();
    return cell;
}

}  // namespace

int main(int argc, char** argv) {
    troxy::crypto::set_fast_crypto(true);

    bool smoke = false;
    std::string out_path = "BENCH_wire.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // Part 1: encode microbench over payload sizes at a fixed burst of 16
    // (the batched flush shape the coalescing benches run at).
    const std::vector<std::size_t> encode_payloads =
        smoke ? std::vector<std::size_t>{256, 4096}
              : std::vector<std::size_t>{64, 256, 1024, 4096, 16384};
    const std::uint64_t frames = smoke ? 20000 : 200000;
    const std::size_t burst = 16;
    std::printf("encode microbench: burst of %zu wrapped messages, "
                "%llu frames per path\n",
                burst, static_cast<unsigned long long>(frames));
    std::vector<EncodeCell> encode_cells;
    for (const std::size_t payload : encode_payloads) {
        EncodeCell cell = run_encode_cell(payload, burst, frames);
        std::printf(
            "  [payload %5zu] copy %7.0f ns/frame %.3f allocs/frame | "
            "chain %7.0f ns/frame %.4f allocs/frame\n",
            cell.payload, cell.copy_ns_per_frame,
            cell.copy_allocs_per_frame, cell.zc_ns_per_frame,
            cell.zc_allocs_per_frame);
        encode_cells.push_back(cell);
    }

    // Part 2: end-to-end transport sweep.
    struct Profile {
        std::string name;
        sim::TransportProfile transport;
        bool zero_copy;
    };
    const std::vector<Profile> profiles = {
        {"kernel", sim::TransportProfile::kernel_nic(), false},
        {"bypass", sim::TransportProfile::bypass(), false},
        {"bypass+zc", sim::TransportProfile::bypass(), true},
    };
    const std::vector<std::size_t> payloads =
        smoke ? std::vector<std::size_t>{256, 4096}
              : std::vector<std::size_t>{64, 256, 1024, 4096, 16384};

    std::printf("transport sweep: ctroxy, closed-loop puts, batch 16, "
                "coalesced wire%s\n",
                smoke ? " (smoke configuration)" : "");
    std::vector<WireCell> cells;
    for (const std::size_t payload : payloads) {
        for (const Profile& profile : profiles) {
            WireCell cell = run_wire_cell(payload, profile.name,
                                          profile.transport,
                                          profile.zero_copy, smoke);
            std::printf(
                "  [payload %5zu %-9s] %7.0f req/s, p50 %.2f ms, "
                "p99 %.2f ms, zc-frames %llu, ref %llu B, copied %llu B, "
                "materialized %llu, stalls %llu\n",
                cell.payload, cell.profile.c_str(), cell.throughput,
                cell.p50_ms, cell.p99_ms,
                static_cast<unsigned long long>(cell.wire.frames_zero_copy),
                static_cast<unsigned long long>(cell.wire.bytes_referenced),
                static_cast<unsigned long long>(cell.wire.bytes_copied),
                static_cast<unsigned long long>(
                    cell.wire.materializations),
                static_cast<unsigned long long>(cell.wire.credit_stalls));
            cells.push_back(std::move(cell));
        }
    }

    // Per-frame wire cost under each profile: measured encode time plus
    // the calibrated transport charge. The crossover is the payload at
    // which eliminating the staging copies (zero-copy's lever, grows
    // with frame size) overtakes eliminating the syscall (bypass's
    // lever, a constant per record) as the larger wire-path saving.
    const sim::TransportProfile kernel_profile =
        sim::TransportProfile::kernel_nic();
    const sim::TransportProfile bypass_profile =
        sim::TransportProfile::bypass();
    const double doorbell_saving_ns =
        kernel_profile.tx_base_ns - bypass_profile.tx_base_ns;
    long crossover = -1;
    std::printf("wire cost per frame (encode + transport charge):\n");
    for (const EncodeCell& c : encode_cells) {
        const double kernel_ns =
            c.copy_ns_per_frame +
            static_cast<double>(kernel_profile.tx(c.frame_bytes));
        const double bypass_ns =
            c.copy_ns_per_frame +
            static_cast<double>(bypass_profile.tx(c.frame_bytes));
        const double zc_ns =
            c.zc_ns_per_frame +
            static_cast<double>(bypass_profile.tx(c.header_bytes));
        const double zc_saving_ns = bypass_ns - zc_ns;
        std::printf("  [payload %5zu] kernel %7.0f ns, bypass %7.0f ns, "
                    "bypass+zc %7.0f ns (zc saves %.0f ns vs %.0f ns "
                    "doorbell saving)\n",
                    c.payload, kernel_ns, bypass_ns, zc_ns, zc_saving_ns,
                    doorbell_saving_ns);
        if (crossover < 0 && zc_saving_ns > doorbell_saving_ns) {
            crossover = static_cast<long>(c.payload);
        }
    }
    if (crossover >= 0) {
        std::printf("crossover: from payload %ld B the zero-copy saving "
                    "exceeds the syscall-elimination saving\n",
                    crossover);
    } else {
        std::printf("crossover: not reached in this sweep\n");
    }

    // End-to-end speedups: bypass and bypass+zc vs the kernel profile.
    auto cell_of = [&](std::size_t payload,
                       const std::string& name) -> const WireCell* {
        for (const WireCell& c : cells) {
            if (c.payload == payload && c.profile == name) return &c;
        }
        return nullptr;
    };
    double bypass_speedup_min = 1e9;
    double zc_vs_kernel_min = 1e9;
    for (const std::size_t payload : payloads) {
        const WireCell* kernel = cell_of(payload, "kernel");
        const WireCell* bypass = cell_of(payload, "bypass");
        const WireCell* zc = cell_of(payload, "bypass+zc");
        if (kernel == nullptr || bypass == nullptr || zc == nullptr) {
            continue;
        }
        const double bypass_speedup = bypass->throughput / kernel->throughput;
        const double zc_speedup = zc->throughput / kernel->throughput;
        bypass_speedup_min = std::min(bypass_speedup_min, bypass_speedup);
        zc_vs_kernel_min = std::min(zc_vs_kernel_min, zc_speedup);
        std::printf("  payload %5zu: bypass %.3fx, bypass+zc %.3fx vs "
                    "kernel (zc vs copying bypass %.3fx)\n",
                    payload, bypass_speedup, zc_speedup,
                    zc->throughput / bypass->throughput);
    }

    std::FILE* json = std::fopen(out_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmark\": \"wire_path\",\n");
    std::fprintf(json,
                 "  \"workload\": \"coalesced flush bursts of 16; "
                 "closed-loop kv puts over a ctroxy cluster\",\n");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"encode\": [\n");
    for (std::size_t i = 0; i < encode_cells.size(); ++i) {
        const EncodeCell& c = encode_cells[i];
        std::fprintf(
            json,
            "    {\"payload\": %zu, \"burst\": %zu, "
            "\"frame_bytes\": %zu, \"header_bytes\": %zu, "
            "\"copy_ns_per_frame\": %.1f, \"copy_allocs_per_frame\": %.3f, "
            "\"zc_ns_per_frame\": %.1f, \"zc_allocs_per_frame\": %.4f}%s\n",
            c.payload, c.burst, c.frame_bytes, c.header_bytes,
            c.copy_ns_per_frame, c.copy_allocs_per_frame,
            c.zc_ns_per_frame, c.zc_allocs_per_frame,
            i + 1 < encode_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"results\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const WireCell& c = cells[i];
        std::fprintf(
            json,
            "    {\"payload\": %zu, \"profile\": \"%s\", "
            "\"throughput_per_sec\": %.1f, \"p50_ms\": %.3f, "
            "\"p99_ms\": %.3f, \"frames_zero_copy\": %llu, "
            "\"bytes_referenced\": %llu, \"bytes_copied\": %llu, "
            "\"materializations\": %llu, \"credit_stalls\": %llu, "
            "\"pool_hits\": %llu, \"pool_misses\": %llu}%s\n",
            c.payload, c.profile.c_str(), c.throughput, c.p50_ms, c.p99_ms,
            static_cast<unsigned long long>(c.wire.frames_zero_copy),
            static_cast<unsigned long long>(c.wire.bytes_referenced),
            static_cast<unsigned long long>(c.wire.bytes_copied),
            static_cast<unsigned long long>(c.wire.materializations),
            static_cast<unsigned long long>(c.wire.credit_stalls),
            static_cast<unsigned long long>(c.pool.hits),
            static_cast<unsigned long long>(c.pool.misses),
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"summary\": {\"crossover_payload\": %ld, "
                 "\"bypass_speedup_min\": %.3f, "
                 "\"zc_vs_kernel_speedup_min\": %.3f}\n}\n",
                 crossover, bypass_speedup_min, zc_vs_kernel_min);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
