#include "sim/network.hpp"

#include <algorithm>

namespace troxy::sim {

LatencyModel LatencyModel::constant(Duration latency) noexcept {
    LatencyModel m;
    m.mean_ = latency;
    return m;
}

LatencyModel LatencyModel::normal(Duration mean, Duration stddev,
                                  Duration floor) noexcept {
    LatencyModel m;
    m.mean_ = mean;
    m.stddev_ = stddev;
    m.floor_ = floor;
    return m;
}

Duration LatencyModel::sample(Rng& rng) const noexcept {
    if (stddev_ == 0) return mean_;
    const double value = rng.next_normal(static_cast<double>(mean_),
                                         static_cast<double>(stddev_));
    const double floored = std::max(value, static_cast<double>(floor_));
    return static_cast<Duration>(floored);
}

LinkSpec LinkSpec::lan() noexcept {
    LinkSpec spec;
    spec.latency = LatencyModel::constant(microseconds(50));
    spec.bandwidth_bits_per_sec = 1e9;
    return spec;
}

LinkSpec LinkSpec::wan() noexcept {
    LinkSpec spec;
    // 100 ± 20 ms normal distribution per §VI-C, floored at 10 ms.
    spec.latency = LatencyModel::normal(milliseconds(100), milliseconds(20),
                                        milliseconds(10));
    spec.bandwidth_bits_per_sec = 1e9;
    return spec;
}

Network::Network(Simulator& simulator)
    : sim_(simulator),
      rng_(simulator.rng().fork(0x6e657477)),
      fault_rng_(simulator.rng().fork(0x6661756c)) {}

void Network::set_default_link(const LinkSpec& spec) { default_spec_ = spec; }

void Network::set_link(NodeId from, NodeId to, const LinkSpec& spec) {
    links_[{from, to}] = spec;
}

void Network::set_link_bidirectional(NodeId a, NodeId b,
                                     const LinkSpec& spec) {
    set_link(a, b, spec);
    set_link(b, a, spec);
}

const LinkSpec& Network::spec_for(NodeId from, NodeId to) const {
    const auto it = links_.find({from, to});
    return it != links_.end() ? it->second : default_spec_;
}

void Network::set_nic_group(NodeId node, int group,
                            double bandwidth_bits_per_sec) {
    nic_assignment_[node] = group;
    nic_groups_[group].bandwidth_bits_per_sec = bandwidth_bits_per_sec;
}

// ------------------------------------------------------- fault injection

void Network::set_loss(NodeId from, NodeId to, double probability) {
    if (probability <= 0.0) {
        loss_.erase({from, to});
    } else {
        loss_[{from, to}] = std::min(probability, 1.0);
    }
}

void Network::set_loss_bidirectional(NodeId a, NodeId b, double probability) {
    set_loss(a, b, probability);
    set_loss(b, a, probability);
}

void Network::fail_link(NodeId from, NodeId to) { ++links_down_[{from, to}]; }

void Network::heal_link(NodeId from, NodeId to) {
    const auto it = links_down_.find({from, to});
    if (it == links_down_.end()) return;
    if (--it->second <= 0) links_down_.erase(it);
}

void Network::fail_link_bidirectional(NodeId a, NodeId b) {
    fail_link(a, b);
    fail_link(b, a);
}

void Network::heal_link_bidirectional(NodeId a, NodeId b) {
    heal_link(a, b);
    heal_link(b, a);
}

void Network::partition(const std::string& name,
                        std::vector<std::vector<NodeId>> groups) {
    std::map<NodeId, int> assignment;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (const NodeId node : groups[g]) {
            assignment[node] = static_cast<int>(g);
        }
    }
    partitions_[name] = std::move(assignment);
}

void Network::heal_partition(const std::string& name) {
    partitions_.erase(name);
}

bool Network::reachable(NodeId from, NodeId to) const {
    if (from != to && links_down_.contains({from, to})) return false;
    for (const auto& [name, assignment] : partitions_) {
        const auto a = assignment.find(from);
        const auto b = assignment.find(to);
        if (a != assignment.end() && b != assignment.end() &&
            a->second != b->second) {
            return false;
        }
    }
    return true;
}

bool Network::fault_drops(NodeId from, NodeId to, std::size_t bytes) {
    if (from != to && links_down_.contains({from, to})) {
        ++drops_.by_link_down;
        drops_.bytes += bytes;
        return true;
    }
    if (!reachable(from, to)) {
        ++drops_.by_partition;
        drops_.bytes += bytes;
        return true;
    }
    const auto loss = loss_.find({from, to});
    if (loss != loss_.end() &&
        fault_rng_.next_double() < loss->second) {
        ++drops_.by_loss;
        drops_.bytes += bytes;
        return true;
    }
    return false;
}

Network::Packet* Network::alloc_packet() {
    if (free_packets_ != nullptr) {
        Packet* packet = free_packets_;
        free_packets_ = packet->next_free;
        packet->next_free = nullptr;
        ++packet_reuses_;
        return packet;
    }
    ++packet_allocs_;
    return &packet_slab_.emplace_back();
}

void Network::free_packet(Packet* packet) noexcept {
    packet->target = PayloadTarget{};
    packet->chain_target = ChainTarget{};
    packet->chain.clear();
    packet->plain = nullptr;
    packet->frame_bytes = 0;
    packet->credited = false;
    packet->next_free = free_packets_;
    free_packets_ = packet;
}

FragmentChain Network::acquire_chain() {
    if (!chain_store_.empty()) {
        FragmentChain chain = std::move(chain_store_.back());
        chain_store_.pop_back();
        return chain;
    }
    return FragmentChain{};
}

void Network::recycle_chain(FragmentChain&& chain) noexcept {
    chain.recycle(pool_);
    if (chain_store_.size() < 64) {
        chain_store_.push_back(std::move(chain));
    }
}

void Network::send(NodeId from, NodeId to, std::size_t bytes,
                   std::function<void()> deliver) {
    // The sender always pays for the send; counting happens before the
    // fault check so replayed traces agree on messages_sent() regardless
    // of where a message dies.
    ++messages_sent_;
    bytes_sent_ += bytes;

    if (fault_drops(from, to, bytes)) return;

    Packet* packet = alloc_packet();
    packet->plain = std::move(deliver);
    packet->from = from;
    packet->to = to;
    send_packet(bytes, packet);
}

void Network::send(NodeId from, NodeId to, Bytes payload,
                   PayloadTarget target) {
    const std::size_t bytes = payload.size();
    ++messages_sent_;
    bytes_sent_ += bytes;

    if (fault_drops(from, to, bytes)) {
        // Dropped messages still retire their buffer into the pool, so a
        // lossy run recycles as well as a clean one.
        if (pool_.release_counted(std::move(payload))) {
            ++drops_.pool_hits;
        } else {
            ++drops_.pool_misses;
        }
        return;
    }

    Packet* packet = alloc_packet();
    packet->payload = std::move(payload);
    packet->target = target;
    packet->from = from;
    packet->to = to;
    send_packet(bytes, packet);
}

void Network::send(NodeId from, NodeId to, FragmentChain chain,
                   ChainTarget target) {
    const std::size_t bytes = chain.size();
    ++messages_sent_;
    bytes_sent_ += bytes;

    if (fault_drops(from, to, bytes)) {
        // Like the copying path, dropped frames retire their buffers into
        // the pool; each owned payload counts one hit or miss.
        for (Fragment& f : chain.fragments()) {
            if (f.kind() != Fragment::Kind::Owned) continue;
            if (pool_.release_counted(f.take_owned())) {
                ++drops_.pool_hits;
            } else {
                ++drops_.pool_misses;
            }
        }
        recycle_chain(std::move(chain));
        return;
    }

    ++wire_stats_.frames_zero_copy;
    wire_stats_.bytes_copied += chain.copied_bytes();
    wire_stats_.bytes_referenced += chain.referenced_bytes();

    Packet* packet = alloc_packet();
    packet->chain = std::move(chain);
    packet->chain_target = target;
    packet->from = from;
    packet->to = to;
    send_packet(bytes, packet);
}

void Network::send_packet(std::size_t bytes, Packet* packet) {
    const NodeId from = packet->from;
    const NodeId to = packet->to;

    // Credit window (kernel-bypass transports): a pair with `window`
    // records already in flight parks the packet; release_credit()
    // relaunches it when a delivery returns a credit. Latency is sampled
    // at (re)launch time, so stalled packets draw from the RNG in the
    // order they actually depart — deterministic per seed.
    if (credit_window_ > 0 && !packet->credited) {
        std::uint32_t& in_flight = credits_in_flight_[{from, to}];
        if (in_flight >= credit_window_) {
            packet->frame_bytes = bytes;
            credit_stalled_[{from, to}].push_back(packet);
            ++wire_stats_.credit_stalls;
            return;
        }
        ++in_flight;
        packet->credited = true;
    }

    const LinkSpec& spec = spec_for(from, to);

    // Wire framing overhead (Ethernet + IP + TCP headers, amortized).
    const std::size_t wire_bytes = bytes + 66;
    const double wire_bits = static_cast<double>(wire_bytes) * 8.0;
    const Duration latency = spec.latency.sample(rng_);

    const auto from_group = nic_assignment_.find(from);
    const auto to_group = nic_assignment_.find(to);

    // Shared-NIC contention: the sender's machine must finish putting the
    // message on the wire, and the receiver's machine must have taken it
    // off, before it is delivered. Different node pairs on the same
    // machines therefore compete for bandwidth. Nodes without a NIC group
    // use the per-link bandwidth instead.
    SimTime egress_done = sim_.now();
    if (from_group != nic_assignment_.end()) {
        NicGroup& nic = nic_groups_[from_group->second];
        const Duration tx = static_cast<Duration>(
            wire_bits * 1e9 / nic.bandwidth_bits_per_sec);
        egress_done = std::max(sim_.now(), nic.egress_free_at) + tx;
        nic.egress_free_at = egress_done;
    } else if (to_group == nic_assignment_.end()) {
        egress_done += static_cast<Duration>(wire_bits * 1e9 /
                                             spec.bandwidth_bits_per_sec);
    }

    SimTime arrival = egress_done + latency;

    // FIFO per directed pair, like a TCP stream: a later send on the same
    // pair never overtakes an earlier one, even under latency jitter.
    SimTime& last = last_delivery_[{from, to}];
    arrival = std::max(arrival, last + 1);
    last = arrival;

    if (to_group != nic_assignment_.end()) {
        // Receive-side bandwidth must be booked in true *arrival* order —
        // booking at send time would let an early-sent-but-jitter-delayed
        // packet block later-sent packets that physically arrive first.
        // An intermediate event runs at arrival time (the simulator
        // executes those in time order), so the scalar ingress chain is
        // correct.
        packet->wire_bits = wire_bits;
        packet->ingress_group = to_group->second;
        sim_.at(arrival, [this, packet] { ingress_packet(packet); });
        return;
    }
    sim_.at(arrival, [this, packet] { deliver_packet(packet); });
}

void Network::ingress_packet(Packet* packet) {
    NicGroup& nic = nic_groups_[packet->ingress_group];
    const Duration rx = static_cast<Duration>(
        packet->wire_bits * 1e9 / nic.bandwidth_bits_per_sec);
    const SimTime done = std::max(sim_.now(), nic.ingress_free_at) + rx;
    nic.ingress_free_at = done;
    sim_.at(done, [this, packet] { deliver_packet(packet); });
}

void Network::release_credit(NodeId from, NodeId to) {
    const auto pair = std::make_pair(from, to);
    const auto it = credits_in_flight_.find(pair);
    if (it == credits_in_flight_.end()) return;
    if (it->second > 0) --it->second;
    const auto stalled = credit_stalled_.find(pair);
    if (stalled == credit_stalled_.end() || stalled->second.empty()) return;
    Packet* next = stalled->second.front();
    stalled->second.pop_front();
    send_packet(next->frame_bytes, next);
}

void Network::deliver_packet(Packet* packet) {
    if (packet->credited) {
        packet->credited = false;
        release_credit(packet->from, packet->to);
    }
    if (packet->chain_target.fn != nullptr) {
        const ChainTarget target = packet->chain_target;
        const NodeId from = packet->from;
        const NodeId to = packet->to;
        FragmentChain chain = std::move(packet->chain);
        free_packet(packet);
        target.fn(target.ctx, from, to, std::move(chain));
        return;
    }
    if (packet->target.fn != nullptr) {
        const PayloadTarget target = packet->target;
        const NodeId from = packet->from;
        const NodeId to = packet->to;
        Bytes payload = std::move(packet->payload);
        free_packet(packet);
        target.fn(target.ctx, from, to, std::move(payload));
        return;
    }
    // Legacy closure path: the callback may re-enter the network, so the
    // packet is freed before it runs.
    std::function<void()> deliver = std::move(packet->plain);
    free_packet(packet);
    deliver();
}

}  // namespace troxy::sim
