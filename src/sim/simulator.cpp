#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <new>

#include "common/assert.hpp"

namespace troxy::sim {
namespace {

/// Smallest power of two >= v, clamped to [lo, hi].
std::size_t pow2_clamp(std::size_t v, std::size_t lo, std::size_t hi) {
    std::size_t p = lo;
    while (p < v && p < hi) p <<= 1;
    return p;
}

struct HeapLater {
    bool operator()(const auto* a, const auto* b) const noexcept {
        if (a->time != b->time) return a->time > b->time;
        return a->seq > b->seq;
    }
};

}  // namespace

Simulator::Simulator(std::uint64_t seed, Scheduler scheduler)
    : scheduler_(scheduler), rng_(seed) {
    if (scheduler_ == Scheduler::Calendar) {
        buckets_.resize(kMinBuckets);
        mask_ = kMinBuckets - 1;
        width_shift_ = 10;  // 1024 ns, nearest power of two to 1 us
        width_ = Duration{1} << width_shift_;
        far_threshold_ = static_cast<SimTime>(kMinBuckets) * width_ * 4;
        stats_.buckets = kMinBuckets;
    }
}

Simulator::~Simulator() {
    for (Bucket& bucket : buckets_) destroy_list(bucket.head);
    destroy_list(far_head_);
    for (EventNode* node : heap_) {
        node->~EventNode();
    }
    for (unsigned char* chunk : chunks_) {
        ::operator delete(chunk, std::align_val_t{alignof(EventNode)});
    }
}

void Simulator::destroy_list(EventNode* node) noexcept {
    while (node != nullptr) {
        EventNode* next = node->next;
        node->~EventNode();
        node = next;
    }
}

// ---------------------------------------------------------------- slab

Simulator::EventNode* Simulator::alloc_node(SimTime t, EventFn&& fn) {
    void* slot;
    if (free_head_ != nullptr) {
        slot = free_head_;
        free_head_ = *static_cast<void**>(free_head_);
        ++stats_.node_reuses;
    } else {
        if (chunk_used_ == kChunkNodes) {
            chunks_.push_back(static_cast<unsigned char*>(::operator new(
                kChunkNodes * sizeof(EventNode),
                std::align_val_t{alignof(EventNode)})));
            chunk_used_ = 0;
        }
        slot = chunks_.back() + chunk_used_ * sizeof(EventNode);
        ++chunk_used_;
        ++stats_.node_allocs;
    }
    return ::new (slot) EventNode{t, next_seq_++, nullptr, std::move(fn)};
}

void Simulator::recycle_node(EventNode* node) noexcept {
    node->~EventNode();
    *reinterpret_cast<void**>(node) = free_head_;
    free_head_ = node;
}

// ----------------------------------------------------------- scheduling

void Simulator::at(SimTime t, EventFn fn) {
    TROXY_ASSERT(t >= now_, "cannot schedule an event in the past");
    ++stats_.scheduled;
    if (fn.on_heap()) {
        ++stats_.heap_callbacks;
    } else {
        ++stats_.inline_callbacks;
    }
    insert(alloc_node(t, std::move(fn)));
}

void Simulator::after(Duration delay, EventFn fn) {
    at(now_ + delay, std::move(fn));
}

void Simulator::insert(EventNode* node) {
    ++size_;
    if (scheduler_ == Scheduler::BinaryHeap) {
        heap_.push_back(node);
        std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
        return;
    }
    if (wheel_count_ >= buckets_.size() * 2 &&
        buckets_.size() < kMaxBuckets) {
        rebuild();
    }
    if (node->time >= far_threshold_) {
        ++stats_.far_events;
        node->next = far_head_;
        far_head_ = node;
        ++far_count_;
        return;
    }
    wheel_insert(node);
}

void Simulator::wheel_insert(EventNode* node) noexcept {
    const std::uint64_t id = node->time >> width_shift_;
    if (id < scan_id_) scan_id_ = id;  // keep the scan behind every event
    Bucket& bucket = buckets_[id & mask_];
    ++wheel_count_;
    if (bucket.head == nullptr) {
        node->next = nullptr;
        bucket.head = bucket.tail = node;
        return;
    }
    // Monotone fast path: live inserts arrive in seq order, so most land
    // at or after the tail in O(1). The seq comparison matters for
    // rebuild(), which reinserts nodes in arbitrary order — an equal-time
    // node must still sort by seq.
    if (node->time > bucket.tail->time ||
        (node->time == bucket.tail->time && node->seq > bucket.tail->seq)) {
        node->next = nullptr;
        bucket.tail->next = node;
        bucket.tail = node;
        return;
    }
    // Out-of-order insert: walk to the (time, seq) position.
    EventNode** link = &bucket.head;
    while (*link != nullptr && ((*link)->time < node->time ||
                                ((*link)->time == node->time &&
                                 (*link)->seq < node->seq))) {
        link = &(*link)->next;
    }
    node->next = *link;
    *link = node;
    if (node->next == nullptr) bucket.tail = node;
}

Simulator::EventNode* Simulator::peek_next() {
    if (scheduler_ == Scheduler::BinaryHeap) {
        return heap_.empty() ? nullptr : heap_.front();
    }
    if (wheel_count_ == 0) {
        if (far_count_ == 0) return nullptr;
        rebuild();  // migrate the far-list into a resized wheel
    }
    const std::size_t nb = buckets_.size();
    std::size_t steps = 0;
    while (true) {
        Bucket& bucket = buckets_[scan_id_ & mask_];
        EventNode* head = bucket.head;
        // The year check: the head is due only if it belongs to the
        // bucket id currently scanned (aliased future years stay put).
        if (head != nullptr &&
            (head->time >> width_shift_) == scan_id_) {
            // The likeliest next pop is this node's in-bucket successor;
            // warm its line while the callback runs.
            __builtin_prefetch(head->next);
            return head;
        }
        ++scan_id_;
        if (++steps > nb) return direct_search();
    }
}

Simulator::EventNode* Simulator::direct_search() noexcept {
    ++stats_.direct_searches;
    EventNode* best = nullptr;
    for (Bucket& bucket : buckets_) {
        // Equal head times are impossible across buckets (equal time
        // implies equal bucket), so comparing times alone is exact.
        if (bucket.head != nullptr &&
            (best == nullptr || bucket.head->time < best->time)) {
            best = bucket.head;
        }
    }
    scan_id_ = best->time >> width_shift_;
    return best;
}

void Simulator::pop_peeked(EventNode* node) noexcept {
    --size_;
    if (scheduler_ == Scheduler::BinaryHeap) {
        std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
        heap_.pop_back();
        return;
    }
    Bucket& bucket = buckets_[scan_id_ & mask_];
    bucket.head = node->next;
    if (bucket.head == nullptr) bucket.tail = nullptr;
    --wheel_count_;
}

void Simulator::maybe_recalibrate() {
    // Width drift check. Growth-triggered rebuilds fix the bucket COUNT
    // but a steady-state population never grows, so a width chosen under
    // a different event density (e.g. during initial seeding, before any
    // pop has measured a gap) would persist forever — and a wheel whose
    // width is 100x the head gap degenerates into long sorted-list walks
    // inside each bucket. Every 4096 pops, measure the mean inter-pop gap
    // over the window (elapsed sim time / pops — exact, no truncation
    // bias, unlike a per-pop integer EMA which oscillates) and re-derive
    // the wheel once the width leaves a factor-4 band around the 2x-gap
    // target. Rebuilds never change the (time, seq) pop order, so
    // recalibration cannot perturb determinism.
    if ((executed_ & 0xFFF) != 0) return;
    const std::uint64_t pops = executed_ - recal_pops_;
    const SimTime elapsed = now_ - recal_time_;
    recal_pops_ = executed_;
    recal_time_ = now_;
    if (pops == 0) return;
    if (wheel_count_ + far_count_ < kMinBuckets) return;
    avg_gap_ =
        std::max<Duration>(static_cast<Duration>(elapsed / pops), 1);
    const Duration target = avg_gap_ * 2;
    if (width_ > target * 4 || target > width_ * 4) rebuild();
}

void Simulator::rebuild() {
    ++stats_.rebuilds;
    // Collect every pending node into one unordered list.
    EventNode* all = nullptr;
    SimTime min_time = ~SimTime{0};
    for (Bucket& bucket : buckets_) {
        EventNode* node = bucket.head;
        while (node != nullptr) {
            EventNode* next = node->next;
            if (node->time < min_time) min_time = node->time;
            node->next = all;
            all = node;
            node = next;
        }
        bucket.head = bucket.tail = nullptr;
    }
    EventNode* node = far_head_;
    while (node != nullptr) {
        EventNode* next = node->next;
        if (node->time < min_time) min_time = node->time;
        node->next = all;
        all = node;
        node = next;
    }
    far_head_ = nullptr;
    far_count_ = 0;
    wheel_count_ = 0;

    // Size the wheel to the population and pick the bucket width from the
    // observed head density (EMA of inter-pop gaps): events near the
    // scan land ~2 per bucket regardless of how far the outliers reach.
    const std::size_t nb = pow2_clamp(size_, kMinBuckets, kMaxBuckets);
    buckets_.assign(nb, Bucket{});
    mask_ = nb - 1;
    stats_.buckets = nb;
    // Power-of-two width covering the 2x-gap target: bucket ids become
    // shifts instead of 64-bit divisions on the insert and scan paths.
    const Duration target = std::max<Duration>(avg_gap_ * 2, 1);
    width_shift_ = 0;
    while ((Duration{1} << width_shift_) < target && width_shift_ < 40) {
        ++width_shift_;
    }
    width_ = Duration{1} << width_shift_;
    const SimTime base = size_ > 0 ? min_time : now_;
    scan_id_ = base >> width_shift_;
    // The wheel horizon: eight rotations of headroom. Events beyond it
    // go to the far-list and migrate on a later rebuild; the generous
    // horizon keeps those O(n) era migrations rare.
    const SimTime horizon =
        static_cast<SimTime>(nb) * width_ * 8;
    far_threshold_ =
        base > ~SimTime{0} - horizon ? ~SimTime{0} : base + horizon;
#ifdef TROXY_TRACE_REBUILD
    std::fprintf(stderr, "rebuild: exec=%llu size=%zu nb=%zu width=%lld avg_gap=%lld base=%llu thr=%llu\n",
        (unsigned long long)executed_, size_, nb, (long long)width_, (long long)avg_gap_,
        (unsigned long long)base, (unsigned long long)far_threshold_);
#endif

    while (all != nullptr) {
        EventNode* next = all->next;
        if (all->time >= far_threshold_) {
            all->next = far_head_;
            far_head_ = all;
            ++far_count_;
        } else {
            wheel_insert(all);
        }
        all = next;
    }
}

// ------------------------------------------------------------ execution

bool Simulator::step() {
    EventNode* node = peek_next();
    if (node == nullptr) return false;
    pop_peeked(node);
    now_ = node->time;
    ++executed_;
    if (scheduler_ == Scheduler::Calendar) maybe_recalibrate();
    // The callback runs in place inside its (unlinked) slab node — no
    // copy and no move on the pop path; the node is recycled only after
    // the handler returns, since the handler may schedule further events.
    node->fn();
    recycle_node(node);
    return true;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(SimTime t) {
    while (true) {
        EventNode* node = peek_next();
        if (node == nullptr || node->time > t) break;
        pop_peeked(node);
        now_ = node->time;
        ++executed_;
        if (scheduler_ == Scheduler::Calendar) maybe_recalibrate();
        node->fn();
        recycle_node(node);
    }
    if (now_ < t) now_ = t;
}

}  // namespace troxy::sim
