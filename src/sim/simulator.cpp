#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace troxy::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::at(SimTime t, std::function<void()> fn) {
    TROXY_ASSERT(t >= now_, "cannot schedule an event in the past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(Duration delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
    if (queue_.empty()) return false;
    // priority_queue::top() is const; the event is copied out so the
    // handler may schedule further events (including at the same time).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
}

void Simulator::run() {
    while (step()) {
    }
}

void Simulator::run_until(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) step();
    if (now_ < t) now_ = t;
}

}  // namespace troxy::sim
