// Scatter-gather wire fragments.
//
// A wire frame assembled from existing payload buffers (a coalesced
// Bundle, a multi-message secure-channel record) does not need a
// contiguous copy to travel through the simulated network: a
// FragmentChain is an iovec-style list of pieces — small Inline headers
// written in place, Owned payload buffers referenced as-is, and Shared
// buffers for broadcast fan-out — whose concatenation IS the frame. The
// network ships the chain; a receiver either consumes the referenced
// buffers directly (zero-copy) or materialize()s the frame, which
// reproduces the exact bytes a copying encoder would have produced, so
// digests, replay detection and seed replay are unaffected.
//
// Owned buffers come from and return to the sim::BufferPool; chain
// storage (the fragment vector) is recycled by sim::Network so a warm
// encode path allocates nothing per frame.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "sim/pool.hpp"

namespace troxy::sim {

/// One iovec-style piece of a wire frame.
class Fragment {
  public:
    /// Inline capacity: enough for any framing header this codebase
    /// writes (channel byte, u16 count, u32/u64 length prefixes).
    static constexpr std::size_t kInlineCapacity = 16;

    enum class Kind : std::uint8_t {
        Inline,  // header bytes stored in the fragment itself
        Owned,   // payload buffer moved in, recycled at consumption
        Shared,  // payload shared across frames (broadcast fan-out)
    };

    Fragment() = default;

    static Fragment inline_of(ByteView header) {
        TROXY_ASSERT(header.size() <= kInlineCapacity,
                     "inline fragment over capacity");
        Fragment f;
        f.kind_ = Kind::Inline;
        f.inline_len_ = static_cast<std::uint8_t>(header.size());
        for (std::size_t i = 0; i < header.size(); ++i) {
            f.inline_[i] = header[i];
        }
        return f;
    }

    static Fragment owned(Bytes&& payload) {
        Fragment f;
        f.kind_ = Kind::Owned;
        f.owned_ = std::move(payload);
        return f;
    }

    static Fragment shared(std::shared_ptr<const Bytes> payload) {
        Fragment f;
        f.kind_ = Kind::Shared;
        f.shared_ = std::move(payload);
        return f;
    }

    [[nodiscard]] Kind kind() const noexcept { return kind_; }

    [[nodiscard]] std::size_t size() const noexcept {
        switch (kind_) {
            case Kind::Inline:
                return inline_len_;
            case Kind::Owned:
                return owned_.size();
            case Kind::Shared:
                return shared_ ? shared_->size() : 0;
        }
        return 0;
    }

    [[nodiscard]] ByteView view() const noexcept {
        switch (kind_) {
            case Kind::Inline:
                return ByteView(inline_.data(), inline_len_);
            case Kind::Owned:
                return ByteView(owned_);
            case Kind::Shared:
                return shared_ ? ByteView(*shared_) : ByteView();
        }
        return {};
    }

    /// Moves the payload out of an Owned fragment (leaves it empty).
    [[nodiscard]] Bytes take_owned() noexcept {
        TROXY_ASSERT(kind_ == Kind::Owned, "not an owned fragment");
        return std::move(owned_);
    }

    /// Drops payload references; Owned buffers are released into `pool`.
    void recycle(BufferPool& pool) noexcept {
        if (kind_ == Kind::Owned && !owned_.empty()) {
            pool.release(std::move(owned_));
        }
        owned_.clear();
        shared_.reset();
        kind_ = Kind::Inline;
        inline_len_ = 0;
    }

  private:
    Kind kind_ = Kind::Inline;
    std::uint8_t inline_len_ = 0;
    std::array<std::uint8_t, kInlineCapacity> inline_{};
    Bytes owned_;
    std::shared_ptr<const Bytes> shared_;
};

/// A wire frame as an ordered list of fragments. The concatenation of
/// the fragments' bytes is the frame; size() is maintained incrementally
/// so the network books bandwidth without walking the chain.
class FragmentChain {
  public:
    FragmentChain() = default;

    void append_inline(ByteView header) {
        fragments_.push_back(Fragment::inline_of(header));
        total_ += header.size();
        copied_ += header.size();
    }

    void append_owned(Bytes&& payload) {
        total_ += payload.size();
        referenced_ += payload.size();
        fragments_.push_back(Fragment::owned(std::move(payload)));
    }

    void append_shared(std::shared_ptr<const Bytes> payload) {
        const std::size_t n = payload ? payload->size() : 0;
        total_ += n;
        referenced_ += n;
        fragments_.push_back(Fragment::shared(std::move(payload)));
    }

    /// Appends an already-built fragment, keeping the copied/referenced
    /// bookkeeping consistent with the append_* builders.
    void append(Fragment&& fragment) {
        const std::size_t n = fragment.size();
        total_ += n;
        if (fragment.kind() == Fragment::Kind::Inline) {
            copied_ += n;
        } else {
            referenced_ += n;
        }
        fragments_.push_back(std::move(fragment));
    }

    /// Moves every fragment of `other` onto the end of this chain (used
    /// when a coalesced Bundle swallows an already-chained message).
    /// `other` is left cleared; its payloads now belong to this chain.
    void splice(FragmentChain&& other) {
        for (Fragment& f : other.fragments_) append(std::move(f));
        other.clear();
    }

    /// Total wire bytes of the frame (== materialize().size()).
    [[nodiscard]] std::size_t size() const noexcept { return total_; }
    /// Bytes physically written into the chain (inline headers only) —
    /// what a zero-copy transport actually copies per frame.
    [[nodiscard]] std::size_t copied_bytes() const noexcept {
        return copied_;
    }
    /// Bytes referenced in place (owned + shared payloads).
    [[nodiscard]] std::size_t referenced_bytes() const noexcept {
        return referenced_;
    }
    [[nodiscard]] bool empty() const noexcept { return fragments_.empty(); }
    [[nodiscard]] std::size_t fragment_count() const noexcept {
        return fragments_.size();
    }

    [[nodiscard]] std::vector<Fragment>& fragments() noexcept {
        return fragments_;
    }
    [[nodiscard]] const std::vector<Fragment>& fragments() const noexcept {
        return fragments_;
    }

    /// Appends the frame's exact wire bytes to `out` — the escape hatch
    /// that keeps chained frames byte-identical to copied ones.
    void materialize_into(Bytes& out) const {
        out.reserve(out.size() + total_);
        for (const Fragment& f : fragments_) {
            const ByteView v = f.view();
            out.insert(out.end(), v.begin(), v.end());
        }
    }

    /// Materializes into a pool-recycled buffer (or a fresh one when no
    /// pool is given).
    [[nodiscard]] Bytes materialize(BufferPool* pool = nullptr) const {
        Bytes out = pool != nullptr ? pool->acquire_empty(total_) : Bytes{};
        materialize_into(out);
        return out;
    }

    /// Releases every Owned payload into `pool` and clears the chain.
    /// Fragment storage keeps its capacity so a recycled chain appends
    /// without allocating.
    void recycle(BufferPool& pool) noexcept {
        for (Fragment& f : fragments_) f.recycle(pool);
        clear();
    }

    /// Clears bookkeeping without touching payload buffers (callers that
    /// moved the payloads out use this). Keeps vector capacity.
    void clear() noexcept {
        fragments_.clear();
        total_ = 0;
        copied_ = 0;
        referenced_ = 0;
    }

  private:
    std::vector<Fragment> fragments_;
    std::size_t total_ = 0;
    std::size_t copied_ = 0;
    std::size_t referenced_ = 0;
};

}  // namespace troxy::sim
