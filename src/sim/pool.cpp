#include "sim/pool.hpp"

#include <utility>

namespace troxy::sim {

std::size_t BufferPool::class_for(std::size_t size) noexcept {
    for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
        if (size <= kClassSizes[c]) return c;
    }
    return kClassSizes.size();
}

std::size_t BufferPool::class_of_capacity(std::size_t capacity) noexcept {
    // Buffers below the smallest class serve no acquire(); buffers above
    // the largest would be retained at their full (unbounded) capacity if
    // banked into the top class, so both are discarded.
    if (capacity < kClassSizes.front() ||
        capacity > kClassSizes.back() * 2) {
        return kClassSizes.size();
    }
    std::size_t best = 0;
    for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
        if (kClassSizes[c] <= capacity) best = c;
    }
    return best;
}

Bytes BufferPool::acquire(std::size_t size) {
    Bytes buffer = acquire_empty(size);
    buffer.resize(size);
    return buffer;
}

Bytes BufferPool::acquire_empty(std::size_t capacity) {
    const std::size_t c = class_for(capacity);
    if (c < kClassSizes.size() && !classes_[c].empty()) {
        ++stats_.hits;
        Bytes buffer = std::move(classes_[c].back());
        classes_[c].pop_back();
        buffer.clear();
        return buffer;
    }
    ++stats_.misses;
    Bytes buffer;
    buffer.reserve(c < kClassSizes.size() ? kClassSizes[c] : capacity);
    return buffer;
}

void BufferPool::release(Bytes&& buffer) noexcept {
    (void)release_counted(std::move(buffer));
}

bool BufferPool::release_counted(Bytes&& buffer) noexcept {
    const std::size_t c = class_of_capacity(buffer.capacity());
    if (c >= kClassSizes.size() || classes_[c].size() >= kMaxDepth) {
        ++stats_.discarded;
        return false;
    }
    ++stats_.recycled;
    classes_[c].push_back(std::move(buffer));
    return true;
}

}  // namespace troxy::sim
