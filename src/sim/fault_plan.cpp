#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

namespace troxy::sim {

namespace {

std::string format_time(SimTime t) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3fs",
                  static_cast<double>(t) / 1e9);
    return buffer;
}

}  // namespace

std::string FaultEvent::describe() const {
    std::string out = format_time(at) + " ";
    switch (kind) {
        case Kind::CrashHost:
            out += "crash host " + std::to_string(host);
            break;
        case Kind::RestartHost:
            out += "restart host " + std::to_string(host);
            break;
        case Kind::Partition: {
            out += "partition '" + name + "'";
            for (const auto& group : groups) {
                out += " [";
                for (std::size_t i = 0; i < group.size(); ++i) {
                    if (i > 0) out += " ";
                    out += std::to_string(group[i]);
                }
                out += "]";
            }
            break;
        }
        case Kind::Heal:
            out += "heal '" + name + "'";
            break;
        case Kind::LinkDown:
            out += "link down " + std::to_string(a) + "<->" +
                   std::to_string(b);
            break;
        case Kind::LinkUp:
            out += "link up " + std::to_string(a) + "<->" +
                   std::to_string(b);
            break;
        case Kind::Loss: {
            char buffer[64];
            std::snprintf(buffer, sizeof(buffer), "loss %u<->%u p=%.3f",
                          a, b, probability);
            out += buffer;
            break;
        }
    }
    return out;
}

FaultPlan& FaultPlan::crash(SimTime at, int host) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::CrashHost;
    e.host = host;
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan& FaultPlan::restart(SimTime at, int host) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::RestartHost;
    e.host = host;
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan& FaultPlan::partition(SimTime at, std::string name,
                                std::vector<std::vector<NodeId>> groups) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::Partition;
    e.name = std::move(name);
    e.groups = std::move(groups);
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan& FaultPlan::heal(SimTime at, std::string name) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::Heal;
    e.name = std::move(name);
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan& FaultPlan::link_down(SimTime at, NodeId a, NodeId b) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::LinkDown;
    e.a = a;
    e.b = b;
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan& FaultPlan::link_up(SimTime at, NodeId a, NodeId b) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::LinkUp;
    e.a = a;
    e.b = b;
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan& FaultPlan::loss(SimTime at, NodeId a, NodeId b,
                           double probability) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultEvent::Kind::Loss;
    e.a = a;
    e.b = b;
    e.probability = probability;
    events_.push_back(std::move(e));
    return *this;
}

FaultPlan FaultPlan::random(Rng& rng, const RandomOptions& options) {
    FaultPlan plan;
    const SimTime span =
        options.heal_by > options.start ? options.heal_by - options.start : 0;
    if (span == 0) return plan;

    // Each fault category slices the timeline into disjoint windows and
    // places one fault per window, guaranteeing (a) at most
    // max_concurrent_crashes hosts down at once (crash windows never
    // overlap when the budget is 1 — the common f=1 case) and (b) every
    // fault healed by heal_by.
    const auto window = [&](int index, int count) {
        const SimTime width = span / static_cast<std::uint64_t>(count);
        const SimTime lo = options.start +
                           width * static_cast<std::uint64_t>(index);
        // Fault active for 20–70% of its window, starting in the first
        // quarter, so heal always lands inside the window.
        const SimTime begin = lo + width / 4 * rng.next_below(2);
        const SimTime hold =
            width / 5 + rng.next_below(std::max<std::uint64_t>(width / 2, 1));
        return std::pair<SimTime, SimTime>{
            begin, std::min(begin + hold, lo + width - 1)};
    };

    if (options.hosts > 0) {
        for (int i = 0; i < options.crash_events; ++i) {
            const auto [begin, end] = window(i, options.crash_events);
            const int host = static_cast<int>(
                rng.next_below(static_cast<std::uint64_t>(options.hosts)));
            plan.crash(begin, host);
            plan.restart(end, host);
        }
    }

    const auto& nodes = options.nodes;
    if (nodes.size() >= 2) {
        for (int i = 0; i < options.partition_events; ++i) {
            const auto [begin, end] = window(i, options.partition_events);
            // Isolate one random node from the rest.
            const std::size_t isolated = rng.next_below(nodes.size());
            std::vector<NodeId> minority{nodes[isolated]};
            std::vector<NodeId> majority;
            for (std::size_t n = 0; n < nodes.size(); ++n) {
                if (n != isolated) majority.push_back(nodes[n]);
            }
            const std::string name = "chaos-p" + std::to_string(i);
            plan.partition(begin, name,
                           {std::move(minority), std::move(majority)});
            plan.heal(end, name);
        }
        for (int i = 0; i < options.link_flap_events; ++i) {
            const auto [begin, end] = window(i, options.link_flap_events);
            const std::size_t x = rng.next_below(nodes.size());
            std::size_t y = rng.next_below(nodes.size() - 1);
            if (y >= x) ++y;
            plan.link_down(begin, nodes[x], nodes[y]);
            plan.link_up(end, nodes[x], nodes[y]);
        }
        for (int i = 0; i < options.loss_events; ++i) {
            const auto [begin, end] = window(i, options.loss_events);
            const std::size_t x = rng.next_below(nodes.size());
            std::size_t y = rng.next_below(nodes.size() - 1);
            if (y >= x) ++y;
            const double p = 0.05 + rng.next_double() *
                                        std::max(options.max_loss - 0.05, 0.0);
            plan.loss(begin, nodes[x], nodes[y], p);
            plan.loss(end, nodes[x], nodes[y], 0.0);
        }
    }
    return plan;
}

void FaultPlan::schedule(Simulator& simulator, Network& network,
                         HostAction crash, HostAction restart) const {
    for (const FaultEvent& event : events_) {
        FaultEvent copy = event;
        simulator.at(
            event.at,
            [&network, crash, restart, copy = std::move(copy)]() {
                switch (copy.kind) {
                    case FaultEvent::Kind::CrashHost:
                        if (crash) crash(copy.host);
                        break;
                    case FaultEvent::Kind::RestartHost:
                        if (restart) restart(copy.host);
                        break;
                    case FaultEvent::Kind::Partition:
                        network.partition(copy.name, copy.groups);
                        break;
                    case FaultEvent::Kind::Heal:
                        network.heal_partition(copy.name);
                        break;
                    case FaultEvent::Kind::LinkDown:
                        network.fail_link_bidirectional(copy.a, copy.b);
                        break;
                    case FaultEvent::Kind::LinkUp:
                        network.heal_link_bidirectional(copy.a, copy.b);
                        break;
                    case FaultEvent::Kind::Loss:
                        network.set_loss_bidirectional(copy.a, copy.b,
                                                       copy.probability);
                        break;
                }
            });
    }
}

std::string FaultPlan::describe() const {
    std::vector<const FaultEvent*> ordered;
    ordered.reserve(events_.size());
    for (const FaultEvent& e : events_) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const FaultEvent* a, const FaultEvent* b) {
                         return a->at < b->at;
                     });
    std::string out;
    for (const FaultEvent* e : ordered) {
        out += e->describe();
        out += "\n";
    }
    return out;
}

}  // namespace troxy::sim
