// Size-class buffer pool.
//
// Wire messages and payload buffers churn through the simulator at
// millions per run; allocating a fresh std::vector backing store for each
// one makes malloc the hot path. The pool recycles Bytes objects in a
// small set of capacity classes: release() banks a retired buffer on its
// class freelist (LIFO, bounded depth), acquire() hands the capacity back
// out without touching the allocator. Contents of acquired buffers are
// unspecified — callers overwrite every byte they use.
//
// The pool is fully deterministic (no randomness, LIFO order) so pooled
// runs replay bit-identically to unpooled ones.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace troxy::sim {

class BufferPool {
  public:
    /// Capacity classes; buffers above the largest class are never pooled.
    static constexpr std::array<std::size_t, 6> kClassSizes = {
        64, 256, 1024, 4096, 16384, 65536};
    /// Buffers kept per class; extra releases are discarded to bound
    /// steady-state memory.
    static constexpr std::size_t kMaxDepth = 256;

    struct Stats {
        std::uint64_t hits = 0;       // acquires served from a freelist
        std::uint64_t misses = 0;     // acquires that had to allocate
        std::uint64_t recycled = 0;   // releases banked on a freelist
        std::uint64_t discarded = 0;  // releases dropped (size/depth)
    };

    /// Returns a buffer of exactly `size` bytes (unspecified contents),
    /// recycled when a matching class has stock.
    [[nodiscard]] Bytes acquire(std::size_t size);

    /// Like acquire() but returns an *empty* buffer whose capacity covers
    /// `capacity` bytes — for append-style writers.
    [[nodiscard]] Bytes acquire_empty(std::size_t capacity);

    /// Banks a retired buffer for reuse; cheap no-op when it does not fit
    /// any class or the class is full.
    void release(Bytes&& buffer) noexcept;

    /// release() that reports whether the buffer was banked (true) or
    /// discarded (false) — for callers that keep their own counters.
    bool release_counted(Bytes&& buffer) noexcept;

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  private:
    /// Smallest class covering `size`; kClassSizes.size() if oversize.
    [[nodiscard]] static std::size_t class_for(std::size_t size) noexcept;
    /// Largest class a buffer of `capacity` can serve; kClassSizes.size()
    /// if below the smallest class.
    [[nodiscard]] static std::size_t class_of_capacity(
        std::size_t capacity) noexcept;

    std::array<std::vector<Bytes>, kClassSizes.size()> classes_;
    Stats stats_;
};

}  // namespace troxy::sim
