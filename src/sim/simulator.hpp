// Discrete-event simulation core.
//
// A Simulator owns a priority queue of timestamped events. Replicas,
// Troxies, middleboxes, clients and the network are all event handlers on
// this queue; an experiment is "schedule initial events, run until the
// measurement window closes". Ties are broken by insertion order, so runs
// are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace troxy::sim {

class Simulator {
  public:
    explicit Simulator(std::uint64_t seed = 1);

    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Root RNG; components should fork() their own streams from it.
    Rng& rng() noexcept { return rng_; }

    /// Schedules `fn` at absolute time `t` (>= now).
    void at(SimTime t, std::function<void()> fn);

    /// Schedules `fn` `delay` nanoseconds from now.
    void after(Duration delay, std::function<void()> fn);

    /// Executes the next event; returns false if the queue is empty.
    bool step();

    /// Runs events until the queue is empty.
    void run();

    /// Runs events with timestamp <= t, then sets now() = t.
    void run_until(SimTime t);

    [[nodiscard]] std::size_t pending_events() const noexcept {
        return queue_.size();
    }

    /// Total events executed (sanity metric for tests).
    [[nodiscard]] std::uint64_t executed_events() const noexcept {
        return executed_;
    }

  private:
    struct Event {
        SimTime time;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        std::function<void()> fn;
    };

    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Rng rng_;
};

}  // namespace troxy::sim
