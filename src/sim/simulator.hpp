// Discrete-event simulation core.
//
// A Simulator owns a scheduler of timestamped events. Replicas, Troxies,
// middleboxes, clients and the network are all event handlers on this
// queue; an experiment is "schedule initial events, run until the
// measurement window closes". Ties are broken by insertion order, so runs
// are fully deterministic.
//
// The default scheduler is a calendar queue (Brown 1988): a lazily
// resized wheel of time-sorted buckets with an unsorted far-list for
// events beyond the wheel horizon. Insert and pop are O(1) amortized
// versus O(log n) for a binary heap, and both the event records and their
// callbacks avoid the allocator on the hot path — records come from an
// internal slab with freelist recycling and callbacks are
// small-buffer-optimized EventFn values executed in place (never copied
// out on pop). Ordering is structural — strictly by (time, insertion
// seq) — so the calendar queue replays every seed identically to the
// binary-heap reference engine, which is kept selectable for A/B
// determinism tests and before/after microbenchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace troxy::sim {

class Simulator {
  public:
    enum class Scheduler {
        Calendar,    // bucket wheel + far-list, O(1) amortized (default)
        BinaryHeap,  // reference engine for determinism A/B tests
    };

    /// Engine observability: allocation behaviour and wheel dynamics.
    struct SchedulerStats {
        std::uint64_t scheduled = 0;         // events accepted by at()
        std::uint64_t inline_callbacks = 0;  // captures fit in EventFn
        std::uint64_t heap_callbacks = 0;    // captures spilled to heap
        std::uint64_t node_allocs = 0;       // fresh slab carves
        std::uint64_t node_reuses = 0;       // freelist recycles
        std::uint64_t far_events = 0;        // routed past the horizon
        std::uint64_t rebuilds = 0;          // wheel resizes/migrations
        std::uint64_t direct_searches = 0;   // full-rotation fallbacks
        std::size_t buckets = 0;             // current wheel size
    };

    explicit Simulator(std::uint64_t seed = 1,
                       Scheduler scheduler = Scheduler::Calendar);
    ~Simulator();

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Root RNG; components should fork() their own streams from it.
    Rng& rng() noexcept { return rng_; }

    /// Schedules `fn` at absolute time `t` (>= now).
    void at(SimTime t, EventFn fn);

    /// Schedules `fn` `delay` nanoseconds from now.
    void after(Duration delay, EventFn fn);

    /// Executes the next event; returns false if the queue is empty.
    bool step();

    /// Runs events until the queue is empty.
    void run();

    /// Runs events with timestamp <= t, then sets now() = t.
    void run_until(SimTime t);

    [[nodiscard]] std::size_t pending_events() const noexcept {
        return size_;
    }

    /// Total events executed (sanity metric for tests).
    [[nodiscard]] std::uint64_t executed_events() const noexcept {
        return executed_;
    }

    [[nodiscard]] Scheduler scheduler() const noexcept { return scheduler_; }

    [[nodiscard]] const SchedulerStats& scheduler_stats() const noexcept {
        return stats_;
    }

  private:
    struct EventNode {
        SimTime time;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        EventNode* next;    // bucket / far / free list link
        EventFn fn;
    };

    /// One wheel slot: a (time, seq)-sorted singly-linked list. The tail
    /// pointer makes the common monotone insert (>= everything already in
    /// the slot) O(1), so same-instant bursts do not degenerate.
    struct Bucket {
        EventNode* head = nullptr;
        EventNode* tail = nullptr;
    };

    // ------------------------------------------------------------- slab
    EventNode* alloc_node(SimTime t, EventFn&& fn);
    void recycle_node(EventNode* node) noexcept;
    void destroy_list(EventNode* node) noexcept;

    // -------------------------------------------------------- scheduler
    void insert(EventNode* node);
    void wheel_insert(EventNode* node) noexcept;
    [[nodiscard]] EventNode* peek_next();
    void pop_peeked(EventNode* node) noexcept;
    EventNode* direct_search() noexcept;
    void maybe_recalibrate();
    void rebuild();

    static constexpr std::size_t kMinBuckets = 64;
    static constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;
    static constexpr std::size_t kChunkNodes = 512;

    Scheduler scheduler_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;  // wheel + far (+ heap) population
    SchedulerStats stats_;

    // Calendar wheel. scan_id_ is the absolute bucket id (time / width)
    // where the dequeue scan resumes; the invariant "scan_id_ <= bucket
    // id of every pending wheel event" is kept by rewinding it on insert.
    std::vector<Bucket> buckets_;
    std::size_t mask_ = 0;            // buckets_.size() - 1 (power of two)
    Duration width_ = 0;              // bucket width in ns (power of two)
    unsigned width_shift_ = 0;        // log2(width_): ids are time >> shift
    std::uint64_t scan_id_ = 0;       // absolute bucket id of the scan
    SimTime far_threshold_ = 0;       // wheel holds only times below this
    EventNode* far_head_ = nullptr;   // unsorted overflow list
    std::size_t far_count_ = 0;
    std::size_t wheel_count_ = 0;
    Duration avg_gap_ = microseconds(1);  // window-mean inter-pop gap
    std::uint64_t recal_pops_ = 0;  // executed_ at the last width check
    SimTime recal_time_ = 0;        // now_ at the last width check

    // Binary-heap reference engine (Scheduler::BinaryHeap only).
    std::vector<EventNode*> heap_;

    // Node slab: fixed-size chunks carved sequentially, freed nodes
    // linked through their storage for reuse.
    std::vector<unsigned char*> chunks_;
    std::size_t chunk_used_ = kChunkNodes;
    void* free_head_ = nullptr;

    Rng rng_;
};

}  // namespace troxy::sim
