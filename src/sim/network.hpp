// Simulated network.
//
// Links between node pairs have a latency distribution plus a bandwidth
// term (serialization delay), matching the paper's setup: a 1 Gbps LAN and
// a WAN emulated by adding 100 ± 20 ms normally-distributed delay on the
// client NICs (§VI-A, §VI-C). Delivery per directed pair is FIFO, like a
// TCP connection.
//
// Fault injection happens at the network level: per-directed-pair
// probabilistic loss, explicit link-down state (flapping), and named
// partitions (node-set splits). All stochastic decisions draw from a
// dedicated RNG stream forked from the simulator's seed, so a fault
// schedule replays bit-identically. Drops are counted per cause so tests
// can assert on exact replay traces.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/fragment.hpp"
#include "sim/node.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"

namespace troxy::sim {

/// One-way latency model for a link.
class LatencyModel {
  public:
    static LatencyModel constant(Duration latency) noexcept;

    /// Normal(mean, stddev) clamped at `floor` to avoid negative samples.
    static LatencyModel normal(Duration mean, Duration stddev,
                               Duration floor = 0) noexcept;

    [[nodiscard]] Duration sample(Rng& rng) const noexcept;
    [[nodiscard]] Duration mean() const noexcept { return mean_; }

  private:
    Duration mean_ = 0;
    Duration stddev_ = 0;
    Duration floor_ = 0;
};

struct LinkSpec {
    LatencyModel latency = LatencyModel::constant(0);
    double bandwidth_bits_per_sec = 1e9;  // 1 Gbps default

    /// LAN link inside the cluster: ~0.1 ms RTT/2, 1 Gbps.
    static LinkSpec lan() noexcept;

    /// Paper's emulated WAN client link. The testbed adds 100 ± 20 ms of
    /// normally-distributed delay with `tc netem` on the client NIC
    /// (§VI-C); a NIC-level delay affects every packet through that NIC,
    /// so *both* directions of a client↔server link see the full
    /// distribution. We therefore sample 100 ± 20 ms independently per
    /// direction (floored at 10 ms).
    static LinkSpec wan() noexcept;
};

/// Message-drop statistics, broken down by injected cause.
struct DropCounters {
    std::uint64_t by_loss = 0;       // probabilistic per-link loss
    std::uint64_t by_link_down = 0;  // explicit link failure
    std::uint64_t by_partition = 0;  // named partition separation
    std::uint64_t bytes = 0;         // payload bytes across all causes
    // Payload recycling on the drop path: buffers of dropped messages
    // returned to the size-class pool (hit) vs discarded (miss).
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
        return by_loss + by_link_down + by_partition;
    }
};

/// Scatter-gather wire-path statistics.
struct WireStats {
    std::uint64_t frames_zero_copy = 0;  // frames shipped as chains
    std::uint64_t bytes_referenced = 0;  // payload bytes never copied
    std::uint64_t bytes_copied = 0;      // inline header bytes written
    std::uint64_t materializations = 0;  // chains flattened for a
                                         // non-chain-aware receiver
    std::uint64_t credit_stalls = 0;     // sends held for a credit
};

class Network {
  public:
    explicit Network(Simulator& simulator);

    /// Fallback spec for pairs without an explicit link.
    void set_default_link(const LinkSpec& spec);

    /// Directed link override.
    void set_link(NodeId from, NodeId to, const LinkSpec& spec);

    /// Symmetric convenience: sets both directions.
    void set_link_bidirectional(NodeId a, NodeId b, const LinkSpec& spec);

    /// Assigns a node to a shared NIC group (a physical machine): all
    /// traffic of the group's members contends for the same egress and
    /// ingress bandwidth. Mirrors the paper's setup of many logical
    /// clients per client machine and four 1 Gbps NICs per server.
    void set_nic_group(NodeId node, int group,
                       double bandwidth_bits_per_sec);

    // ---------------------------------------------------- fault injection

    /// Independent per-message drop probability on the directed pair
    /// (0 disables). Sampling is deterministic per seed.
    void set_loss(NodeId from, NodeId to, double probability);

    /// Symmetric convenience: same loss rate in both directions.
    void set_loss_bidirectional(NodeId a, NodeId b, double probability);

    /// Takes the directed link down: every message on it is dropped until
    /// heal_link(). Modelling a cable pull / switch-port failure.
    void fail_link(NodeId from, NodeId to);
    void heal_link(NodeId from, NodeId to);
    void fail_link_bidirectional(NodeId a, NodeId b);
    void heal_link_bidirectional(NodeId a, NodeId b);

    /// Installs a named partition: nodes listed in different groups cannot
    /// exchange messages; nodes absent from every group are unaffected.
    /// Multiple partitions may be active; a message passes only if no
    /// active partition separates its endpoints.
    void partition(const std::string& name,
                   std::vector<std::vector<NodeId>> groups);
    void heal_partition(const std::string& name);

    /// True if an active fault (loss excluded) would block this pair.
    [[nodiscard]] bool reachable(NodeId from, NodeId to) const;

    /// Schedules `deliver` on the destination after latency plus
    /// serialization delay for `bytes`. FIFO per directed pair. Messages
    /// blocked or lost by an injected fault are counted and discarded.
    void send(NodeId from, NodeId to, std::size_t bytes,
              std::function<void()> deliver);

    /// Payload delivery target: a plain function pointer plus context, so
    /// in-flight messages carry no std::function on the payload path.
    struct PayloadTarget {
        void* ctx = nullptr;
        void (*fn)(void* ctx, NodeId from, NodeId to, Bytes payload) =
            nullptr;
    };

    /// Payload-carrying send: the network owns the buffer while the
    /// message is in flight (slab-recycled packet records, no per-message
    /// closure allocation) and hands it to `target` at delivery time.
    /// Payloads of dropped messages are recycled into the buffer pool.
    void send(NodeId from, NodeId to, Bytes payload, PayloadTarget target);

    /// Chain delivery target (function pointer, same rationale as
    /// PayloadTarget).
    struct ChainTarget {
        void* ctx = nullptr;
        void (*fn)(void* ctx, NodeId from, NodeId to,
                   FragmentChain chain) = nullptr;
    };

    /// Scatter-gather send: ships a fragment chain without materializing
    /// it. Latency, bandwidth, FIFO and fault behaviour are computed from
    /// chain.size() — exactly the bytes a copying sender would have put
    /// on the wire — so chained and copied frames replay identically.
    /// Chains of dropped messages recycle their buffers into the pool.
    void send(NodeId from, NodeId to, FragmentChain chain,
              ChainTarget target);

    /// Recycled chain storage for senders (fragment vectors keep their
    /// capacity across frames, so a warm encode path never allocates).
    [[nodiscard]] FragmentChain acquire_chain();
    void recycle_chain(FragmentChain&& chain) noexcept;

    /// Bounded in-flight credit window per directed pair (kernel-bypass
    /// transports post a fixed number of RX descriptors per peer). While
    /// a pair has `window` records in flight, further sends queue and
    /// depart as deliveries return credits. 0 = unlimited (default; the
    /// kernel socket model — no behaviour change).
    void set_credit_window(std::uint32_t window) noexcept {
        credit_window_ = window;
    }
    [[nodiscard]] std::uint32_t credit_window() const noexcept {
        return credit_window_;
    }

    [[nodiscard]] const WireStats& wire_stats() const noexcept {
        return wire_stats_;
    }
    /// Called by a dispatcher that had to flatten a chain for a
    /// non-chain-aware receiver.
    void count_materialization() noexcept { ++wire_stats_.materializations; }
    /// Books a payload handed onward by reference instead of copied —
    /// e.g. the shard front fanning one cross-shard request out to N
    /// upstream sessions from one refcounted buffer (Fragment::Shared
    /// semantics outside the chain path).
    void count_referenced(std::size_t bytes) noexcept {
        wire_stats_.bytes_referenced += bytes;
    }

    /// The network's size-class payload pool. Senders acquire() wire
    /// buffers from it and receivers recycle() exhausted ones, closing
    /// the allocation loop across the message cycle.
    [[nodiscard]] BufferPool& pool() noexcept { return pool_; }
    [[nodiscard]] Bytes acquire(std::size_t size) {
        return pool_.acquire(size);
    }
    void recycle(Bytes&& buffer) noexcept {
        pool_.release(std::move(buffer));
    }

    [[nodiscard]] std::uint64_t messages_sent() const noexcept {
        return messages_sent_;
    }
    [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
        return bytes_sent_;
    }
    [[nodiscard]] const DropCounters& drops() const noexcept {
        return drops_;
    }
    /// In-flight packet-record slab behaviour (fresh vs freelist).
    [[nodiscard]] std::uint64_t packet_allocs() const noexcept {
        return packet_allocs_;
    }
    [[nodiscard]] std::uint64_t packet_reuses() const noexcept {
        return packet_reuses_;
    }

  private:
    struct NicGroup {
        double bandwidth_bits_per_sec = 1e9;
        SimTime egress_free_at = 0;
        SimTime ingress_free_at = 0;
    };

    /// In-flight message record, slab-allocated and freelist-recycled.
    /// Exactly one of `target.fn` / `chain_target.fn` / `plain` is set.
    struct Packet {
        Bytes payload;
        FragmentChain chain;  // scatter-gather path (chain_target set)
        PayloadTarget target;
        ChainTarget chain_target;
        std::function<void()> plain;  // legacy closure path
        NodeId from = 0;
        NodeId to = 0;
        double wire_bits = 0.0;
        int ingress_group = 0;
        std::size_t frame_bytes = 0;  // for credit-stalled re-sends
        bool credited = false;        // holds one credit of its pair
        Packet* next_free = nullptr;
    };

    [[nodiscard]] const LinkSpec& spec_for(NodeId from, NodeId to) const;
    [[nodiscard]] bool fault_drops(NodeId from, NodeId to,
                                   std::size_t bytes);

    Packet* alloc_packet();
    void free_packet(Packet* packet) noexcept;
    /// Shared latency/bandwidth/FIFO path; consumes the packet.
    void send_packet(std::size_t bytes, Packet* packet);
    void ingress_packet(Packet* packet);
    void deliver_packet(Packet* packet);
    /// Returns the credit a delivered/freed packet held; launches the
    /// next stalled packet of its pair, if any.
    void release_credit(NodeId from, NodeId to);

    Simulator& sim_;
    Rng rng_;
    Rng fault_rng_;  // separate stream: enabling loss must not perturb
                     // the latency-jitter sequence of unaffected links
    LinkSpec default_spec_;
    std::map<std::pair<NodeId, NodeId>, LinkSpec> links_;
    std::map<std::pair<NodeId, NodeId>, SimTime> last_delivery_;
    std::map<NodeId, int> nic_assignment_;
    std::map<int, NicGroup> nic_groups_;
    std::map<std::pair<NodeId, NodeId>, double> loss_;
    std::map<std::pair<NodeId, NodeId>, int> links_down_;  // down-count
    std::map<std::string, std::map<NodeId, int>> partitions_;  // node→group
    std::uint64_t messages_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
    DropCounters drops_;
    WireStats wire_stats_;
    BufferPool pool_;
    std::deque<Packet> packet_slab_;
    Packet* free_packets_ = nullptr;
    std::uint64_t packet_allocs_ = 0;
    std::uint64_t packet_reuses_ = 0;
    std::vector<FragmentChain> chain_store_;  // recycled chain storage
    std::uint32_t credit_window_ = 0;
    std::map<std::pair<NodeId, NodeId>, std::uint32_t> credits_in_flight_;
    std::map<std::pair<NodeId, NodeId>, std::deque<Packet*>> credit_stalled_;
};

}  // namespace troxy::sim
