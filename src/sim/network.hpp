// Simulated network.
//
// Links between node pairs have a latency distribution plus a bandwidth
// term (serialization delay), matching the paper's setup: a 1 Gbps LAN and
// a WAN emulated by adding 100 ± 20 ms normally-distributed delay on the
// client NICs (§VI-A, §VI-C). Delivery per directed pair is FIFO, like a
// TCP connection; messages are never lost unless a fault injector drops
// them explicitly at the endpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/rng.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace troxy::sim {

/// One-way latency model for a link.
class LatencyModel {
  public:
    static LatencyModel constant(Duration latency) noexcept;

    /// Normal(mean, stddev) clamped at `floor` to avoid negative samples.
    static LatencyModel normal(Duration mean, Duration stddev,
                               Duration floor = 0) noexcept;

    [[nodiscard]] Duration sample(Rng& rng) const noexcept;
    [[nodiscard]] Duration mean() const noexcept { return mean_; }

  private:
    Duration mean_ = 0;
    Duration stddev_ = 0;
    Duration floor_ = 0;
};

struct LinkSpec {
    LatencyModel latency = LatencyModel::constant(0);
    double bandwidth_bits_per_sec = 1e9;  // 1 Gbps default

    /// LAN link inside the cluster: ~0.1 ms RTT/2, 1 Gbps.
    static LinkSpec lan() noexcept;

    /// Paper's emulated WAN client link: 100 ± 20 ms (per direction the
    /// emulation adds the delay once on the client NIC; we attribute it to
    /// the client→server direction and keep the reverse at LAN latency
    /// plus the same distribution halved is *not* what the paper does —
    /// the delay applies to the NIC, so both directions see it).
    static LinkSpec wan() noexcept;
};

class Network {
  public:
    explicit Network(Simulator& simulator);

    /// Fallback spec for pairs without an explicit link.
    void set_default_link(const LinkSpec& spec);

    /// Directed link override.
    void set_link(NodeId from, NodeId to, const LinkSpec& spec);

    /// Symmetric convenience: sets both directions.
    void set_link_bidirectional(NodeId a, NodeId b, const LinkSpec& spec);

    /// Assigns a node to a shared NIC group (a physical machine): all
    /// traffic of the group's members contends for the same egress and
    /// ingress bandwidth. Mirrors the paper's setup of many logical
    /// clients per client machine and four 1 Gbps NICs per server.
    void set_nic_group(NodeId node, int group,
                       double bandwidth_bits_per_sec);

    /// Schedules `deliver` on the destination after latency plus
    /// serialization delay for `bytes`. FIFO per directed pair.
    void send(NodeId from, NodeId to, std::size_t bytes,
              std::function<void()> deliver);

    [[nodiscard]] std::uint64_t messages_sent() const noexcept {
        return messages_sent_;
    }
    [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
        return bytes_sent_;
    }

  private:
    struct NicGroup {
        double bandwidth_bits_per_sec = 1e9;
        SimTime egress_free_at = 0;
        SimTime ingress_free_at = 0;
    };

    [[nodiscard]] const LinkSpec& spec_for(NodeId from, NodeId to) const;

    Simulator& sim_;
    Rng rng_;
    LinkSpec default_spec_;
    std::map<std::pair<NodeId, NodeId>, LinkSpec> links_;
    std::map<std::pair<NodeId, NodeId>, SimTime> last_delivery_;
    std::map<NodeId, int> nic_assignment_;
    std::map<int, NicGroup> nic_groups_;
    std::uint64_t messages_sent_ = 0;
    std::uint64_t bytes_sent_ = 0;
};

}  // namespace troxy::sim
