// CPU cost model.
//
// The paper's performance effects hinge on *relative* processing costs:
// Java (Hybster baseline) authenticates messages slower per byte than the
// native C/C++ Troxy ("authenticating messages with large payload is
// faster in C/C++ than it is in Java", §VI-C1), and entering an SGX
// enclave costs a fixed transition penalty. A CostProfile captures these
// per-operation costs; replicas charge them to their Node before acting on
// a message. Values are calibrated, not measured: they reproduce the
// paper's reported shapes (43% overhead at 256 B writes, crossover at
// 8 KB, 115% read overhead at 256 B, …) on the simulated cluster.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace troxy::sim {

struct CostProfile {
    // Per-message protocol bookkeeping (deserialize, queue, dispatch).
    double dispatch_ns = 0.0;

    // Hashing (SHA-256): base + per byte.
    double hash_base_ns = 0.0;
    double hash_per_byte_ns = 0.0;

    // MAC (HMAC-SHA256) — the dominant cost for message certificates.
    double mac_base_ns = 0.0;
    double mac_per_byte_ns = 0.0;

    // AEAD record protection (secure channel).
    double aead_base_ns = 0.0;
    double aead_per_byte_ns = 0.0;

    // Asymmetric handshake operation (X25519 scalar mult).
    double dh_op_ns = 0.0;

    // Buffer copies in/out of protection domains.
    double memcpy_per_byte_ns = 0.0;

    // Application execution cost per request (service work).
    double app_base_ns = 0.0;
    double app_per_byte_ns = 0.0;

    [[nodiscard]] Duration dispatch() const noexcept;
    [[nodiscard]] Duration hash(std::size_t bytes) const noexcept;
    [[nodiscard]] Duration mac(std::size_t bytes) const noexcept;
    /// Continuation of a running MAC over a batch from one source: the
    /// fixed setup (key schedule, object churn — mac_base_ns) was paid by
    /// the batch's first item, later items only stream bytes.
    [[nodiscard]] Duration mac_continue(std::size_t bytes) const noexcept;
    [[nodiscard]] Duration aead(std::size_t bytes) const noexcept;
    [[nodiscard]] Duration dh() const noexcept;
    [[nodiscard]] Duration copy(std::size_t bytes) const noexcept;
    [[nodiscard]] Duration app(std::size_t bytes) const noexcept;

    /// JVM profile used by the baseline Hybster replica and the
    /// traditional client-side library (JCA crypto, JNI overhead folded
    /// into base costs).
    static CostProfile java() noexcept;

    /// Native C/C++ profile used by ctroxy (outside any enclave).
    static CostProfile native() noexcept;
};

/// Transport-layer send cost: what a process pays per emitted wire
/// record, on top of the link model in sim::Network. The kernel path
/// charges a syscall-sized base plus a user→kernel copy per byte; a
/// kernel-bypass NIC (RECIPE-style RDMA/DPDK) replaces the syscall with
/// a doorbell write and, with registered zero-copy buffers, drops the
/// per-byte staging copy — but bounds the records in flight per peer by
/// a credit window (receiver-managed RX descriptors), modeled in
/// sim::Network. The default none() profile charges nothing, keeping
/// every pre-existing configuration cost-identical to the seed.
struct TransportProfile {
    /// Per-record send entry: syscall (kernel) or doorbell (bypass).
    double tx_base_ns = 0.0;
    /// Per-byte staging copy into transport buffers. A zero-copy encode
    /// path pays this only on the bytes it physically writes (headers),
    /// not on payloads referenced in place.
    double tx_per_byte_ns = 0.0;
    /// Max in-flight records per directed peer before sends stall
    /// waiting for credits (0 = unlimited, the kernel socket model).
    std::uint32_t credit_window = 0;

    /// Send cost of one record of which `copied` bytes were staged.
    [[nodiscard]] Duration tx(std::size_t copied) const noexcept;

    /// Free transport (the seed's implicit model; charges nothing).
    static TransportProfile none() noexcept;

    /// Kernel NIC: sendmsg()-sized entry plus full per-byte copy.
    static TransportProfile kernel_nic() noexcept;

    /// Kernel-bypass NIC: doorbell-sized entry, same per-byte cost for
    /// whatever is still staged, 128-record credit window.
    static TransportProfile bypass() noexcept;
};

/// Enclave-specific fixed costs, charged by the EnclaveHost gate on top of
/// a CostProfile. Mirrors §V-A: ecalls flush the TLB, switch stacks and
/// copy parameters; EPC paging encrypts evicted pages.
struct EnclaveCosts {
    double ecall_transition_ns = 0.0;
    double ocall_transition_ns = 0.0;
    double param_copy_per_byte_ns = 0.0;
    double epc_page_fault_ns = 0.0;
    std::size_t epc_limit_bytes = 0;

    /// SGXv1-era costs matching the paper's i7-6700 / SDK v1.9 setup.
    static EnclaveCosts sgx_v1() noexcept;

    /// The "ctroxy" variant: the same native library invoked through JNI
    /// but outside SGX — cheap call transitions, no EPC.
    static EnclaveCosts jni_only() noexcept;

    /// Zero-cost variant (for ablations: "what if transitions were free").
    static EnclaveCosts free() noexcept;
};

}  // namespace troxy::sim
