// Modeled multi-core execution lanes.
//
// A replica node charges CPU work through a single CostMeter, which the
// simulator treats as one serial core. LaneSchedule models N parallel
// execution lanes *within* one charge: work items are placed on lanes by
// greedy list scheduling (each item goes to the earliest-free lane,
// lowest index on ties) and the whole schedule costs its makespan — the
// finish time of the busiest lane — instead of the serial sum. Items
// that must stay ordered relative to each other (a conflict class) are
// pinned to one lane by assigning the class once and appending every
// member of the class to that lane.
//
// With lanes = 1 every item lands on lane 0 and makespan() equals the
// serial sum exactly, so the single-lane schedule is cost-identical to
// charging each item individually.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace troxy::sim {

class LaneSchedule {
  public:
    explicit LaneSchedule(std::size_t lanes)
        : busy_until_(lanes == 0 ? 1 : lanes, Duration{0}) {}

    /// Number of lanes in the schedule.
    [[nodiscard]] std::size_t lanes() const noexcept {
        return busy_until_.size();
    }

    /// Places one work item on the earliest-free lane (lowest index on
    /// ties) and returns the lane it landed on.
    std::size_t add(Duration cost) {
        const std::size_t lane = earliest_free_lane();
        busy_until_[lane] += cost;
        serial_ += cost;
        ++items_;
        return lane;
    }

    /// Appends one work item to a specific lane (used to keep a conflict
    /// class in order on the lane its first member was assigned to).
    void add_to_lane(std::size_t lane, Duration cost) {
        TROXY_ASSERT(lane < busy_until_.size(), "lane index out of range");
        busy_until_[lane] += cost;
        serial_ += cost;
        ++items_;
    }

    /// Lane the greedy policy would pick next (earliest-free, lowest
    /// index on ties). Deterministic given the add history.
    [[nodiscard]] std::size_t earliest_free_lane() const {
        std::size_t best = 0;
        for (std::size_t i = 1; i < busy_until_.size(); ++i) {
            if (busy_until_[i] < busy_until_[best]) best = i;
        }
        return best;
    }

    /// Finish time of the busiest lane: what the schedule costs on an
    /// N-lane node. Equals serial_sum() when lanes() == 1.
    [[nodiscard]] Duration makespan() const {
        Duration max{0};
        for (const Duration d : busy_until_) max = std::max(max, d);
        return max;
    }

    /// Sum of all item costs: what the same work costs serially.
    [[nodiscard]] Duration serial_sum() const noexcept { return serial_; }

    /// Number of lanes that received at least one item.
    [[nodiscard]] std::size_t lanes_used() const {
        std::size_t used = 0;
        for (const Duration d : busy_until_) {
            if (d > Duration{0}) ++used;
        }
        return used;
    }

    /// Items placed so far.
    [[nodiscard]] std::size_t items() const noexcept { return items_; }

  private:
    std::vector<Duration> busy_until_;
    Duration serial_{0};
    std::size_t items_ = 0;
};

}  // namespace troxy::sim
