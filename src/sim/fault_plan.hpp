// Deterministic fault schedules.
//
// A FaultPlan is a timeline of fault events — host crash/restart, named
// partitions with heal, link failures (flapping) and probabilistic loss
// windows — that is installed onto a Simulator/Network pair. Host-level
// events are delivered through caller-supplied callbacks so the plan
// stays agnostic of what a "host" is (a TroxyReplicaHost, a PBFT replica,
// a middlebox). Plans are plain data: they can be built explicitly for a
// regression test, generated pseudo-randomly from a seed for chaos runs,
// serialized to a human-readable trace with describe(), and replayed
// bit-identically — the same plan on the same seed produces the same
// event interleaving, message counters and drop counters.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace troxy::sim {

struct FaultEvent {
    enum class Kind : std::uint8_t {
        CrashHost,    // host crashes, losing volatile state
        RestartHost,  // host restarts empty and rejoins
        Partition,    // named node-set split
        Heal,         // removes a named partition
        LinkDown,     // bidirectional link failure
        LinkUp,       // heals a LinkDown
        Loss,         // sets bidirectional loss probability (0 clears)
    };

    SimTime at = 0;
    Kind kind = Kind::CrashHost;
    int host = -1;                           // CrashHost / RestartHost
    std::string name;                        // Partition / Heal
    std::vector<std::vector<NodeId>> groups; // Partition
    NodeId a = 0, b = 0;                     // LinkDown / LinkUp / Loss
    double probability = 0.0;                // Loss

    [[nodiscard]] std::string describe() const;
};

class FaultPlan {
  public:
    FaultPlan& crash(SimTime at, int host);
    FaultPlan& restart(SimTime at, int host);
    FaultPlan& partition(SimTime at, std::string name,
                         std::vector<std::vector<NodeId>> groups);
    FaultPlan& heal(SimTime at, std::string name);
    FaultPlan& link_down(SimTime at, NodeId a, NodeId b);
    FaultPlan& link_up(SimTime at, NodeId a, NodeId b);
    FaultPlan& loss(SimTime at, NodeId a, NodeId b, double probability);

    /// Generation knobs for random(). All windows are placed inside
    /// [start, heal_by]: every crash is restarted, every partition and
    /// link failure healed, and every loss window cleared no later than
    /// heal_by — after that instant the network is fault-free, which is
    /// what chaos liveness checks rely on.
    struct RandomOptions {
        SimTime start = 0;
        SimTime heal_by = 0;
        /// Crashable host indices are [0, hosts); at most
        /// max_concurrent_crashes hosts are down at any instant.
        int hosts = 0;
        int max_concurrent_crashes = 1;
        /// Node ids eligible for partition/link/loss events.
        std::vector<NodeId> nodes;
        int crash_events = 1;
        int partition_events = 1;
        int link_flap_events = 1;
        int loss_events = 1;
        double max_loss = 0.3;
    };

    /// Seeded pseudo-random plan; identical Rng state yields an identical
    /// plan (the generator is the determinism boundary for chaos runs).
    static FaultPlan random(Rng& rng, const RandomOptions& options);

    using HostAction = std::function<void(int host)>;

    /// Installs every event on the simulator. Network-level events mutate
    /// `network` directly; host-level events invoke the callbacks.
    void schedule(Simulator& simulator, Network& network, HostAction crash,
                  HostAction restart) const;

    [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
        return events_;
    }
    [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

    /// One line per event, in time order — the reproduction trace to log
    /// next to the seed when a chaos run fails.
    [[nodiscard]] std::string describe() const;

  private:
    std::vector<FaultEvent> events_;
};

}  // namespace troxy::sim
