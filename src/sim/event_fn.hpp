// Small-buffer-optimized event callback.
//
// The scheduler fast path must not touch the allocator: almost every
// closure scheduled by the protocol code captures a few pointers and
// integers, so EventFn stores callables up to kInlineSize bytes inline
// and only spills larger ones to the heap. Unlike std::function it is
// move-only (no copy on the pop path — the simulator executes events in
// place) and reports whether it spilled, so the engine can count heap
// closures in its stats.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace troxy::sim {

class EventFn {
  public:
    /// Captures up to this many bytes live inline; larger callables heap-
    /// allocate once at construction (never on pop/execute).
    static constexpr std::size_t kInlineSize = 48;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                      // std::function at every schedule call site
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= kInlineSize &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            ops_ = &inline_ops<D>;
        } else {
            ::new (static_cast<void*>(storage_))
                D*(new D(std::forward<F>(f)));
            ops_ = &heap_ops<D>;
        }
    }

    EventFn(EventFn&& other) noexcept { move_from(std::move(other)); }

    EventFn& operator=(EventFn&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(std::move(other));
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    void operator()() { ops_->invoke(storage_); }

    [[nodiscard]] explicit operator bool() const noexcept {
        return ops_ != nullptr;
    }

    /// True if the callable spilled to the heap (captures > kInlineSize).
    [[nodiscard]] bool on_heap() const noexcept {
        return ops_ != nullptr && ops_->heap;
    }

    void reset() noexcept {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(unsigned char*);
        void (*relocate)(unsigned char*, unsigned char*);  // move + destroy
        void (*destroy)(unsigned char*);
        bool heap;
    };

    template <typename D>
    static constexpr Ops inline_ops = {
        [](unsigned char* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
        [](unsigned char* dst, unsigned char* src) {
            D* from = std::launder(reinterpret_cast<D*>(src));
            ::new (static_cast<void*>(dst)) D(std::move(*from));
            from->~D();
        },
        [](unsigned char* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
        false,
    };

    template <typename D>
    static constexpr Ops heap_ops = {
        [](unsigned char* s) {
            (**std::launder(reinterpret_cast<D**>(s)))();
        },
        [](unsigned char* dst, unsigned char* src) {
            D** from = std::launder(reinterpret_cast<D**>(src));
            ::new (static_cast<void*>(dst)) D*(*from);
        },
        [](unsigned char* s) {
            delete *std::launder(reinterpret_cast<D**>(s));
        },
        true,
    };

    void move_from(EventFn&& other) noexcept {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace troxy::sim
