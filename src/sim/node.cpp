#include "sim/node.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace troxy::sim {

Node::Node(Simulator& simulator, NodeId id, std::string name, int cores)
    : sim_(simulator), id_(id), name_(std::move(name)) {
    TROXY_ASSERT(cores > 0, "node needs at least one core");
    core_free_at_.assign(static_cast<std::size_t>(cores), 0);
}

SimTime Node::reserve_core(Duration cost) noexcept {
    auto it = std::min_element(core_free_at_.begin(), core_free_at_.end());
    const SimTime start = std::max(*it, sim_.now());
    const SimTime done = start + cost;
    *it = done;
    busy_ += cost;
    return done;
}

void Node::exec(Duration cost, std::function<void()> fn) {
    const SimTime done = reserve_core(cost);
    sim_.at(done, std::move(fn));
}

void Node::exec_ordered(Duration cost, std::function<void()> fn,
                        SimTime not_before) {
    SimTime done = reserve_core(cost);
    done = std::max({done, last_ordered_completion_, not_before});
    last_ordered_completion_ = done;
    sim_.at(done, std::move(fn));
}

void Node::charge(Duration cost) { reserve_core(cost); }

}  // namespace troxy::sim
