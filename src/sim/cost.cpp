#include "sim/cost.hpp"

namespace troxy::sim {

namespace {
Duration as_duration(double ns) noexcept {
    return ns <= 0.0 ? 0 : static_cast<Duration>(ns);
}
}  // namespace

Duration CostProfile::dispatch() const noexcept {
    return as_duration(dispatch_ns);
}

Duration CostProfile::hash(std::size_t bytes) const noexcept {
    return as_duration(hash_base_ns +
                       hash_per_byte_ns * static_cast<double>(bytes));
}

Duration CostProfile::mac(std::size_t bytes) const noexcept {
    return as_duration(mac_base_ns +
                       mac_per_byte_ns * static_cast<double>(bytes));
}

Duration CostProfile::mac_continue(std::size_t bytes) const noexcept {
    return as_duration(mac_per_byte_ns * static_cast<double>(bytes));
}

Duration CostProfile::aead(std::size_t bytes) const noexcept {
    return as_duration(aead_base_ns +
                       aead_per_byte_ns * static_cast<double>(bytes));
}

Duration CostProfile::dh() const noexcept { return as_duration(dh_op_ns); }

Duration CostProfile::copy(std::size_t bytes) const noexcept {
    return as_duration(memcpy_per_byte_ns * static_cast<double>(bytes));
}

Duration CostProfile::app(std::size_t bytes) const noexcept {
    return as_duration(app_base_ns +
                       app_per_byte_ns * static_cast<double>(bytes));
}

CostProfile CostProfile::java() noexcept {
    // JCA-based HMAC/SHA on OpenJDK 1.8 runs several times slower per byte
    // than hand-written C, and each operation pays JNI/object overhead.
    CostProfile p;
    p.dispatch_ns = 4'000.0;
    p.hash_base_ns = 1'500.0;
    p.hash_per_byte_ns = 6.0;
    p.mac_base_ns = 2'500.0;
    p.mac_per_byte_ns = 6.0;
    p.aead_base_ns = 3'000.0;
    p.aead_per_byte_ns = 9.0;
    p.dh_op_ns = 200'000.0;
    p.memcpy_per_byte_ns = 0.25;
    p.app_base_ns = 1'000.0;
    p.app_per_byte_ns = 0.1;
    return p;
}

CostProfile CostProfile::native() noexcept {
    // Hand-written C with hardware-accelerated primitives: per-byte costs
    // sit 5-8x below the JCA numbers (the gap §VI-C1 attributes the 8 KB
    // convergence to).
    CostProfile p;
    p.dispatch_ns = 2'000.0;
    p.hash_base_ns = 400.0;
    p.hash_per_byte_ns = 0.8;
    p.mac_base_ns = 700.0;
    p.mac_per_byte_ns = 0.8;
    p.aead_base_ns = 900.0;
    p.aead_per_byte_ns = 1.2;
    p.dh_op_ns = 60'000.0;
    p.memcpy_per_byte_ns = 0.1;
    p.app_base_ns = 1'000.0;
    p.app_per_byte_ns = 0.1;
    return p;
}

Duration TransportProfile::tx(std::size_t copied) const noexcept {
    return as_duration(tx_base_ns +
                       tx_per_byte_ns * static_cast<double>(copied));
}

TransportProfile TransportProfile::none() noexcept {
    return TransportProfile{};
}

TransportProfile TransportProfile::kernel_nic() noexcept {
    // sendmsg() round trip through the socket layer (~syscall + skb setup)
    // plus the user→kernel copy of every byte of the record.
    TransportProfile p;
    p.tx_base_ns = 1'800.0;
    p.tx_per_byte_ns = 0.25;
    p.credit_window = 0;
    return p;
}

TransportProfile TransportProfile::bypass() noexcept {
    // Posting a descriptor and ringing the doorbell on a user-mapped
    // queue pair; bytes still staged into registered buffers pay the same
    // copy cost, so the zero-copy win shows up through the copied-bytes
    // argument, not the profile. 128 RX-descriptor credits per peer.
    TransportProfile p;
    p.tx_base_ns = 150.0;
    p.tx_per_byte_ns = 0.25;
    p.credit_window = 128;
    return p;
}

EnclaveCosts EnclaveCosts::sgx_v1() noexcept {
    // Effective transition cost at 3.4 GHz: the raw crossing (~8k cycles)
    // plus TLB flush and cache pollution aftermath;
    // EPC limited to 128 MB (~93 MB usable) with expensive paging.
    EnclaveCosts c;
    c.ecall_transition_ns = 5'300.0;
    c.ocall_transition_ns = 5'300.0;
    c.param_copy_per_byte_ns = 0.15;
    c.epc_page_fault_ns = 12'000.0;
    c.epc_limit_bytes = 93ULL * 1024 * 1024;
    return c;
}

EnclaveCosts EnclaveCosts::jni_only() noexcept {
    EnclaveCosts c;
    c.ecall_transition_ns = 3'000.0;  // JNI downcall, pinning, array copies
    c.ocall_transition_ns = 3'000.0;
    c.param_copy_per_byte_ns = 0.1;
    return c;
}

EnclaveCosts EnclaveCosts::free() noexcept { return EnclaveCosts{}; }

}  // namespace troxy::sim
