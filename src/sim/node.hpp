// Simulated machine with a bounded number of cores.
//
// CPU work is charged through exec(): the work occupies the earliest-free
// core for its duration and the continuation runs at completion time. This
// yields natural saturation behaviour — when offered load exceeds core
// capacity, queueing delay grows and throughput plateaus — which is what
// the paper's throughput/latency curves measure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace troxy::sim {

using NodeId = std::uint32_t;

class Node {
  public:
    Node(Simulator& simulator, NodeId id, std::string name, int cores);

    [[nodiscard]] NodeId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] int cores() const noexcept {
        return static_cast<int>(core_free_at_.size());
    }

    /// Schedules `fn` after `cost` nanoseconds of CPU work on the
    /// earliest-available core. Zero-cost work still round-trips through
    /// the event queue to preserve ordering.
    void exec(Duration cost, std::function<void()> fn);

    /// Like exec(), but completions are additionally forced into call
    /// order: a later exec_ordered() never finishes before an earlier
    /// one. Models the machine's single network egress path — handlers
    /// may run on parallel cores, but their messages leave through one
    /// NIC queue in processing order, so protocol messages of one node
    /// can never overtake each other on the wire. `not_before` adds an
    /// external completion floor (e.g. an enclave-thread slot) without
    /// charging CPU for the wait.
    void exec_ordered(Duration cost, std::function<void()> fn,
                      SimTime not_before = 0);

    /// Charges CPU time without a continuation (bookkeeping work whose
    /// completion nobody waits on, e.g. discarding an invalid message).
    void charge(Duration cost);

    /// Cumulative busy nanoseconds across all cores (for utilization
    /// reporting in benchmarks).
    [[nodiscard]] Duration busy_time() const noexcept { return busy_; }

    /// How far the most-loaded core's reservations run ahead of `now`
    /// (the CPU backlog an arriving task would queue behind).
    [[nodiscard]] Duration backlog() const noexcept {
        const SimTime latest =
            *std::max_element(core_free_at_.begin(), core_free_at_.end());
        const SimTime now = sim_.now();
        return latest > now ? latest - now : 0;
    }

    Simulator& simulator() noexcept { return sim_; }

  private:
    SimTime reserve_core(Duration cost) noexcept;

    Simulator& sim_;
    NodeId id_;
    std::string name_;
    std::vector<SimTime> core_free_at_;
    SimTime last_ordered_completion_ = 0;
    Duration busy_ = 0;
};

}  // namespace troxy::sim
