// Simulated time.
//
// All protocol and workload code measures time in simulated nanoseconds;
// wall-clock time never enters an experiment, which is what makes runs
// reproducible from a seed.
#pragma once

#include <cstdint>

namespace troxy::sim {

/// Simulated time in nanoseconds since experiment start.
using SimTime = std::uint64_t;

/// Durations, also in nanoseconds.
using Duration = std::uint64_t;

constexpr Duration nanoseconds(std::uint64_t v) noexcept { return v; }
constexpr Duration microseconds(std::uint64_t v) noexcept { return v * 1'000; }
constexpr Duration milliseconds(std::uint64_t v) noexcept {
    return v * 1'000'000;
}
constexpr Duration seconds(std::uint64_t v) noexcept {
    return v * 1'000'000'000;
}

constexpr double to_seconds(Duration d) noexcept {
    return static_cast<double>(d) / 1e9;
}
constexpr double to_millis(Duration d) noexcept {
    return static_cast<double>(d) / 1e6;
}

}  // namespace troxy::sim
