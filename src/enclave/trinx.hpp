// TrinX — trusted monotonic counter subsystem (Hybster's trusted core).
//
// Hybster prevents equivocation with trusted counters: a replica can bind
// a message to exactly one counter value, certified by an HMAC under a key
// shared only among the trusted subsystems (established via attestation).
// Because the counter can never be reused or rolled back, a Byzantine
// replica cannot certify two different messages for the same (counter,
// value) slot — the property Hybster's 2f+1 agreement depends on.
//
// The same subsystem authenticates Troxy reply certificates (§IV-A: reply
// HMAC keyed by a secret "known amongst all Troxies" plus a per-instance
// identifier).
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "enclave/meter.hpp"

namespace troxy::enclave {

using CounterId = std::uint32_t;
using CounterValue = std::uint64_t;
using Certificate = crypto::HmacTag;

class TrinX {
  public:
    /// `replica_id` personalizes the certificates; `group_key` is the
    /// secret shared by all trusted subsystems after attestation.
    TrinX(std::uint32_t replica_id, Bytes group_key);

    /// Certifies `message` with the *next* value of counter `counter`
    /// (monotonic, gap-free). Returns the value used and the certificate.
    struct Certified {
        CounterValue value;
        Certificate certificate;
    };
    Certified certify_continuing(CostedCrypto& crypto, CounterId counter,
                                 ByteView message);

    /// Certifies `message` without touching a counter (Troxy reply
    /// authentication does not need ordering, only origin).
    Certificate certify_independent(CostedCrypto& crypto,
                                    ByteView message) const;

    /// Same, for a caller that already hashed the message (avoids
    /// re-hashing large payloads — the digest must be SHA-256 of the
    /// message bytes).
    Certificate certify_independent_digest(
        CostedCrypto& crypto, const crypto::Sha256Digest& digest) const;

    /// Batched variant: certifying many messages in one enclave transition
    /// keeps a running MAC, so only the first item pays the fixed MAC setup
    /// cost (the per-message hash is still charged in full). With
    /// `first_in_batch` true this is cost- and byte-identical to
    /// certify_independent.
    Certificate certify_independent_batched(CostedCrypto& crypto,
                                            ByteView message,
                                            bool first_in_batch) const;

    /// Verifies a certificate allegedly created by `replica_id`'s trusted
    /// subsystem for (counter, value, message).
    [[nodiscard]] bool verify_continuing(CostedCrypto& crypto,
                                         std::uint32_t replica_id,
                                         CounterId counter, CounterValue value,
                                         ByteView message,
                                         const Certificate& cert) const;

    [[nodiscard]] bool verify_independent(CostedCrypto& crypto,
                                          std::uint32_t replica_id,
                                          ByteView message,
                                          const Certificate& cert) const;

    /// Batched variant: verifying many certificates from the same source
    /// in one enclave transition keeps a running MAC per source, so only
    /// the first item pays the fixed MAC setup cost (the per-message hash
    /// is still charged in full). Semantically identical to
    /// verify_independent — the real HMAC check runs per item.
    [[nodiscard]] bool verify_independent_batched(
        CostedCrypto& crypto, std::uint32_t replica_id, ByteView message,
        const Certificate& cert, bool first_from_source) const;

    [[nodiscard]] CounterValue current(CounterId counter) const noexcept;

    [[nodiscard]] std::uint32_t replica_id() const noexcept {
        return replica_id_;
    }

    /// Proactive-recovery handover: a certified record of every counter's
    /// current value, MACed under the group key with its own domain tag
    /// and bound to this replica id. Only an instance provisioned with
    /// the same group key (i.e. attested into this deployment) can mint
    /// or accept one, and a record from replica A never verifies at
    /// replica B.
    [[nodiscard]] Bytes export_handover(CostedCrypto& crypto) const;

    /// Re-binds counters from a handover record: verifies the certificate
    /// (proving the exporter held the provisioned group key and was this
    /// replica), then raises each counter to max(current, recorded) —
    /// never lowers — so a recovered subsystem can never re-certify a
    /// (counter, value) slot the old one already used, e.g. an old view's
    /// ordering counter. Returns false (and changes nothing) on a
    /// malformed or mis-certified record.
    [[nodiscard]] bool import_handover(CostedCrypto& crypto, ByteView blob);

  private:
    [[nodiscard]] Bytes continuing_input(std::uint32_t replica_id,
                                         CounterId counter, CounterValue value,
                                         ByteView message) const;
    [[nodiscard]] Bytes independent_input(
        std::uint32_t replica_id, const crypto::Sha256Digest& digest) const;

    std::uint32_t replica_id_;
    Bytes group_key_;
    std::map<CounterId, CounterValue> counters_;
};

}  // namespace troxy::enclave
