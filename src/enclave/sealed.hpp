// Sealed storage and externalized state.
//
// §V-A: "the Troxy can store data in an encrypted manner outside the
// enclave. When it needs to be accessed, it is directly read from the
// untrusted memory and validated by comparing it against a hash securely
// stored inside the Troxy." Two mechanisms implement this:
//
//   * SealedBox — AEAD encryption under a key derived from the platform
//     key and the enclave measurement (survives restarts of the same
//     enclave code);
//   * ExternalizedBlob — plaintext kept in untrusted memory with its hash
//     retained inside; load() re-validates against the trusted hash.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "enclave/attestation.hpp"

namespace troxy::enclave {

class SealedBox {
  public:
    /// Derives the sealing key from platform key + measurement (the
    /// MRENCLAVE sealing policy).
    SealedBox(ByteView platform_key, const Measurement& measurement);

    /// Seals plaintext; the counter makes every sealed blob's nonce
    /// unique.
    Bytes seal(ByteView plaintext);

    /// Unseals; nullopt if the blob was tampered with.
    std::optional<Bytes> unseal(ByteView sealed) const;

  private:
    crypto::ChaChaKey key_{};
    std::uint64_t seal_counter_ = 0;
};

/// Integrity-only externalization: the data itself lives outside (cheap,
/// no EPC pressure), the 32-byte hash stays inside the enclave.
class ExternalizedBlob {
  public:
    /// Stores `data` outside; keeps its hash inside. Returns the
    /// untrusted representation the host should hold.
    Bytes store(ByteView data);

    /// Validates untrusted bytes against the trusted hash.
    [[nodiscard]] std::optional<Bytes> load(ByteView untrusted) const;

    [[nodiscard]] bool has_value() const noexcept { return stored_; }

  private:
    crypto::Sha256Digest trusted_hash_{};
    bool stored_ = false;
};

}  // namespace troxy::enclave
