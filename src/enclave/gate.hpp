// Simulated SGX enclave boundary.
//
// The real Troxy is reachable from the untrusted replica only through 16
// manually verified ecalls (§V-A). This gate reproduces the two properties
// of that boundary that matter for the reproduction:
//
//   * cost — every crossing charges a transition penalty plus parameter
//     marshalling, and memory beyond the EPC limit pays paging costs;
//   * interface discipline — the set of distinct entry points is recorded
//     and bounded, so tests can assert the implementation keeps the
//     paper's 16-ecall budget.
//
// The *isolation* property is enforced by construction in C++: trusted
// classes (TroxyEnclave, TrinX) keep their secrets private and the
// untrusted code never holds references into them.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "enclave/meter.hpp"
#include "sim/cost.hpp"

namespace troxy::enclave {

class EnclaveGate {
  public:
    EnclaveGate(std::string enclave_name, sim::EnclaveCosts costs,
                std::size_t max_ecalls);

    /// Charges one ecall crossing: transition + copy-in of `bytes_in` and
    /// copy-out of `bytes_out`. `name` identifies the entry point.
    void ecall(CostMeter& meter, std::string_view name, std::size_t bytes_in,
               std::size_t bytes_out = 0);

    /// Charges an ocall crossing (Troxy defines none; present for
    /// completeness and the ablation benchmarks).
    void ocall(CostMeter& meter, std::size_t bytes) noexcept;

    /// Tracks trusted heap usage for the EPC model.
    void allocate(std::size_t bytes) noexcept;
    void release(std::size_t bytes) noexcept;

    /// Charges paging cost for touching `bytes` of trusted memory while
    /// the working set exceeds the EPC limit.
    void touch(CostMeter& meter, std::size_t bytes) noexcept;

    [[nodiscard]] std::uint64_t transitions() const noexcept {
        return transitions_;
    }
    [[nodiscard]] std::size_t distinct_ecalls() const noexcept {
        return ecall_names_.size();
    }
    [[nodiscard]] std::size_t allocated_bytes() const noexcept {
        return allocated_;
    }
    [[nodiscard]] const sim::EnclaveCosts& costs() const noexcept {
        return costs_;
    }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

  private:
    std::string name_;
    sim::EnclaveCosts costs_;
    std::size_t max_ecalls_;
    std::set<std::string, std::less<>> ecall_names_;
    std::uint64_t transitions_ = 0;
    std::size_t allocated_ = 0;
};

}  // namespace troxy::enclave
