#include "enclave/trinx.hpp"

#include "common/serialize.hpp"

namespace troxy::enclave {

TrinX::TrinX(std::uint32_t replica_id, Bytes group_key)
    : replica_id_(replica_id), group_key_(std::move(group_key)) {}

Bytes TrinX::continuing_input(std::uint32_t replica_id, CounterId counter,
                              CounterValue value, ByteView message) const {
    Writer w;
    w.u8(0x01);  // domain separation: continuing certificate
    w.u32(replica_id);
    w.u32(counter);
    w.u64(value);
    w.raw(crypto::sha256(message));
    return std::move(w).take();
}

Bytes TrinX::independent_input(std::uint32_t replica_id,
                               const crypto::Sha256Digest& digest) const {
    Writer w;
    w.u8(0x02);  // domain separation: independent certificate
    w.u32(replica_id);
    w.raw(digest);
    return std::move(w).take();
}

TrinX::Certified TrinX::certify_continuing(CostedCrypto& crypto,
                                           CounterId counter,
                                           ByteView message) {
    const CounterValue value = ++counters_[counter];
    // The hash of the full message is charged; the HMAC runs over the
    // short fixed-size input.
    crypto.hash(message);
    const Bytes input =
        continuing_input(replica_id_, counter, value, message);
    return Certified{value, crypto.mac(group_key_, input)};
}

Certificate TrinX::certify_independent(CostedCrypto& crypto,
                                       ByteView message) const {
    return certify_independent_digest(crypto, crypto.hash(message));
}

Certificate TrinX::certify_independent_digest(
    CostedCrypto& crypto, const crypto::Sha256Digest& digest) const {
    return crypto.mac(group_key_, independent_input(replica_id_, digest));
}

Certificate TrinX::certify_independent_batched(CostedCrypto& crypto,
                                               ByteView message,
                                               bool first_in_batch) const {
    const Bytes input =
        independent_input(replica_id_, crypto.hash(message));
    return crypto.mac_batched(group_key_, input, first_in_batch);
}

bool TrinX::verify_continuing(CostedCrypto& crypto, std::uint32_t replica_id,
                              CounterId counter, CounterValue value,
                              ByteView message,
                              const Certificate& cert) const {
    crypto.hash(message);
    const Bytes input = continuing_input(replica_id, counter, value, message);
    return crypto.mac_verify(group_key_, input, cert);
}

bool TrinX::verify_independent(CostedCrypto& crypto, std::uint32_t replica_id,
                               ByteView message,
                               const Certificate& cert) const {
    const Bytes input =
        independent_input(replica_id, crypto.hash(message));
    return crypto.mac_verify(group_key_, input, cert);
}

bool TrinX::verify_independent_batched(CostedCrypto& crypto,
                                       std::uint32_t replica_id,
                                       ByteView message,
                                       const Certificate& cert,
                                       bool first_from_source) const {
    const Bytes input =
        independent_input(replica_id, crypto.hash(message));
    return crypto.mac_verify_batched(group_key_, input, cert,
                                     first_from_source);
}

CounterValue TrinX::current(CounterId counter) const noexcept {
    const auto it = counters_.find(counter);
    return it == counters_.end() ? 0 : it->second;
}

}  // namespace troxy::enclave
