#include "enclave/trinx.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/serialize.hpp"

namespace troxy::enclave {

TrinX::TrinX(std::uint32_t replica_id, Bytes group_key)
    : replica_id_(replica_id), group_key_(std::move(group_key)) {}

Bytes TrinX::continuing_input(std::uint32_t replica_id, CounterId counter,
                              CounterValue value, ByteView message) const {
    Writer w;
    w.u8(0x01);  // domain separation: continuing certificate
    w.u32(replica_id);
    w.u32(counter);
    w.u64(value);
    w.raw(crypto::sha256(message));
    return std::move(w).take();
}

Bytes TrinX::independent_input(std::uint32_t replica_id,
                               const crypto::Sha256Digest& digest) const {
    Writer w;
    w.u8(0x02);  // domain separation: independent certificate
    w.u32(replica_id);
    w.raw(digest);
    return std::move(w).take();
}

TrinX::Certified TrinX::certify_continuing(CostedCrypto& crypto,
                                           CounterId counter,
                                           ByteView message) {
    const CounterValue value = ++counters_[counter];
    // The hash of the full message is charged; the HMAC runs over the
    // short fixed-size input.
    crypto.hash(message);
    const Bytes input =
        continuing_input(replica_id_, counter, value, message);
    return Certified{value, crypto.mac(group_key_, input)};
}

Certificate TrinX::certify_independent(CostedCrypto& crypto,
                                       ByteView message) const {
    return certify_independent_digest(crypto, crypto.hash(message));
}

Certificate TrinX::certify_independent_digest(
    CostedCrypto& crypto, const crypto::Sha256Digest& digest) const {
    return crypto.mac(group_key_, independent_input(replica_id_, digest));
}

Certificate TrinX::certify_independent_batched(CostedCrypto& crypto,
                                               ByteView message,
                                               bool first_in_batch) const {
    const Bytes input =
        independent_input(replica_id_, crypto.hash(message));
    return crypto.mac_batched(group_key_, input, first_in_batch);
}

bool TrinX::verify_continuing(CostedCrypto& crypto, std::uint32_t replica_id,
                              CounterId counter, CounterValue value,
                              ByteView message,
                              const Certificate& cert) const {
    crypto.hash(message);
    const Bytes input = continuing_input(replica_id, counter, value, message);
    return crypto.mac_verify(group_key_, input, cert);
}

bool TrinX::verify_independent(CostedCrypto& crypto, std::uint32_t replica_id,
                               ByteView message,
                               const Certificate& cert) const {
    const Bytes input =
        independent_input(replica_id, crypto.hash(message));
    return crypto.mac_verify(group_key_, input, cert);
}

bool TrinX::verify_independent_batched(CostedCrypto& crypto,
                                       std::uint32_t replica_id,
                                       ByteView message,
                                       const Certificate& cert,
                                       bool first_from_source) const {
    const Bytes input =
        independent_input(replica_id, crypto.hash(message));
    return crypto.mac_verify_batched(group_key_, input, cert,
                                     first_from_source);
}

CounterValue TrinX::current(CounterId counter) const noexcept {
    const auto it = counters_.find(counter);
    return it == counters_.end() ? 0 : it->second;
}

namespace {

/// MAC input for a handover record: its own domain tag so a handover can
/// never double as a continuing/independent certificate input.
Bytes handover_input(std::uint32_t replica_id, ByteView payload) {
    Writer w;
    w.u8(0x03);  // domain separation: recovery handover
    w.u32(replica_id);
    w.raw(crypto::sha256(payload));
    return std::move(w).take();
}

}  // namespace

Bytes TrinX::export_handover(CostedCrypto& crypto) const {
    Writer payload;
    payload.u32(static_cast<std::uint32_t>(counters_.size()));
    for (const auto& [id, value] : counters_) {
        payload.u32(id);
        payload.u64(value);
    }
    Bytes body = std::move(payload).take();
    crypto.hash(body);
    const Certificate cert =
        crypto.mac(group_key_, handover_input(replica_id_, body));
    Writer out;
    out.bytes(body);
    out.raw(cert);
    return std::move(out).take();
}

bool TrinX::import_handover(CostedCrypto& crypto, ByteView blob) {
    try {
        Reader r(blob);
        const Bytes body = r.bytes();
        const Bytes raw_cert = r.raw(sizeof(Certificate));
        r.expect_done();
        Certificate cert;
        std::copy(raw_cert.begin(), raw_cert.end(), cert.begin());
        crypto.hash(body);
        if (!crypto.mac_verify(group_key_,
                               handover_input(replica_id_, body), cert)) {
            return false;
        }
        Reader p(body);
        const std::uint32_t count = p.u32();
        if (count > 1u << 16) return false;
        // Validate fully before mutating: a truncated body must not leave
        // a half-imported counter set behind.
        std::vector<std::pair<CounterId, CounterValue>> entries;
        entries.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            const CounterId id = p.u32();
            const CounterValue value = p.u64();
            entries.emplace_back(id, value);
        }
        p.expect_done();
        for (const auto& [id, value] : entries) {
            CounterValue& current = counters_[id];
            current = std::max(current, value);  // never lower
        }
        return true;
    } catch (const DecodeError&) {
        return false;
    }
}

}  // namespace troxy::enclave
