// Cost metering for one message-handling step.
//
// Protocol handlers run synchronously in simulation but must charge the
// CPU time the real system would spend. A CostMeter accumulates the
// nanoseconds of every operation performed while handling one message;
// the handler then schedules its visible effects after meter.take()
// nanoseconds on its Node. CostedCrypto pairs each real cryptographic
// computation with its modelled cost so the two can never drift apart.
#pragma once

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/cost.hpp"

namespace troxy::enclave {

class CostMeter {
  public:
    void add(sim::Duration d) noexcept { total_ += d; }

    [[nodiscard]] sim::Duration total() const noexcept { return total_; }

    /// Returns the accumulated cost and resets the meter.
    sim::Duration take() noexcept {
        const sim::Duration t = total_;
        total_ = 0;
        return t;
    }

  private:
    sim::Duration total_ = 0;
};

/// Real crypto operations that also charge their modelled cost to a meter.
/// The profile decides how expensive each operation is (Java vs native).
class CostedCrypto {
  public:
    // The profile is copied, not referenced: CostedCrypto objects are
    // frequently constructed with a temporary (CostProfile::java()), and a
    // stored reference would dangle once the full expression ends. The
    // profile is a small POD, so the copy is negligible next to any single
    // metered operation.
    CostedCrypto(sim::CostProfile profile, CostMeter& meter) noexcept
        : profile_(profile), meter_(meter) {}

    crypto::Sha256Digest hash(ByteView data) {
        meter_.add(profile_.hash(data.size()));
        return crypto::sha256(data);
    }

    crypto::HmacTag mac(ByteView key, ByteView data) {
        meter_.add(profile_.mac(data.size()));
        return crypto::hmac_sha256(key, data);
    }

    /// MAC creation inside a batch: the first item pays the full MAC cost,
    /// later items ride the running MAC (per-byte only) — the real HMAC is
    /// still computed per item.
    crypto::HmacTag mac_batched(ByteView key, ByteView data,
                                bool first_from_source) {
        meter_.add(first_from_source ? profile_.mac(data.size())
                                     : profile_.mac_continue(data.size()));
        return crypto::hmac_sha256(key, data);
    }

    bool mac_verify(ByteView key, ByteView data, ByteView tag) {
        meter_.add(profile_.mac(data.size()));
        return crypto::hmac_verify(key, data, tag);
    }

    /// MAC verification inside a per-source batch: the first item from a
    /// source pays the full MAC cost, later items ride the running MAC
    /// (per-byte only) — the real verification still runs per item.
    bool mac_verify_batched(ByteView key, ByteView data, ByteView tag,
                            bool first_from_source) {
        meter_.add(first_from_source ? profile_.mac(data.size())
                                     : profile_.mac_continue(data.size()));
        return crypto::hmac_verify(key, data, tag);
    }

    Bytes seal(const crypto::ChaChaKey& key, const crypto::ChaChaNonce& nonce,
               ByteView aad, ByteView plaintext) {
        meter_.add(profile_.aead(plaintext.size()));
        return crypto::aead_seal(key, nonce, aad, plaintext);
    }

    std::optional<Bytes> open(const crypto::ChaChaKey& key,
                              const crypto::ChaChaNonce& nonce, ByteView aad,
                              ByteView sealed) {
        meter_.add(profile_.aead(sealed.size()));
        return crypto::aead_open(key, nonce, aad, sealed);
    }

    void charge_dh() { meter_.add(profile_.dh()); }
    void charge(sim::Duration d) { meter_.add(d); }
    void charge_copy(std::size_t bytes) { meter_.add(profile_.copy(bytes)); }
    void charge_dispatch() { meter_.add(profile_.dispatch()); }

    [[nodiscard]] const sim::CostProfile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] CostMeter& meter() noexcept { return meter_; }

  private:
    sim::CostProfile profile_;
    CostMeter& meter_;
};

}  // namespace troxy::enclave
