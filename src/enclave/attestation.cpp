#include "enclave/attestation.hpp"

#include "common/serialize.hpp"

namespace troxy::enclave {

Measurement measure(std::string_view code_identity) {
    return crypto::sha256(to_bytes(code_identity));
}

AttestationAuthority::AttestationAuthority(Bytes platform_key)
    : platform_key_(std::move(platform_key)) {}

crypto::HmacTag AttestationAuthority::sign(const Measurement& measurement,
                                           std::uint64_t nonce) const {
    Writer w;
    w.raw(measurement);
    w.u64(nonce);
    return crypto::hmac_sha256(platform_key_, w.data());
}

AttestationReport AttestationAuthority::issue(const Measurement& measurement,
                                              std::uint64_t nonce) const {
    return AttestationReport{measurement, nonce, sign(measurement, nonce)};
}

bool AttestationAuthority::verify(const AttestationReport& report,
                                  const Measurement& expected,
                                  std::uint64_t nonce) const {
    if (report.nonce != nonce) return false;
    if (!constant_time_equal(report.measurement, expected)) return false;
    const crypto::HmacTag valid = sign(report.measurement, report.nonce);
    return constant_time_equal(valid, report.signature);
}

std::optional<Bytes> AttestationAuthority::provision(
    const AttestationReport& report, const Measurement& expected,
    std::uint64_t nonce, const Bytes& secret) const {
    if (!verify(report, expected, nonce)) return std::nullopt;
    return secret;
}

}  // namespace troxy::enclave
