#include "enclave/meter.hpp"

// Header-only today; the translation unit exists so the library has a home
// for future out-of-line definitions without touching the build.
