#include "enclave/sealed.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace troxy::enclave {

SealedBox::SealedBox(ByteView platform_key, const Measurement& measurement) {
    const Bytes derived =
        crypto::hkdf(platform_key, measurement, to_bytes("troxy-seal-key"),
                     crypto::kChaChaKeySize);
    std::memcpy(key_.data(), derived.data(), key_.size());
}

Bytes SealedBox::seal(ByteView plaintext) {
    crypto::ChaChaNonce nonce{};
    const std::uint64_t counter = seal_counter_++;
    for (int i = 0; i < 8; ++i) {
        nonce[i] = static_cast<std::uint8_t>(counter >> (8 * i));
    }
    Bytes out(nonce.begin(), nonce.end());
    const Bytes sealed = crypto::aead_seal(key_, nonce, {}, plaintext);
    out.insert(out.end(), sealed.begin(), sealed.end());
    return out;
}

std::optional<Bytes> SealedBox::unseal(ByteView sealed) const {
    if (sealed.size() < crypto::kChaChaNonceSize + crypto::kAeadTagSize) {
        return std::nullopt;
    }
    crypto::ChaChaNonce nonce{};
    std::memcpy(nonce.data(), sealed.data(), nonce.size());
    return crypto::aead_open(key_, nonce, {},
                             sealed.subspan(crypto::kChaChaNonceSize));
}

Bytes ExternalizedBlob::store(ByteView data) {
    trusted_hash_ = crypto::sha256(data);
    stored_ = true;
    return Bytes(data.begin(), data.end());
}

std::optional<Bytes> ExternalizedBlob::load(ByteView untrusted) const {
    if (!stored_) return std::nullopt;
    const crypto::Sha256Digest actual = crypto::sha256(untrusted);
    if (!constant_time_equal(actual, trusted_hash_)) return std::nullopt;
    return Bytes(untrusted.begin(), untrusted.end());
}

}  // namespace troxy::enclave
