#include "enclave/gate.hpp"

#include "common/assert.hpp"

namespace troxy::enclave {

EnclaveGate::EnclaveGate(std::string enclave_name, sim::EnclaveCosts costs,
                         std::size_t max_ecalls)
    : name_(std::move(enclave_name)), costs_(costs), max_ecalls_(max_ecalls) {}

void EnclaveGate::ecall(CostMeter& meter, std::string_view name,
                        std::size_t bytes_in, std::size_t bytes_out) {
    if (!ecall_names_.contains(name)) {
        ecall_names_.emplace(name);
        TROXY_ASSERT(ecall_names_.size() <= max_ecalls_,
                     "enclave interface exceeds its ecall budget");
    }
    ++transitions_;
    meter.add(static_cast<sim::Duration>(costs_.ecall_transition_ns));
    meter.add(static_cast<sim::Duration>(
        costs_.param_copy_per_byte_ns *
        static_cast<double>(bytes_in + bytes_out)));
}

void EnclaveGate::ocall(CostMeter& meter, std::size_t bytes) noexcept {
    ++transitions_;
    meter.add(static_cast<sim::Duration>(costs_.ocall_transition_ns));
    meter.add(static_cast<sim::Duration>(costs_.param_copy_per_byte_ns *
                                         static_cast<double>(bytes)));
}

void EnclaveGate::allocate(std::size_t bytes) noexcept { allocated_ += bytes; }

void EnclaveGate::release(std::size_t bytes) noexcept {
    allocated_ = bytes > allocated_ ? 0 : allocated_ - bytes;
}

void EnclaveGate::touch(CostMeter& meter, std::size_t bytes) noexcept {
    if (costs_.epc_limit_bytes == 0 || allocated_ <= costs_.epc_limit_bytes) {
        return;
    }
    // The fraction of trusted memory that does not fit in the EPC is the
    // probability that a touched page faults; charge proportionally.
    const double overflow_fraction =
        1.0 - static_cast<double>(costs_.epc_limit_bytes) /
                  static_cast<double>(allocated_);
    const double pages = static_cast<double>(bytes + 4095) / 4096.0;
    meter.add(static_cast<sim::Duration>(pages * overflow_fraction *
                                         costs_.epc_page_fault_ns));
}

}  // namespace troxy::enclave
