// Simulated SGX remote attestation and provisioning.
//
// The real flow (§V-A): the CPU measures the enclave's pages, the
// measurement is sent to Intel's attestation service, and once verified
// the enclave is provisioned with its secrets (TLS private key, Troxy
// group key). Here the "platform" is a per-experiment authority holding a
// platform key: enclaves obtain a report binding their measurement, the
// verifier checks the report against the expected measurement, and only
// then releases secrets. The scheme is HMAC-based (the authority is both
// issuer and verifier, as Intel's IAS effectively is for EPID).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"

namespace troxy::enclave {

using Measurement = crypto::Sha256Digest;

/// Hash of the enclave's initial code and data (MRENCLAVE equivalent).
Measurement measure(std::string_view code_identity);

struct AttestationReport {
    Measurement measurement;
    std::uint64_t nonce = 0;
    crypto::HmacTag signature{};
};

/// The attestation authority for one deployment (stands in for the Intel
/// Attestation Service plus the service operator's provisioning logic).
class AttestationAuthority {
  public:
    explicit AttestationAuthority(Bytes platform_key);

    /// Issues a report for an enclave with the given measurement.
    [[nodiscard]] AttestationReport issue(const Measurement& measurement,
                                          std::uint64_t nonce) const;

    /// Verifies a report and checks it matches the expected measurement
    /// and the challenger's nonce.
    [[nodiscard]] bool verify(const AttestationReport& report,
                              const Measurement& expected,
                              std::uint64_t nonce) const;

    /// Releases a secret to an attested enclave: returns the secret only
    /// if the report verifies. Models provisioning after attestation.
    [[nodiscard]] std::optional<Bytes> provision(
        const AttestationReport& report, const Measurement& expected,
        std::uint64_t nonce, const Bytes& secret) const;

  private:
    [[nodiscard]] crypto::HmacTag sign(const Measurement& measurement,
                                       std::uint64_t nonce) const;

    Bytes platform_key_;
};

}  // namespace troxy::enclave
