// Legacy client — completely BFT-unaware.
//
// This is the point of the whole system: the client below implements only
// (a) a TLS-like secure channel to *one* server and (b) its application
// protocol. It knows nothing about replicas, quorums, voting or
// certificates. Failover works like for any ordinary service: if the
// connection times out, the client reconnects to the next address from
// its location service (§II-C, §III-D).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "crypto/x25519.hpp"
#include "enclave/meter.hpp"
#include "net/fabric.hpp"
#include "net/secure_channel.hpp"
#include "sim/cost.hpp"

namespace troxy::troxy_core {

class LegacyClient {
  public:
    struct Options {
        /// Time without any reply before the client reconnects to the
        /// next server (location-service failover).
        sim::Duration connection_timeout = sim::milliseconds(3000);
        /// Capped exponential backoff for repeated failovers: each
        /// consecutive failover multiplies the watchdog period by this
        /// factor until backoff_cap. A client facing a dead or
        /// partitioned cluster cycles its address list progressively
        /// slower instead of hammering every server at the base rate.
        double backoff_multiplier = 2.0;
        sim::Duration backoff_cap = sim::milliseconds(12000);
        /// Relative jitter (±fraction) applied to each backoff period
        /// from the client's seeded stream, desynchronizing clients that
        /// failed over together.
        double backoff_jitter = 0.2;
        /// Coalesce a burst of send() calls issued in the same instant
        /// into ONE secure-channel record (one AEAD pass, one wire
        /// transmission). Off by default: each request keeps its own
        /// record, the pre-coalescing behaviour.
        bool coalesce_sends = false;
    };

    using ReplyCallback = std::function<void(Bytes app_reply)>;

    /// `servers` is the failover list from the location service; the
    /// client pins one channel identity key per server.
    LegacyClient(net::Fabric& fabric, sim::Node& node,
                 std::vector<sim::NodeId> servers,
                 std::vector<crypto::X25519Key> pinned_keys,
                 const sim::CostProfile& profile, Options options);

    /// Connects to the first server; `ready` fires once the secure
    /// channel is established.
    void start(std::function<void()> ready);

    /// Sends an application request; the callback fires with the reply.
    /// Replies arrive in request order (stream semantics), so pipelining
    /// is allowed.
    void send(Bytes app_request, ReplyCallback callback);

    /// Like send(), but the request payload is a refcounted reference
    /// (Fragment::Shared semantics): the caller can hand the same buffer
    /// to several sessions without one copy per recipient — the shard
    /// front's cross-shard fan-out. The bytes are read at seal time
    /// (and again on retransmission), never copied into the client.
    /// Coalesced sessions fall back to the copying buffer, keeping the
    /// flush path byte-identical.
    void send_ref(std::shared_ptr<const Bytes> app_request,
                  ReplyCallback callback);

    /// Goes dormant without destroying the object: drops the channel,
    /// the in-flight queue and the coalescing buffer, and fences every
    /// armed watchdog. Used when the owning process crashes — pending
    /// simulator timers hold raw pointers to this client, so the object
    /// must outlive them; start() brings it back with a fresh session.
    void shutdown();

    /// Tears the secure channel down and opens a fresh session to the
    /// same server: a full handshake with new session keys, exactly what
    /// the server sees when one user departs and another connects.
    /// In-flight requests carry over and are retransmitted on the new
    /// session (same as failover).
    void reconnect();
    [[nodiscard]] std::uint64_t sessions() const noexcept {
        return handshake_counter_;
    }

    /// Entry point for Channel::Client payloads addressed to this node.
    void on_message(sim::NodeId from, ByteView payload);

    [[nodiscard]] bool connected() const noexcept {
        return channel_ && channel_->established();
    }
    [[nodiscard]] std::uint64_t failovers() const noexcept {
        return failovers_;
    }
    /// Failovers since the last successful reply (the backoff exponent).
    [[nodiscard]] std::uint64_t consecutive_failovers() const noexcept {
        return consecutive_failovers_;
    }
    /// The watchdog period currently in force (after backoff and jitter).
    [[nodiscard]] sim::Duration current_backoff() const noexcept {
        return current_backoff_;
    }
    [[nodiscard]] std::size_t outstanding() const noexcept {
        return outstanding_.size();
    }
    [[nodiscard]] sim::NodeId current_server() const noexcept {
        return servers_[server_index_];
    }

  private:
    void connect();
    void failover();
    void arm_watchdog();
    /// Seals the buffered send burst into one coalesced record.
    void flush_sends();

    net::Fabric& fabric_;
    sim::Node& node_;
    std::vector<sim::NodeId> servers_;
    std::vector<crypto::X25519Key> pinned_keys_;
    const sim::CostProfile& profile_;
    Options options_;

    std::size_t server_index_ = 0;
    std::optional<net::SecureChannelClient> channel_;
    std::function<void()> ready_;

    struct Outstanding {
        Bytes request;  // owned payload (empty when `ref` is set)
        std::shared_ptr<const Bytes> ref;  // refcounted payload
        ReplyCallback callback;
        [[nodiscard]] ByteView view() const noexcept {
            return ref ? ByteView(*ref) : ByteView(request);
        }
    };
    std::deque<Outstanding> outstanding_;  // FIFO: replies match in order
    /// Requests awaiting the end-of-instant coalesced flush
    /// (options_.coalesce_sends only; cleared on reconnect — the
    /// outstanding_ queue owns retransmission).
    std::vector<Bytes> send_buffer_;
    bool send_flush_armed_ = false;
    std::uint64_t failovers_ = 0;
    std::uint64_t consecutive_failovers_ = 0;
    sim::Duration current_backoff_ = 0;
    Rng backoff_rng_;
    std::uint64_t handshake_counter_ = 0;
    std::uint64_t watchdog_generation_ = 0;
    sim::SimTime last_activity_ = 0;
};

}  // namespace troxy::troxy_core
