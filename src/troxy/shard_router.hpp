// Key-range shard map: the partition function of the sharded Troxy.
//
// Service state is partitioned across S independent Hybster groups by
// lexicographic ranges over the classifier's state-key strings. The map
// is S-1 boundary keys b_1 < b_2 < … < b_{S-1}: shard 0 owns
// ["", b_1), shard i owns [b_i, b_{i+1}), and the last shard owns
// [b_{S-1}, ∞) — half-open ranges, so a key exactly equal to a boundary
// belongs to the shard that boundary *starts*. Coverage is total and
// disjoint by construction whenever the boundaries validate, which is
// what lets the router treat "which shard owns this key" as a pure
// function shared by the front, the benches and the tests.
//
// Routing rule: a request is routed to the shard owning its state_key.
// The extra_keys closure (write-set announcements from PR 5) only
// matters when some extra key maps to a *different* shard — that is the
// cross-shard case. This distinction is load-bearing: KvService mutations
// name scan-prefix keys in every closure, so routing by the closure's
// full key set would make every write cross-shard.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hybster/service.hpp"

namespace troxy::troxy_core {

class ShardMap {
  public:
    /// Single shard covering the whole key space.
    ShardMap() = default;

    /// `boundaries` are the S-1 split keys (sorted, strictly increasing,
    /// none empty). Call validate() to surface malformed input as
    /// std::invalid_argument instead of undefined routing.
    explicit ShardMap(std::vector<std::string> boundaries)
        : boundaries_(std::move(boundaries)) {}

    /// Splits `keys` into `shards` contiguous lexicographic ranges of
    /// near-equal population: sorts a copy and takes every (i·n/S)-th key
    /// as a boundary. The natural way to build a balanced map for a known
    /// key universe (benches, chaos runs). Throws std::invalid_argument
    /// when the keys cannot yield `shards` distinct non-empty ranges.
    static ShardMap split_evenly(std::vector<std::string> keys, int shards);

    [[nodiscard]] int shard_count() const noexcept {
        return static_cast<int>(boundaries_.size()) + 1;
    }

    /// The shard owning `state_key`: the number of boundaries ≤ the key.
    [[nodiscard]] int shard_of(std::string_view state_key) const noexcept;

    /// Distinct shards touched by the request's full key closure
    /// (state_key + extra_keys), ascending. Size 1 means shard-local.
    [[nodiscard]] std::vector<int> shards_of(
        const hybster::RequestInfo& info) const;

    /// Throws std::invalid_argument with a precise message on empty or
    /// non-strictly-increasing boundaries (either would make some shard's
    /// range empty, breaking the total-and-disjoint coverage guarantee).
    void validate() const;

    [[nodiscard]] const std::vector<std::string>& boundaries()
        const noexcept {
        return boundaries_;
    }

  private:
    std::vector<std::string> boundaries_;
};

/// Consistent-hash client assignment over F routing fronts.
///
/// The front tier holds no protocol state (SplitBFT's argument for
/// replicating the untrusted routing layer freely): any front can serve
/// any client, so assignment only has to be deterministic and balanced.
/// Each front owns `vnodes` points on a 64-bit hash ring; a client is
/// served by the front owning the first point at or after the client's
/// own hash. Adding or removing one front therefore moves only the
/// clients whose arcs that front owned — the classic consistent-hashing
/// property — and every party (cluster builder, benches, tests) can
/// recompute the assignment as a pure function of (front count, client
/// id).
class FrontMap {
  public:
    FrontMap() : FrontMap(1) {}

    /// `fronts` >= 1; `vnodes` points per front smooth the ring (16 keeps
    /// the max/min client load ratio small without bloating the table).
    explicit FrontMap(int fronts, int vnodes = 16);

    [[nodiscard]] int front_count() const noexcept { return fronts_; }

    /// The front serving `client` (its node id): owner of the first ring
    /// point at or after hash(client), wrapping at the top.
    [[nodiscard]] int front_of(std::uint64_t client) const noexcept;

    /// Failover order for `client`: the owner first, then each *distinct*
    /// front met walking the ring clockwise. Every front appears exactly
    /// once, so a client facing f dead fronts still reaches a live one.
    [[nodiscard]] std::vector<int> failover_order(
        std::uint64_t client) const;

  private:
    int fronts_ = 1;
    /// (ring point, front) sorted by point.
    std::vector<std::pair<std::uint64_t, int>> ring_;
};

}  // namespace troxy::troxy_core
