// Untrusted replica host of a Troxy-backed machine.
//
// One of these runs per replica server. It owns the noncritical tasks the
// paper keeps outside the enclave (§III-C): socket/connection management,
// timers, and actual send/receive operations. It demultiplexes incoming
// traffic between the Hybster replica, the Troxy ecall interface, and the
// Troxy↔Troxy cache channel, and forwards whatever the Troxy tells it to
// transmit. Being untrusted, it can be subjected to fault injection — but
// everything security-relevant already happened inside the enclave.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "enclave/attestation.hpp"
#include "hybster/adaptive.hpp"
#include "hybster/replica.hpp"
#include "troxy/enclave.hpp"

namespace troxy::troxy_core {

class TroxyReplicaHost {
  public:
    struct Options {
        TroxyOptions troxy;
        /// Retransmit interval for ordered requests awaiting votes.
        sim::Duration vote_timeout = sim::milliseconds(2000);
        /// Remote-cache-query timeout before falling back to ordering.
        sim::Duration fast_read_timeout = sim::milliseconds(50);
        /// Voter batching: maximum replies ingested by one handle_replies
        /// ecall. 1 = one ecall per reply, the pre-batching behaviour.
        std::size_t voter_batch_max = 1;
        /// How long the host holds an incomplete reply batch before
        /// flushing it into the enclave (bounds added vote latency).
        sim::Duration voter_batch_delay = sim::microseconds(100);
        /// Coalesce this host's outgoing flush bursts into one Bundle
        /// frame per destination (one wire record per burst).
        bool coalesce_wire = false;
        /// Ship coalesced bursts as scatter-gather fragment chains (wire
        /// bytes identical, flatten copies and allocations eliminated).
        /// Off by default so existing runs replay bit-identically.
        bool wire_zero_copy = false;
        /// Per-record transport send cost charged by this host's flushes
        /// (kernel syscall+copy vs bypass doorbell). The default none()
        /// charges nothing — the seed's implicit model.
        sim::TransportProfile transport = sim::TransportProfile::none();
        /// Let an EWMA of the served reply load (replies per delay window)
        /// shrink the voter flush boundary under light load (idle keeps
        /// per-reply latency).
        bool adaptive_voting = false;
        /// Certify a whole executed batch's replies in one
        /// authenticate_replies ecall instead of one transition per reply.
        bool batch_reply_auth = false;
        /// Fast-read batching: maximum buffered cache queries before the
        /// host ships them as CacheQueryBatch bursts (one per remote).
        /// 1 = one wire message and one remote ecall per query, the
        /// pre-batching behaviour.
        std::size_t fastread_batch_max = 1;
        /// How long the host holds an incomplete query burst before
        /// flushing (bounds added fast-read latency).
        sim::Duration fastread_batch_delay = sim::microseconds(100);
        /// Let an EWMA of the served query load shrink the fast-read
        /// flush boundary under light load.
        bool adaptive_fastread = false;
        /// Latency-target hold: keep fastread_batch_delay only while the
        /// served-load EWMA predicts the buffered burst will fill to the
        /// flush boundary within the delay; otherwise flush immediately,
        /// recovering batch-1 latency at low load.
        bool fastread_latency_target = false;

        // --- proactive enclave recovery (SecureSMART-style) ---
        /// Attestation context for recovery re-handshakes. Recovery is
        /// disabled while the authority is absent.
        std::shared_ptr<enclave::AttestationAuthority> authority;
        /// Expected enclave measurement the re-handshake checks against.
        enclave::Measurement measurement{};
        /// Recover this host's enclave every period (0 = only explicit
        /// recover_enclave() calls).
        sim::Duration enclave_recovery_period = 0;
        /// Extra delay before the first periodic recovery, so a fleet can
        /// stagger its enclaves instead of recovering them in lockstep.
        sim::Duration enclave_recovery_offset = 0;
        /// Teardown-to-attested window: client frames arriving while the
        /// enclave is down are buffered and replayed once the recovered
        /// instance passed attestation.
        sim::Duration enclave_recovery_downtime = sim::milliseconds(2);
    };

    TroxyReplicaHost(net::Fabric& fabric, sim::Node& node,
                     hybster::Config config, std::uint32_t replica_id,
                     hybster::ServicePtr service,
                     std::shared_ptr<enclave::TrinX> trinx,
                     crypto::X25519Keypair channel_identity,
                     Classifier classifier,
                     const sim::CostProfile& replica_profile,
                     const sim::CostProfile& troxy_profile, Options options,
                     std::uint64_t seed);

    /// Registers this host as its node's message handler.
    void attach();

    [[nodiscard]] hybster::Replica& replica() noexcept { return *replica_; }
    [[nodiscard]] TroxyEnclave& troxy() noexcept { return *troxy_; }
    [[nodiscard]] sim::Node& node() noexcept { return node_; }

    /// Fault injection on the untrusted part.
    void set_faults(const hybster::FaultProfile& faults) {
        faults_ = faults;
        replica_->set_faults(faults);
    }
    [[nodiscard]] const hybster::FaultProfile& faults() const noexcept {
        return faults_;
    }

    /// Whole-host crash: the machine stops processing and loses all
    /// volatile state. Incoming traffic and pending timers are dropped;
    /// only restart() brings it back.
    void crash();

    /// Whole-host restart after a crash(): the enclave loses its volatile
    /// state (cache, connections, votes — §IV-B), the replica restarts
    /// empty with a fresh service instance and rejoins via checkpoint
    /// state transfer. Trusted monotonic state (TrinX counters, the
    /// Troxy's request numbering) survives, as rollback protection
    /// requires.
    void restart(hybster::ServicePtr fresh_service);

    [[nodiscard]] bool crashed() const noexcept { return faults_.crashed; }
    [[nodiscard]] std::uint64_t restarts() const noexcept {
        return restarts_;
    }

    /// Proactive enclave recovery (§SecureSMART): tears the TroxyEnclave
    /// instance down and, after options.enclave_recovery_downtime, brings
    /// up a FRESH instance gated by an attestation re-handshake against
    /// options.authority. All volatile enclave state is gone — secure-
    /// channel session keys rotate (clients must re-handshake; the pinned
    /// channel identity is kept so they can), the cache re-warms — while
    /// the trusted counters re-bind through a certified TrinX handover
    /// that can only raise values, so the recovered subsystem can never
    /// re-certify an old view. Client frames arriving during the window
    /// are buffered by the host and replayed transparently. Returns false
    /// when recovery cannot start (no authority, crashed, or one already
    /// in flight).
    bool recover_enclave();
    [[nodiscard]] std::uint64_t enclave_recoveries() const noexcept {
        return enclave_recoveries_;
    }

    /// Enclave counters plus the host-side adaptive controllers' smoothed
    /// load estimates (served items per delay window, ×100) — what the
    /// benches record to show the controllers tracking offered load.
    struct Status {
        TroxyEnclave::Status troxy;
        std::uint64_t voter_ewma_x100 = 0;
        std::uint64_t fastread_ewma_x100 = 0;
        std::uint64_t batch_ewma_x100 = 0;  // leader's ordering controller
        /// Replica execution-lane occupancy / conflict-stall counters.
        hybster::Replica::ExecStats exec;
        /// Merkle-incremental state-transfer accounting (both sides).
        hybster::Replica::StateTransferStats state;
        /// Proactive enclave recoveries completed on this host.
        std::uint64_t enclave_recoveries = 0;
        /// Client frames buffered across recovery downtime windows.
        std::uint64_t recovery_buffered_frames = 0;
        /// Wire-buffer pool behaviour of the host's network (shared
        /// across the fabric — cluster-wide counters, not per host).
        sim::BufferPool::Stats pool;
        /// Scatter-gather wire-path counters (shared, cluster-wide).
        sim::WireStats wire;
    };
    [[nodiscard]] Status status() const;

  private:
    void on_message(sim::NodeId from, Bytes message);
    /// Scatter-gather receive: a coalesced burst arriving as a fragment
    /// chain is split back into its messages without flattening; foreign
    /// chain shapes (and recovery-window traffic) materialize and take
    /// the ordinary path.
    void on_chain(sim::NodeId from, sim::FragmentChain chain);
    /// Channel dispatch over a borrowed view of the wire frame; the owning
    /// caller recycles the buffer afterwards.
    void dispatch_message(sim::NodeId from, ByteView message);
    /// Dispatches an unbundled burst: replies for the local voter are
    /// collected so the whole burst enters the enclave through ONE
    /// handle_replies transition (when voter batching is on).
    void dispatch_burst(sim::NodeId from, std::vector<Bytes> messages);
    void apply(enclave::CostMeter& meter, TroxyActions&& actions);
    void arm_vote_timer(std::uint64_t number);
    void arm_fast_read_timer(std::uint64_t query_id);

    // --- proactive enclave recovery ---
    /// Attests and swaps in the fresh enclave instance at the end of the
    /// downtime window, then replays buffered client frames.
    void finish_enclave_recovery(Bytes handover);
    void arm_recovery_timer(sim::Duration delay);

    // --- voter batching (untrusted buffering; the enclave re-verifies
    // every reply, so the host holding or reordering them is harmless) ---
    /// Routes one reply into the voter: straight into a handle_reply
    /// ecall at voter_batch_max <= 1, else into the reply buffer.
    void enqueue_reply(hybster::Reply&& reply);
    /// Routes a complete arrival burst (e.g. an unbundled wire record);
    /// flushes at the end so a bundled burst costs one ecall.
    void ingest_replies(std::vector<hybster::Reply> replies);
    void flush_reply_buffer();
    void arm_voter_flush_timer();

    // --- fast-read query batching (untrusted buffering; each query
    // carries an enclave-made certificate, so the host can delay or batch
    // but not alter them) ---
    /// Routes the structured queries an ecall surfaced: straight onto the
    /// wire at fastread_batch_max <= 1, else into the per-remote buffer.
    void route_cache_queries(
        net::Outbox& outbox,
        std::vector<std::pair<sim::NodeId, CacheQuery>>&& queries);
    /// Ships every buffered burst: one CacheQueryBatch per remote (a
    /// lone query goes out in the seed's single-message form).
    void flush_fastread_buffer(net::Outbox& outbox);
    void arm_fastread_flush_timer();

    net::Fabric& fabric_;
    sim::Node& node_;
    hybster::Config config_;
    const sim::CostProfile& troxy_profile_;
    Options options_;
    hybster::FaultProfile faults_;

    std::unique_ptr<TroxyEnclave> troxy_;
    std::unique_ptr<hybster::Replica> replica_;

    // Enclave construction context, kept so proactive recovery can build
    // the replacement instance: same replica id, same trusted counters,
    // same pinned channel identity (clients reconnect without re-pinning),
    // fresh everything else.
    std::uint32_t replica_id_;
    std::shared_ptr<enclave::TrinX> trinx_;
    crypto::X25519Keypair channel_identity_;
    Classifier classifier_;
    std::uint64_t seed_;

    // Proactive recovery state. Retired instances' counters accumulate
    // here so status() spans recoveries instead of resetting with each
    // fresh enclave (gauges — cache size, pending work — stay live).
    TroxyEnclave::Status retired_troxy_stats_;
    bool enclave_recovering_ = false;
    std::uint64_t enclave_recoveries_ = 0;
    std::uint64_t recovery_generation_ = 0;
    std::uint64_t recovery_nonce_ = 0;
    std::uint64_t recovery_buffered_frames_ = 0;
    std::vector<std::pair<sim::NodeId, Bytes>> recovery_buffer_;

    // Timer bookkeeping (untrusted, liveness only).
    std::set<std::uint64_t> votes_in_flight_;
    std::set<std::uint64_t> fast_reads_in_flight_;
    std::uint64_t restarts_ = 0;

    // Voter batching state (cleared on crash — buffered replies die with
    // the untrusted process; the senders' retransmit path covers them).
    std::vector<hybster::Reply> reply_buffer_;
    std::uint64_t voter_flush_generation_ = 0;
    bool voter_timer_armed_ = false;
    hybster::AdaptiveBatchController voter_controller_;

    // Fast-read query batching state (cleared on crash — buffered queries
    // die with the untrusted process; the fast-read timeout at the enclave
    // falls the reads back to ordering).
    std::map<sim::NodeId, std::vector<CacheQuery>> fastread_buffer_;
    std::size_t fastread_buffered_ = 0;
    std::uint64_t fastread_flush_generation_ = 0;
    bool fastread_timer_armed_ = false;
    hybster::AdaptiveBatchController fastread_controller_;

    // Enclave thread (TCS) slots: ecall work serializes once all slots
    // are busy, modelling the enclave's fixed concurrency budget.
    std::vector<sim::SimTime> tcs_free_;
};

}  // namespace troxy::troxy_core
