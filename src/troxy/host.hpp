// Untrusted replica host of a Troxy-backed machine.
//
// One of these runs per replica server. It owns the noncritical tasks the
// paper keeps outside the enclave (§III-C): socket/connection management,
// timers, and actual send/receive operations. It demultiplexes incoming
// traffic between the Hybster replica, the Troxy ecall interface, and the
// Troxy↔Troxy cache channel, and forwards whatever the Troxy tells it to
// transmit. Being untrusted, it can be subjected to fault injection — but
// everything security-relevant already happened inside the enclave.
#pragma once

#include <memory>
#include <set>

#include "hybster/replica.hpp"
#include "troxy/enclave.hpp"

namespace troxy::troxy_core {

class TroxyReplicaHost {
  public:
    struct Options {
        TroxyOptions troxy;
        /// Retransmit interval for ordered requests awaiting votes.
        sim::Duration vote_timeout = sim::milliseconds(2000);
        /// Remote-cache-query timeout before falling back to ordering.
        sim::Duration fast_read_timeout = sim::milliseconds(50);
    };

    TroxyReplicaHost(net::Fabric& fabric, sim::Node& node,
                     hybster::Config config, std::uint32_t replica_id,
                     hybster::ServicePtr service,
                     std::shared_ptr<enclave::TrinX> trinx,
                     crypto::X25519Keypair channel_identity,
                     Classifier classifier,
                     const sim::CostProfile& replica_profile,
                     const sim::CostProfile& troxy_profile, Options options,
                     std::uint64_t seed);

    /// Registers this host as its node's message handler.
    void attach();

    [[nodiscard]] hybster::Replica& replica() noexcept { return *replica_; }
    [[nodiscard]] TroxyEnclave& troxy() noexcept { return *troxy_; }
    [[nodiscard]] sim::Node& node() noexcept { return node_; }

    /// Fault injection on the untrusted part.
    void set_faults(const hybster::FaultProfile& faults) {
        faults_ = faults;
        replica_->set_faults(faults);
    }
    [[nodiscard]] const hybster::FaultProfile& faults() const noexcept {
        return faults_;
    }

    /// Whole-host crash: the machine stops processing and loses all
    /// volatile state. Incoming traffic and pending timers are dropped;
    /// only restart() brings it back.
    void crash();

    /// Whole-host restart after a crash(): the enclave loses its volatile
    /// state (cache, connections, votes — §IV-B), the replica restarts
    /// empty with a fresh service instance and rejoins via checkpoint
    /// state transfer. Trusted monotonic state (TrinX counters, the
    /// Troxy's request numbering) survives, as rollback protection
    /// requires.
    void restart(hybster::ServicePtr fresh_service);

    [[nodiscard]] bool crashed() const noexcept { return faults_.crashed; }
    [[nodiscard]] std::uint64_t restarts() const noexcept {
        return restarts_;
    }

  private:
    void on_message(sim::NodeId from, Bytes message);
    void apply(enclave::CostMeter& meter, TroxyActions&& actions);
    void arm_vote_timer(std::uint64_t number);
    void arm_fast_read_timer(std::uint64_t query_id);

    net::Fabric& fabric_;
    sim::Node& node_;
    hybster::Config config_;
    const sim::CostProfile& troxy_profile_;
    Options options_;
    hybster::FaultProfile faults_;

    std::unique_ptr<TroxyEnclave> troxy_;
    std::unique_ptr<hybster::Replica> replica_;

    // Timer bookkeeping (untrusted, liveness only).
    std::set<std::uint64_t> votes_in_flight_;
    std::set<std::uint64_t> fast_reads_in_flight_;
    std::uint64_t restarts_ = 0;

    // Enclave thread (TCS) slots: ecall work serializes once all slots
    // are busy, modelling the enclave's fixed concurrency budget.
    std::vector<sim::SimTime> tcs_free_;
};

}  // namespace troxy::troxy_core
