// Untrusted replica host of a Troxy-backed machine.
//
// One of these runs per replica server. It owns the noncritical tasks the
// paper keeps outside the enclave (§III-C): socket/connection management,
// timers, and actual send/receive operations. It demultiplexes incoming
// traffic between the Hybster replica, the Troxy ecall interface, and the
// Troxy↔Troxy cache channel, and forwards whatever the Troxy tells it to
// transmit. Being untrusted, it can be subjected to fault injection — but
// everything security-relevant already happened inside the enclave.
#pragma once

#include <memory>
#include <set>

#include "hybster/adaptive.hpp"
#include "hybster/replica.hpp"
#include "troxy/enclave.hpp"

namespace troxy::troxy_core {

class TroxyReplicaHost {
  public:
    struct Options {
        TroxyOptions troxy;
        /// Retransmit interval for ordered requests awaiting votes.
        sim::Duration vote_timeout = sim::milliseconds(2000);
        /// Remote-cache-query timeout before falling back to ordering.
        sim::Duration fast_read_timeout = sim::milliseconds(50);
        /// Voter batching: maximum replies ingested by one handle_replies
        /// ecall. 1 = one ecall per reply, the pre-batching behaviour.
        std::size_t voter_batch_max = 1;
        /// How long the host holds an incomplete reply batch before
        /// flushing it into the enclave (bounds added vote latency).
        sim::Duration voter_batch_delay = sim::microseconds(100);
        /// Coalesce this host's outgoing flush bursts into one Bundle
        /// frame per destination (one wire record per burst).
        bool coalesce_wire = false;
        /// Let an EWMA of the observed reply queue depth shrink the voter
        /// flush boundary under light load (idle keeps per-reply latency).
        bool adaptive_voting = false;
    };

    TroxyReplicaHost(net::Fabric& fabric, sim::Node& node,
                     hybster::Config config, std::uint32_t replica_id,
                     hybster::ServicePtr service,
                     std::shared_ptr<enclave::TrinX> trinx,
                     crypto::X25519Keypair channel_identity,
                     Classifier classifier,
                     const sim::CostProfile& replica_profile,
                     const sim::CostProfile& troxy_profile, Options options,
                     std::uint64_t seed);

    /// Registers this host as its node's message handler.
    void attach();

    [[nodiscard]] hybster::Replica& replica() noexcept { return *replica_; }
    [[nodiscard]] TroxyEnclave& troxy() noexcept { return *troxy_; }
    [[nodiscard]] sim::Node& node() noexcept { return node_; }

    /// Fault injection on the untrusted part.
    void set_faults(const hybster::FaultProfile& faults) {
        faults_ = faults;
        replica_->set_faults(faults);
    }
    [[nodiscard]] const hybster::FaultProfile& faults() const noexcept {
        return faults_;
    }

    /// Whole-host crash: the machine stops processing and loses all
    /// volatile state. Incoming traffic and pending timers are dropped;
    /// only restart() brings it back.
    void crash();

    /// Whole-host restart after a crash(): the enclave loses its volatile
    /// state (cache, connections, votes — §IV-B), the replica restarts
    /// empty with a fresh service instance and rejoins via checkpoint
    /// state transfer. Trusted monotonic state (TrinX counters, the
    /// Troxy's request numbering) survives, as rollback protection
    /// requires.
    void restart(hybster::ServicePtr fresh_service);

    [[nodiscard]] bool crashed() const noexcept { return faults_.crashed; }
    [[nodiscard]] std::uint64_t restarts() const noexcept {
        return restarts_;
    }

  private:
    void on_message(sim::NodeId from, Bytes message);
    void apply(enclave::CostMeter& meter, TroxyActions&& actions);
    void arm_vote_timer(std::uint64_t number);
    void arm_fast_read_timer(std::uint64_t query_id);

    // --- voter batching (untrusted buffering; the enclave re-verifies
    // every reply, so the host holding or reordering them is harmless) ---
    /// Routes one reply into the voter: straight into a handle_reply
    /// ecall at voter_batch_max <= 1, else into the reply buffer.
    void enqueue_reply(hybster::Reply&& reply);
    /// Routes a complete arrival burst (e.g. an unbundled wire record);
    /// flushes at the end so a bundled burst costs one ecall.
    void ingest_replies(std::vector<hybster::Reply> replies);
    void flush_reply_buffer();
    void arm_voter_flush_timer();

    net::Fabric& fabric_;
    sim::Node& node_;
    hybster::Config config_;
    const sim::CostProfile& troxy_profile_;
    Options options_;
    hybster::FaultProfile faults_;

    std::unique_ptr<TroxyEnclave> troxy_;
    std::unique_ptr<hybster::Replica> replica_;

    // Timer bookkeeping (untrusted, liveness only).
    std::set<std::uint64_t> votes_in_flight_;
    std::set<std::uint64_t> fast_reads_in_flight_;
    std::uint64_t restarts_ = 0;

    // Voter batching state (cleared on crash — buffered replies die with
    // the untrusted process; the senders' retransmit path covers them).
    std::vector<hybster::Reply> reply_buffer_;
    std::uint64_t voter_flush_generation_ = 0;
    bool voter_timer_armed_ = false;
    hybster::AdaptiveBatchController voter_controller_;

    // Enclave thread (TCS) slots: ecall work serializes once all slots
    // are busy, modelling the enclave's fixed concurrency budget.
    std::vector<sim::SimTime> tcs_free_;
};

}  // namespace troxy::troxy_core
