#include "troxy/enclave.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"

namespace troxy::troxy_core {

namespace {

Bytes vote_key(const crypto::Sha256Digest& digest, ByteView result) {
    Writer w;
    w.raw(digest);
    w.bytes(result);
    return std::move(w).take();
}

}  // namespace

TroxyEnclave::TroxyEnclave(sim::NodeId host_node, std::uint32_t replica_id,
                           hybster::Config config,
                           std::shared_ptr<enclave::TrinX> trinx,
                           crypto::X25519Keypair channel_identity,
                           Classifier classifier,
                           const sim::CostProfile& profile,
                           TroxyOptions options, std::uint64_t seed)
    : host_node_(host_node),
      replica_id_(replica_id),
      config_(std::move(config)),
      trinx_(std::move(trinx)),
      identity_(channel_identity),
      classifier_(std::move(classifier)),
      profile_(profile),
      options_(options),
      gate_("troxy",
            options.inside_enclave ? options.enclave_costs
                                   : sim::EnclaveCosts::jni_only(),
            /*max_ecalls=*/16),
      cache_(gate_, options.cache_capacity_bytes),
      monitor_(options.monitor),
      rng_(seed ^ (0x7472657800ULL + host_node)) {
    TROXY_ASSERT(trinx_ != nullptr, "troxy needs the trusted subsystem");
    TROXY_ASSERT(classifier_ != nullptr, "troxy needs a request classifier");
}

crypto::Sha256Digest TroxyEnclave::app_request_digest(
    enclave::CostedCrypto& crypto, ByteView app_request) const {
    return crypto.hash(app_request);
}

// ------------------------------------------------------------ connections

TroxyActions TroxyEnclave::accept_connection(enclave::CostMeter& meter,
                                             sim::NodeId client,
                                             ByteView hello) {
    gate_.ecall(meter, "accept_connection", hello.size(), 96);
    enclave::CostedCrypto crypto(profile_, meter);

    auto [it, inserted] = connections_.try_emplace(client, identity_);
    if (!inserted) {
        // Reconnect: the old session is gone (client-side failover).
        connections_.erase(it);
        it = connections_.try_emplace(client, identity_).first;
    }

    Writer seed;
    seed.u64(rng_.next());
    seed.u64(++handshake_counter_);
    auto server_hello = it->second.channel.accept(crypto, hello, seed.data());

    TroxyActions actions;
    if (!server_hello) {
        connections_.erase(it);
        return actions;
    }
    actions.sends.emplace_back(
        client, net::wrap(net::Channel::Client,
                          net::frame_client(net::ClientFrame::ServerHello,
                                            *server_hello)));
    return actions;
}

void TroxyEnclave::close_connection(enclave::CostMeter& meter,
                                    sim::NodeId client) {
    gate_.ecall(meter, "close_connection", 0, 0);
    connections_.erase(client);
}

// --------------------------------------------------------------- requests

TroxyActions TroxyEnclave::handle_request(enclave::CostMeter& meter,
                                          sim::NodeId client,
                                          ByteView record) {
    gate_.ecall(meter, "handle_request", record.size(), 0);
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;

    const auto conn = connections_.find(client);
    if (conn == connections_.end() || !conn->second.channel.established()) {
        return actions;  // no session: discard
    }

    crypto.charge(profile_.aead(record.size()));
    auto app_requests = conn->second.channel.unprotect(record);

    for (Bytes& app_request : app_requests) {
        const std::uint64_t conn_slot = conn->second.next_assign++;
        const hybster::RequestInfo info = classifier_(app_request);
        crypto.charge_dispatch();

        bool handled = false;
        if (info.is_read && options_.fast_reads &&
            !has_pending_write(info)) {
            if (monitor_.fast_path_enabled()) {
                const CacheEntry* entry = cache_.get(info.state_key);
                gate_.touch(meter, entry ? entry->result.size() : 0);
                if (entry != nullptr &&
                    constant_time_equal(
                        entry->request_digest,
                        app_request_digest(crypto, app_request))) {
                    start_fast_read(crypto, actions, client, conn_slot, info,
                                    app_request, *entry);
                    handled = true;
                } else {
                    // Local cache miss: count it, fall through to ordering.
                    ++stats_.fast_read_misses;
                    monitor_.record(true);
                }
            } else {
                monitor_.record_total_order();
            }
        } else if (!monitor_.fast_path_enabled()) {
            monitor_.record_total_order();
        }

        if (!handled) {
            TroxyActions ordered = order_request(crypto, client, conn_slot,
                                                 info, app_request);
            merge_actions(actions, std::move(ordered));
        }
    }
    return actions;
}

void TroxyEnclave::merge_actions(TroxyActions& into, TroxyActions&& from) {
    for (auto& send : from.sends) into.sends.push_back(std::move(send));
    for (auto& query : from.cache_queries) {
        into.cache_queries.push_back(std::move(query));
    }
    for (auto& request : from.to_order) {
        into.to_order.push_back(std::move(request));
    }
    for (auto& request : from.to_order_batch) {
        into.to_order_batch.push_back(std::move(request));
    }
    for (auto t : from.arm_vote_timers) into.arm_vote_timers.push_back(t);
    for (auto t : from.arm_fast_read_timers) {
        into.arm_fast_read_timers.push_back(t);
    }
    for (auto t : from.completed_votes) into.completed_votes.push_back(t);
    for (auto t : from.completed_fast_reads) {
        into.completed_fast_reads.push_back(t);
    }
}

TroxyActions TroxyEnclave::order_request(enclave::CostedCrypto& crypto,
                                         sim::NodeId client,
                                         std::uint64_t conn_slot,
                                         const hybster::RequestInfo& info,
                                         ByteView app_request) {
    TroxyActions actions;

    hybster::Request request;
    request.id.client = host_node_;
    request.id.number = next_request_number_++;
    if (info.is_read) request.flags |= hybster::Request::kFlagRead;
    request.payload.assign(app_request.begin(), app_request.end());
    // Decrypting the client request and creating the authenticated BFT
    // request happen atomically inside this ecall (§III-C task 2). The
    // request is hashed once (memoized on the Request, so the co-located
    // replica's ordering path reuses it); certificate and voter matching
    // reuse it too.
    const crypto::Sha256Digest digest = request.digest_with(crypto);
    request.auth.push_back(
        trinx_->certify_independent_digest(crypto, digest));

    PendingVote pending;
    pending.client = client;
    pending.conn_slot = conn_slot;
    pending.state_key = info.state_key;
    pending.extra_keys = info.extra_keys;
    pending.is_read = info.is_read;
    pending.request_digest = digest;
    pending.request = request;
    if (!info.is_read) {
        // Register the whole write set: a fast read on any key the write
        // touches (exact key or a covering scan partition) must be
        // conservatively ordered while the write is in flight.
        ++pending_write_keys_[info.state_key];
        for (const std::string& key : info.extra_keys) {
            ++pending_write_keys_[key];
        }
    }
    pending_votes_.emplace(request.id.number, std::move(pending));

    ++stats_.ordered_requests;
    const std::uint64_t number = request.id.number;
    actions.to_order.push_back(std::move(request));
    actions.arm_vote_timers.push_back(number);
    return actions;
}

// ------------------------------------------------------------------ voter

TroxyActions TroxyEnclave::handle_reply(enclave::CostMeter& meter,
                                        hybster::Reply reply) {
    gate_.ecall(meter, "handle_reply", reply.result.size() + 96, 0);
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;
    std::set<std::string> invalidated;
    ingest_reply(crypto, actions, std::move(reply), /*first_from_source=*/true,
                 /*release_plan=*/nullptr, &invalidated);
    return actions;
}

TroxyActions TroxyEnclave::handle_replies(enclave::CostMeter& meter,
                                          std::vector<hybster::Reply> replies) {
    std::size_t in_bytes = 0;
    for (const hybster::Reply& reply : replies) {
        in_bytes += reply.result.size() + 96;
    }
    gate_.ecall(meter, "handle_replies", in_bytes, 0);
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;

    ++stats_.reply_batches;
    stats_.batched_replies += replies.size();

    // Per-source running MAC: a source replica's first reply in the batch
    // pays the full MAC setup, its later replies only stream bytes.
    // Completed writes share one per-transition invalidation set, so a
    // burst completing many writes under one key drops it once.
    std::set<std::uint32_t> sources_seen;
    std::set<std::string> invalidated;
    ReleasePlan plan;
    for (hybster::Reply& reply : replies) {
        const bool first = sources_seen.insert(reply.replica).second;
        ingest_reply(crypto, actions, std::move(reply), first, &plan,
                     &invalidated);
    }
    flush_releases(crypto, actions, plan);
    return actions;
}

void TroxyEnclave::ingest_reply(enclave::CostedCrypto& crypto,
                                TroxyActions& actions, hybster::Reply&& reply,
                                bool first_from_source,
                                ReleasePlan* release_plan,
                                std::set<std::string>* invalidated) {
    const auto it = pending_votes_.find(reply.request_id.number);
    if (it == pending_votes_.end()) return;  // done or unknown
    if (reply.request_id.client != host_node_) return;
    PendingVote& pending = it->second;

    if (reply.replica >= static_cast<std::uint32_t>(config_.n())) {
        return;
    }

    // §IV-A change (1): only count replies authenticated by the sending
    // replica's Troxy — this is what forces every replica to route write
    // replies through its trusted subsystem and thus invalidate its cache.
    // A bad certificate rejects only this reply; the rest of a batch is
    // unaffected (each reply is verified individually even when the MAC
    // cost is amortized).
    if (!trinx_->verify_independent_batched(crypto, reply.replica,
                                            reply.certified_view(), reply.cert,
                                            first_from_source)) {
        ++stats_.rejected_replies;
        return;
    }
    // §IV-A change (2): the reply embeds the request digest, so the voter
    // matches result *and* request identity.
    if (!constant_time_equal(reply.request_digest, pending.request_digest)) {
        ++stats_.rejected_replies;
        return;
    }

    Bytes key = vote_key(reply.request_digest, reply.result);
    const auto previous = pending.votes.find(reply.replica);
    if (previous != pending.votes.end()) {
        if (previous->second == key) return;
        --pending.tally[previous->second];
    }
    pending.votes[reply.replica] = key;
    const int count = ++pending.tally[key];

    if (count < config_.quorum()) return;

    // Vote complete: the result is correct. Maintain the cache with
    // knowledge the contact Troxy now *provably* has.
    if (pending.is_read) {
        CacheEntry entry;
        entry.request_digest = crypto.hash(pending.request.payload);
        entry.result = reply.result;
        entry.result_digest = crypto.hash(entry.result);
        gate_.touch(crypto.meter(), entry.result.size());
        cache_.put(pending.state_key, std::move(entry));
        // A fresh entry re-arms the key: a later write completing in the
        // SAME transition must invalidate it again, dedup or not.
        if (invalidated != nullptr) invalidated->erase(pending.state_key);
        invalidated_unrecached_.erase(pending.state_key);
    } else {
        invalidate_write_set(pending.state_key, pending.extra_keys,
                             invalidated);
        for (std::size_t k = 0; k <= pending.extra_keys.size(); ++k) {
            const std::string& key =
                k == 0 ? pending.state_key : pending.extra_keys[k - 1];
            const auto in_flight = pending_write_keys_.find(key);
            if (in_flight != pending_write_keys_.end() &&
                --in_flight->second == 0) {
                pending_write_keys_.erase(in_flight);
            }
        }
    }
    ++stats_.completed_votes;

    const sim::NodeId client = pending.client;
    const std::uint64_t conn_slot = pending.conn_slot;
    Bytes result = std::move(reply.result);
    pending_votes_.erase(it);
    actions.completed_votes.push_back(reply.request_id.number);

    if (release_plan != nullptr) {
        collect_releases(client, conn_slot, std::move(result), *release_plan);
    } else {
        release_reply(crypto, actions, client, conn_slot, std::move(result));
    }
}

void TroxyEnclave::collect_releases(sim::NodeId client,
                                    std::uint64_t conn_slot, Bytes app_reply,
                                    ReleasePlan& plan) {
    const auto conn = connections_.find(client);
    if (conn == connections_.end()) return;  // client went away
    Connection& connection = conn->second;

    connection.ready.emplace(conn_slot, std::move(app_reply));

    // Same strict per-connection release order as release_reply, but the
    // plaintexts accumulate for one coalesced seal at end of transition.
    std::vector<Bytes>& out = plan[client];
    while (true) {
        const auto next = connection.ready.find(connection.next_release);
        if (next == connection.ready.end()) break;
        out.push_back(std::move(next->second));
        connection.ready.erase(next);
        ++connection.next_release;
    }
}

void TroxyEnclave::flush_releases(enclave::CostedCrypto& crypto,
                                  TroxyActions& actions, ReleasePlan& plan) {
    for (auto& [client, plaintexts] : plan) {
        if (plaintexts.empty()) continue;
        const auto conn = connections_.find(client);
        if (conn == connections_.end()) continue;

        std::size_t total = 0;
        std::vector<ByteView> views;
        views.reserve(plaintexts.size());
        for (const Bytes& p : plaintexts) {
            total += p.size();
            views.emplace_back(p);
        }
        // ONE AEAD pass over the whole burst for this connection: the
        // per-record base cost is paid once instead of once per reply.
        // Gather encoding builds envelope ‖ frame header ‖ sealed record
        // in one buffer.
        crypto.charge(profile_.aead(total));
        Writer frame;
        frame.u8(static_cast<std::uint8_t>(net::Channel::Client));
        frame.u8(static_cast<std::uint8_t>(net::ClientFrame::Record));
        conn->second.channel.protect_many_into(frame, views);
        actions.sends.emplace_back(client, std::move(frame).take());
    }
}

void TroxyEnclave::release_reply(enclave::CostedCrypto& crypto,
                                 TroxyActions& actions, sim::NodeId client,
                                 std::uint64_t conn_slot, Bytes app_reply) {
    const auto conn = connections_.find(client);
    if (conn == connections_.end()) return;  // client went away
    Connection& connection = conn->second;

    connection.ready.emplace(conn_slot, std::move(app_reply));

    // Release strictly in per-connection order (TLS stream semantics).
    while (true) {
        const auto next = connection.ready.find(connection.next_release);
        if (next == connection.ready.end()) break;
        crypto.charge(profile_.aead(next->second.size()));
        Writer frame;
        frame.u8(static_cast<std::uint8_t>(net::Channel::Client));
        frame.u8(static_cast<std::uint8_t>(net::ClientFrame::Record));
        connection.channel.protect_many_into(
            frame, {ByteView(next->second)});
        actions.sends.emplace_back(client, std::move(frame).take());
        connection.ready.erase(next);
        ++connection.next_release;
    }
}

// ------------------------------------------------- reply authentication

enclave::Certificate TroxyEnclave::certify_executed_reply(
    enclave::CostedCrypto& crypto, const hybster::Request& request,
    const hybster::Reply& reply, bool first_in_batch,
    std::set<std::string>* invalidated) {
    const hybster::RequestInfo info = classifier_(request.payload);
    gate_.touch(crypto.meter(), reply.result.size());

    // Invalidate *before* the certificate exists: without the certificate
    // the reply cannot influence any voter, so no client can observe the
    // write while any quorum cache still holds the overwritten entry.
    // Within one batched transition each distinct key drops once (the
    // per-transition set dedups repeat writers).
    if (!info.is_read) {
        invalidate_write_set(info.state_key, info.extra_keys, invalidated);
    } else if (reply.kind == hybster::Reply::Kind::Ordered) {
        CacheEntry entry;
        entry.request_digest = crypto.hash(request.payload);
        entry.result = reply.result;
        entry.result_digest = crypto.hash(entry.result);
        cache_.put(info.state_key, std::move(entry));
        // Re-arm the key: a later write in the same batch must
        // invalidate this fresh entry again.
        if (invalidated != nullptr) invalidated->erase(info.state_key);
        invalidated_unrecached_.erase(info.state_key);
    }

    return trinx_->certify_independent_batched(crypto, reply.certified_view(),
                                               first_in_batch);
}

void TroxyEnclave::invalidate_write_set(
    const std::string& state_key, const std::vector<std::string>& extra_keys,
    std::set<std::string>* invalidated) {
    for (std::size_t k = 0; k <= extra_keys.size(); ++k) {
        const std::string& key = k == 0 ? state_key : extra_keys[k - 1];
        if (invalidated != nullptr && !invalidated->insert(key).second) {
            ++stats_.invalidations_saved;
            continue;
        }
        // Cross-batch dedup: a key invalidated earlier and never
        // re-cached since cannot be in the cache, so there is nothing to
        // drop.
        if (!invalidated_unrecached_.insert(key).second) {
            ++stats_.invalidations_saved_cross_batch;
            continue;
        }
        cache_.invalidate(key);
        ++stats_.cache_invalidations;
    }
}

bool TroxyEnclave::has_pending_write(
    const hybster::RequestInfo& info) const {
    if (pending_write_keys_.contains(info.state_key)) return true;
    for (const std::string& key : info.extra_keys) {
        if (pending_write_keys_.contains(key)) return true;
    }
    return false;
}

enclave::Certificate TroxyEnclave::authenticate_reply(
    enclave::CostMeter& meter, const hybster::Request& request,
    const hybster::Reply& reply) {
    gate_.ecall(meter, "authenticate_reply",
                request.payload.size() + reply.result.size() + 128,
                sizeof(enclave::Certificate));
    enclave::CostedCrypto crypto(profile_, meter);
    std::set<std::string> invalidated;
    return certify_executed_reply(crypto, request, reply,
                                  /*first_in_batch=*/true, &invalidated);
}

std::vector<enclave::Certificate> TroxyEnclave::authenticate_replies(
    enclave::CostMeter& meter, const std::vector<ReplyAuth>& batch) {
    std::size_t in_bytes = 0;
    for (const ReplyAuth& item : batch) {
        in_bytes +=
            item.request->payload.size() + item.reply->result.size() + 128;
    }
    gate_.ecall(meter, "authenticate_replies", in_bytes,
                batch.size() * sizeof(enclave::Certificate));
    enclave::CostedCrypto crypto(profile_, meter);

    ++stats_.reply_auth_batches;
    stats_.batch_authenticated_replies += batch.size();

    // All certificates come from this Troxy's own trusted subsystem, so
    // the whole batch shares one running MAC: only the first reply pays
    // the MAC setup.
    // One invalidation set for the whole executed batch: a write burst
    // under few distinct keys drops each key once instead of per reply.
    std::set<std::string> invalidated;
    std::vector<enclave::Certificate> certs;
    certs.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        certs.push_back(certify_executed_reply(crypto, *batch[i].request,
                                               *batch[i].reply, i == 0,
                                               &invalidated));
    }
    return certs;
}

// -------------------------------------------------------------- fast read

void TroxyEnclave::start_fast_read(enclave::CostedCrypto& crypto,
                                   TroxyActions& actions, sim::NodeId client,
                                   std::uint64_t conn_slot,
                                   const hybster::RequestInfo& info,
                                   ByteView app_request,
                                   const CacheEntry& entry) {
    const std::uint64_t query_id = next_query_id_++;

    PendingFastRead fast;
    fast.client = client;
    fast.conn_slot = conn_slot;
    fast.state_key = info.state_key;
    fast.local = entry;
    fast.app_request.assign(app_request.begin(), app_request.end());

    // Choose f random remote Troxies (Fig. 4 line 24; randomness defends
    // against a faulty replica that always answers stale, §VI-B).
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(config_.n());
         ++r) {
        if (r != replica_id_) candidates.push_back(r);
    }
    for (int i = 0; i < config_.f; ++i) {
        const std::size_t pick =
            static_cast<std::size_t>(rng_.next_below(candidates.size() - i));
        std::swap(candidates[pick], candidates[candidates.size() - 1 - i]);
        fast.awaiting.insert(candidates[candidates.size() - 1 - i]);
    }

    CacheQuery query;
    query.requester = host_node_;
    query.query_id = query_id;
    query.state_key = info.state_key;
    query.request_digest = entry.request_digest;
    query.cert = trinx_->certify_independent(crypto, query.certified_view());

    // Surfaced structured, not encoded: the untrusted host may buffer
    // concurrent queries to the same remote and ship them as one
    // CacheQueryBatch (the certificate already binds the content).
    for (const std::uint32_t r : fast.awaiting) {
        actions.cache_queries.emplace_back(config_.node_of(r), query);
    }

    fast_reads_.emplace(query_id, std::move(fast));
    actions.arm_fast_read_timers.push_back(query_id);
}

std::optional<CacheResponse> TroxyEnclave::answer_cache_query(
    enclave::CostedCrypto& crypto, const CacheQuery& query,
    bool first_from_source) {
    const int requester = config_.replica_of(query.requester);
    if (requester < 0 || requester == static_cast<int>(replica_id_)) {
        return std::nullopt;
    }
    if (!trinx_->verify_independent_batched(
            crypto, static_cast<std::uint32_t>(requester),
            query.certified_view(), query.cert, first_from_source)) {
        return std::nullopt;
    }

    CacheResponse response;
    response.responder = host_node_;
    response.responder_replica = replica_id_;
    response.query_id = query.query_id;

    const CacheEntry* entry = cache_.get(query.state_key);
    gate_.touch(crypto.meter(), entry ? entry->result.size() : 0);
    if (entry != nullptr) {
        response.has_entry = true;
        response.request_digest = entry->request_digest;
        // Only the hash of the cached reply crosses the network (§VI-C2);
        // the digest was computed once at insertion.
        response.result_digest = entry->result_digest;
    }
    response.cert =
        trinx_->certify_independent(crypto, response.certified_view());
    return response;
}

TroxyActions TroxyEnclave::handle_cache_query(enclave::CostMeter& meter,
                                              const CacheQuery& query) {
    gate_.ecall(meter, "handle_cache_query", query.wire_size(),
                CacheResponse::wire_size());
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;

    auto response =
        answer_cache_query(crypto, query, /*first_from_source=*/true);
    if (!response) return actions;

    actions.sends.emplace_back(
        query.requester,
        net::wrap(net::Channel::TroxyCache,
                  encode_cache_message(CacheMessage(*response))));
    return actions;
}

TroxyActions TroxyEnclave::handle_cache_queries(
    enclave::CostMeter& meter, const std::vector<CacheQuery>& queries) {
    std::size_t in_bytes = 2;
    for (const CacheQuery& query : queries) in_bytes += query.wire_size();
    gate_.ecall(meter, "handle_cache_queries", in_bytes,
                2 + queries.size() * CacheResponse::wire_size());
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;

    ++stats_.cache_query_batches;
    stats_.batched_cache_queries += queries.size();

    // Per-source running MAC over the requester certificates; every query
    // is still verified individually (a bad one drops only itself).
    // Answers to the same requester leave as one CacheResponseBatch.
    std::set<std::uint32_t> sources_seen;
    std::map<sim::NodeId, std::vector<CacheResponse>> per_requester;
    for (const CacheQuery& query : queries) {
        const int requester = config_.replica_of(query.requester);
        const bool first =
            requester < 0 ||
            sources_seen.insert(static_cast<std::uint32_t>(requester)).second;
        auto response = answer_cache_query(crypto, query, first);
        if (response) {
            per_requester[query.requester].push_back(std::move(*response));
        }
    }
    for (auto& [requester, responses] : per_requester) {
        const CacheMessage message =
            responses.size() == 1
                ? CacheMessage(std::move(responses.front()))
                : CacheMessage(CacheResponseBatch{std::move(responses)});
        actions.sends.emplace_back(
            requester, net::wrap(net::Channel::TroxyCache,
                                 encode_cache_message(message)));
    }
    return actions;
}

void TroxyEnclave::ingest_cache_response(enclave::CostedCrypto& crypto,
                                         TroxyActions& actions,
                                         const CacheResponse& response,
                                         bool first_from_source,
                                         ReleasePlan* release_plan) {
    const auto it = fast_reads_.find(response.query_id);
    if (it == fast_reads_.end()) return;
    PendingFastRead& fast = it->second;

    const int responder = config_.replica_of(response.responder);
    if (responder < 0 ||
        response.responder_replica != static_cast<std::uint32_t>(responder) ||
        !fast.awaiting.contains(response.responder_replica)) {
        return;
    }
    if (!trinx_->verify_independent_batched(crypto, response.responder_replica,
                                            response.certified_view(),
                                            response.cert,
                                            first_from_source)) {
        return;
    }

    const bool matches =
        response.has_entry &&
        constant_time_equal(response.request_digest,
                            fast.local.request_digest) &&
        constant_time_equal(response.result_digest,
                            fast.local.result_digest);

    if (!matches) {
        // Mismatch amongst caches (concurrent write or stale/faulty
        // replica): order the request the common way (Fig. 4 line 31).
        ++stats_.fast_read_conflicts;
        monitor_.record(true);
        fast_read_fallback(crypto, actions, response.query_id);
        return;
    }

    fast.awaiting.erase(response.responder_replica);
    if (!fast.awaiting.empty()) return;

    // All f remote caches matched the local one: the fast read succeeds.
    ++stats_.fast_read_hits;
    monitor_.record(false);
    const sim::NodeId client = fast.client;
    const std::uint64_t conn_slot = fast.conn_slot;
    Bytes result = std::move(fast.local.result);
    fast_reads_.erase(it);
    actions.completed_fast_reads.push_back(response.query_id);
    if (release_plan != nullptr) {
        collect_releases(client, conn_slot, std::move(result), *release_plan);
    } else {
        release_reply(crypto, actions, client, conn_slot, std::move(result));
    }
}

TroxyActions TroxyEnclave::handle_cache_response(
    enclave::CostMeter& meter, const CacheResponse& response) {
    gate_.ecall(meter, "handle_cache_response", CacheResponse::wire_size(), 0);
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;
    ingest_cache_response(crypto, actions, response,
                          /*first_from_source=*/true,
                          /*release_plan=*/nullptr);
    return actions;
}

TroxyActions TroxyEnclave::handle_cache_responses(
    enclave::CostMeter& meter, const std::vector<CacheResponse>& responses) {
    gate_.ecall(meter, "handle_cache_responses",
                2 + responses.size() * CacheResponse::wire_size(), 0);
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;

    ++stats_.cache_response_batches;
    stats_.batched_cache_responses += responses.size();

    // Per-source running MAC over the responder certificates; a Byzantine
    // response in the burst rejects (or falls back) only its own query.
    // All client replies completed by this burst seal into one coalesced
    // record per connection.
    std::set<std::uint32_t> sources_seen;
    ReleasePlan plan;
    for (const CacheResponse& response : responses) {
        const bool first =
            sources_seen.insert(response.responder_replica).second;
        ingest_cache_response(crypto, actions, response, first, &plan);
    }
    flush_releases(crypto, actions, plan);
    // A conflicted burst falls back together: two or more fallbacks from
    // one transition enter the ordering pipeline as ONE pre-formed batch
    // (one Prepare/Commit round) instead of request by request. A single
    // fallback keeps the to_order path, byte-identical to the unbatched
    // handle_cache_response flow.
    if (actions.to_order.size() > 1) {
        ++stats_.fallback_prebatches;
        stats_.prebatched_fallbacks += actions.to_order.size();
        actions.to_order_batch = std::move(actions.to_order);
        actions.to_order.clear();
    }
    return actions;
}

void TroxyEnclave::fast_read_fallback(enclave::CostedCrypto& crypto,
                                      TroxyActions& actions,
                                      std::uint64_t query_id) {
    const auto it = fast_reads_.find(query_id);
    if (it == fast_reads_.end()) return;
    PendingFastRead fast = std::move(it->second);
    fast_reads_.erase(it);

    const hybster::RequestInfo info = classifier_(fast.app_request);
    merge_actions(actions, order_request(crypto, fast.client, fast.conn_slot,
                                         info, fast.app_request));
    actions.completed_fast_reads.push_back(query_id);
}

TroxyActions TroxyEnclave::fast_read_timeout(enclave::CostMeter& meter,
                                             std::uint64_t query_id) {
    gate_.ecall(meter, "fast_read_timeout", 8, 0);
    enclave::CostedCrypto crypto(profile_, meter);
    TroxyActions actions;
    if (fast_reads_.contains(query_id)) {
        ++stats_.fast_read_conflicts;
        monitor_.record(true);
        fast_read_fallback(crypto, actions, query_id);
    }
    return actions;
}

// ------------------------------------------------------------- liveness

TroxyActions TroxyEnclave::retransmit(enclave::CostMeter& meter,
                                      std::uint64_t request_number) {
    gate_.ecall(meter, "retransmit", 8, 0);
    enclave::CostedCrypto crypto(profile_, meter);
    crypto.charge_dispatch();
    TroxyActions actions;

    const auto it = pending_votes_.find(request_number);
    if (it == pending_votes_.end()) return actions;

    // Rebroadcast to every replica: followers forward to the leader and
    // start their progress timers, eventually forcing a view change.
    const Bytes wire =
        net::wrap(net::Channel::Hybster,
                  encode_message(hybster::Message(it->second.request)));
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(config_.n());
         ++r) {
        if (r == replica_id_) continue;
        actions.sends.emplace_back(config_.node_of(r), wire);
    }
    actions.to_order.push_back(it->second.request);
    actions.arm_vote_timers.push_back(request_number);
    return actions;
}

// --------------------------------------------------------------- metrics

TroxyEnclave::Status TroxyEnclave::status() const {
    Status s = stats_;
    s.miss_rate = monitor_.miss_rate();
    s.fast_path_enabled = monitor_.fast_path_enabled();
    s.mode_switches = monitor_.mode_switches();
    s.cache_entries = cache_.entries();
    s.enclave_transitions = gate_.transitions();
    s.pending_votes = pending_votes_.size();
    s.pending_fast_reads = fast_reads_.size();
    for (const auto& [client, connection] : connections_) {
        s.stuck_replies += connection.ready.size();
    }
    return s;
}

void TroxyEnclave::restart() {
    cache_.clear();
    connections_.clear();
    pending_votes_.clear();
    fast_reads_.clear();
    // The votes backing these in-flight markers are gone; a leaked entry
    // would gate fast reads on its key forever.
    pending_write_keys_.clear();
    // The cache is empty, so no key is "invalidated but maybe cached".
    invalidated_unrecached_.clear();
}

}  // namespace troxy::troxy_core
