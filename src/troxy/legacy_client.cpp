#include "troxy/legacy_client.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/outbox.hpp"

namespace troxy::troxy_core {

LegacyClient::LegacyClient(net::Fabric& fabric, sim::Node& node,
                           std::vector<sim::NodeId> servers,
                           std::vector<crypto::X25519Key> pinned_keys,
                           const sim::CostProfile& profile, Options options)
    : fabric_(fabric),
      node_(node),
      servers_(std::move(servers)),
      pinned_keys_(std::move(pinned_keys)),
      profile_(profile),
      options_(options),
      backoff_rng_(fabric.simulator().rng().fork(0x626b6f66ULL ^ node.id())) {
    TROXY_ASSERT(!servers_.empty(), "client needs at least one server");
    TROXY_ASSERT(servers_.size() == pinned_keys_.size(),
                 "one pinned key per server");
}

void LegacyClient::start(std::function<void()> ready) {
    ready_ = std::move(ready);
    connect();
}

void LegacyClient::connect() {
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);

    Writer seed;
    seed.u32(node_.id());
    seed.u64(++handshake_counter_);
    channel_.emplace(pinned_keys_[server_index_], seed.data());
    crypto.charge_dh();
    // Any coalescing buffer belonged to the dead channel; the requests
    // live on in outstanding_ and are re-sent after the handshake.
    send_buffer_.clear();

    outbox.send(servers_[server_index_],
                net::wrap(net::Channel::Client,
                          net::frame_client(net::ClientFrame::Hello,
                                            channel_->client_hello())));
    outbox.flush(meter);
    last_activity_ = fabric_.simulator().now();
    arm_watchdog();
}

void LegacyClient::reconnect() {
    // connect() replaces the channel (fresh handshake state), clears the
    // coalescing buffer and re-arms the watchdog; outstanding_ survives
    // and is replayed once the new session's ServerHello lands.
    connect();
}

void LegacyClient::failover() {
    ++failovers_;
    ++consecutive_failovers_;
    server_index_ = (server_index_ + 1) % servers_.size();

    // The channel died with its server; in-flight requests will be
    // retransmitted on the fresh connection (the service deduplicates at
    // the application level or tolerates re-execution, as with any
    // ordinary web service retry).
    std::deque<Outstanding> retry = std::move(outstanding_);
    outstanding_.clear();
    connect();

    // Re-issue once the new channel is up; queue them now — send() is
    // buffered until establishment.
    for (auto& item : retry) {
        outstanding_.push_back(std::move(item));
    }
}

void LegacyClient::arm_watchdog() {
    const std::uint64_t generation = ++watchdog_generation_;

    // Capped exponential backoff with seeded jitter: the watchdog period
    // grows with every failover that did not yield a reply.
    double period = static_cast<double>(options_.connection_timeout);
    for (std::uint64_t i = 0; i < consecutive_failovers_; ++i) {
        period *= options_.backoff_multiplier;
        if (period >= static_cast<double>(options_.backoff_cap)) break;
    }
    period = std::min(period, static_cast<double>(options_.backoff_cap));
    if (options_.backoff_jitter > 0.0) {
        period *= 1.0 + (backoff_rng_.next_double() * 2.0 - 1.0) *
                            options_.backoff_jitter;
    }
    const auto delay = std::max<sim::Duration>(
        static_cast<sim::Duration>(period), 1);
    current_backoff_ = delay;

    fabric_.simulator().after(delay, [this, generation, delay]() {
        if (generation != watchdog_generation_) return;
        const sim::SimTime idle_since = last_activity_;
        const bool waiting = !outstanding_.empty() || !connected();
        if (waiting &&
            fabric_.simulator().now() - idle_since >= delay) {
            failover();
            return;
        }
        arm_watchdog();
    });
}

void LegacyClient::shutdown() {
    // The object survives (simulator timers hold raw pointers to it);
    // the session does not. The generation bump turns every armed
    // watchdog into a no-op, and outstanding_ dies with the process —
    // whoever owned those requests re-issues them after restart.
    channel_.reset();
    outstanding_.clear();
    send_buffer_.clear();
    ready_ = nullptr;
    ++watchdog_generation_;
    consecutive_failovers_ = 0;
}

void LegacyClient::send_ref(std::shared_ptr<const Bytes> app_request,
                            ReplyCallback callback) {
    if (options_.coalesce_sends) {
        // The coalescing buffer owns its payloads; keep that path
        // byte-identical by copying here (references pay off on the
        // immediate fan-out path, which is where the front uses them).
        send(*app_request, std::move(callback));
        return;
    }
    outstanding_.push_back(
        Outstanding{{}, app_request, std::move(callback)});
    if (!connected()) return;  // flushed after handshake completes

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge(profile_.aead(app_request->size()));
    Writer frame;
    frame.u8(static_cast<std::uint8_t>(net::Channel::Client));
    frame.u8(static_cast<std::uint8_t>(net::ClientFrame::Record));
    channel_->protect_many_into(frame, {ByteView(*app_request)});
    outbox.send(servers_[server_index_], std::move(frame).take());
    outbox.flush(meter);
}

void LegacyClient::send(Bytes app_request, ReplyCallback callback) {
    outstanding_.push_back(
        Outstanding{app_request, nullptr, std::move(callback)});
    if (!connected()) return;  // flushed after handshake completes

    if (options_.coalesce_sends) {
        // Buffer the burst; one end-of-instant flush seals everything
        // issued in this simulation step into a single record.
        send_buffer_.push_back(std::move(app_request));
        if (!send_flush_armed_) {
            send_flush_armed_ = true;
            fabric_.simulator().after(0, [this]() { flush_sends(); });
        }
        return;
    }

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge(profile_.aead(app_request.size()));
    // Gather encoding: envelope, frame header and sealed record build in
    // ONE buffer (the record plaintext is sealed where it was written).
    Writer frame;
    frame.u8(static_cast<std::uint8_t>(net::Channel::Client));
    frame.u8(static_cast<std::uint8_t>(net::ClientFrame::Record));
    channel_->protect_many_into(frame, {ByteView(app_request)});
    outbox.send(servers_[server_index_], std::move(frame).take());
    outbox.flush(meter);
}

void LegacyClient::flush_sends() {
    send_flush_armed_ = false;
    if (send_buffer_.empty()) return;
    if (!connected()) {
        // Reconnect in progress: outstanding_ owns the retransmissions.
        send_buffer_.clear();
        return;
    }

    std::vector<Bytes> burst = std::move(send_buffer_);
    send_buffer_.clear();

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);

    std::size_t total = 0;
    std::vector<ByteView> views;
    views.reserve(burst.size());
    for (const Bytes& request : burst) {
        total += request.size();
        views.emplace_back(request);
    }
    // One AEAD pass and one wire record for the whole burst, gathered
    // into one buffer with the envelope and frame headers.
    crypto.charge(profile_.aead(total));
    Writer frame;
    frame.u8(static_cast<std::uint8_t>(net::Channel::Client));
    frame.u8(static_cast<std::uint8_t>(net::ClientFrame::Record));
    channel_->protect_many_into(frame, views);
    outbox.send(servers_[server_index_], std::move(frame).take());
    outbox.flush(meter);
}

void LegacyClient::on_message(sim::NodeId from, ByteView payload) {
    if (from != servers_[server_index_]) return;  // stale server
    auto frame = net::unframe_client(payload);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    crypto.charge_dispatch();
    last_activity_ = fabric_.simulator().now();

    switch (frame->first) {
        case net::ClientFrame::ServerHello: {
            crypto.charge_dh();
            if (!channel_ || !channel_->finish(frame->second)) break;

            // Flush everything queued while disconnected.
            net::Outbox outbox(fabric_, node_);
            for (const Outstanding& item : outstanding_) {
                crypto.charge(profile_.aead(item.view().size()));
                outbox.send(
                    servers_[server_index_],
                    net::wrap(net::Channel::Client,
                              net::frame_client(net::ClientFrame::Record,
                                                channel_->protect(
                                                    item.view()))));
            }
            if (ready_) {
                outbox.defer(std::exchange(ready_, nullptr));
            }
            outbox.flush(meter);
            return;
        }
        case net::ClientFrame::Record: {
            if (!connected()) break;
            crypto.charge(profile_.aead(frame->second.size()));
            auto replies = channel_->unprotect(frame->second);
            if (replies.empty()) break;  // buffered, replayed or tampered
            consecutive_failovers_ = 0;  // the cluster answered: reset

            std::vector<std::pair<ReplyCallback, Bytes>> completions;
            for (Bytes& reply : replies) {
                if (outstanding_.empty()) break;
                completions.emplace_back(
                    std::move(outstanding_.front().callback),
                    std::move(reply));
                outstanding_.pop_front();
            }
            node_.exec(meter.take(),
                       [completions = std::move(completions)]() mutable {
                           for (auto& [callback, reply] : completions) {
                               if (callback) callback(std::move(reply));
                           }
                       });
            return;
        }
        case net::ClientFrame::Hello:
            break;
    }
    node_.charge(meter.take());
}

}  // namespace troxy::troxy_core
