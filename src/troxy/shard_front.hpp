// Sharded Troxy front: one transparent endpoint over S replica groups.
//
// The front terminates ordinary legacy secure channels exactly like a
// contact Troxy — the client does a 1-RTT handshake against one pinned
// server key and speaks its unmodified application protocol — and hides
// a partitioned deployment behind that single endpoint. Every decrypted
// request is classified (the same Classifier the Troxy enclave uses),
// routed by the ShardMap on its state_key, and forwarded over a
// per-shard upstream session: the front runs one LegacyClient per shard
// whose failover list is the shard's whole replica group, so
// shard-internal faults (leader crash, view change, contact failover)
// are absorbed by the machinery that already exists for unsharded
// clients. Replies are matched back to the originating downstream
// connection and released strictly in request order, preserving the
// stream semantics a legacy client relies on.
//
// Reads ride each shard's cache-quorum fast path untouched — the front
// just picks the shard whose Troxy cache slice owns the key. Writes
// whose classifier closure (extra_keys) spans a second shard take the
// cross-shard lane: a pipelined commit engine admits any number of
// NON-OVERLAPPING cross-shard commits concurrently through a per-key
// lock table (keys = the classifier's state_key + extra_keys closure,
// canonicalized by sorting). Each admitted commit independently walks
// its ordered shard sequence — full request to every touched shard in
// ascending shard order, one shard at a time — and the owner shard's
// reply is released only after the last shard committed, keeping the
// write visible-atomic to its client. Conflicting commits queue only
// behind the specific keys they share: admission enqueues a commit on
// every key's FIFO atomically, so for any two conflicting commits the
// earlier-admitted one is ahead in EVERY shared queue — waits-for edges
// always point from younger to older, the waits-for graph is acyclic,
// and the engine is deadlock-free by construction. Per-connection
// replies still release strictly in request-slot order, so pipelining
// commits never reorders a client's stream. With cross_pipeline_depth
// = 1 the engine degenerates to the serialized single-commit-in-flight
// lane (global FIFO, same dispatch instants), replaying the pre-
// pipelining configuration bit-identically.
//
// The front holds no protocol state — no log, no votes, no service
// state — so the tier replicates freely (SplitBFT's untrusted-router
// argument): a deployment runs F independent fronts over the same S
// groups with consistent-hash client assignment (FrontMap). Fronts
// share nothing; cross-front per-key ordering rides entirely on each
// key's owner shard totally ordering its writers in one log. A crashed
// front loses only connection state and in-flight forwards — its
// clients fail over to the next front on the ring and retransmit, the
// same at-least-once retry any ordinary web service relies on.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "crypto/x25519.hpp"
#include "net/fabric.hpp"
#include "net/secure_channel.hpp"
#include "sim/cost.hpp"
#include "sim/time.hpp"
#include "troxy/enclave.hpp"
#include "troxy/legacy_client.hpp"
#include "troxy/shard_router.hpp"

namespace troxy::troxy_core {

/// Per-key FIFO lock table for pipelined cross-shard commits.
///
/// A commit is enqueued on every key of its (canonicalized) lock set in
/// one atomic admission; it is runnable when it heads every one of its
/// queues and holds its keys until released. Because admission order is
/// a total order and every shared queue preserves it, a commit can only
/// ever wait on commits admitted before it — the waits-for graph is
/// acyclic and per-key dispatch order equals admission order.
class CrossLockTable {
  public:
    using CommitId = std::uint64_t;

    struct Admission {
        bool runnable = false;
        /// Keys whose queues already had a holder — what this commit is
        /// waiting behind (empty iff runnable).
        std::vector<std::string> blocked_on;
    };

    /// Enqueues `id` on every key's FIFO. `keys` must be canonical
    /// (sorted, deduplicated) and non-empty; ids must be admitted in
    /// strictly increasing order (the admission total order).
    Admission admit(CommitId id, const std::vector<std::string>& keys);

    /// Completes `id` (must be runnable): pops it from its queues and
    /// returns every commit that became runnable as a result, in
    /// ascending id order.
    std::vector<CommitId> release(CommitId id);

    [[nodiscard]] bool is_runnable(CommitId id) const;
    /// Live commits (admitted, not yet released).
    [[nodiscard]] std::size_t size() const noexcept {
        return keysets_.size();
    }
    [[nodiscard]] std::size_t keys_locked() const noexcept {
        return queues_.size();
    }
    void clear() {
        queues_.clear();
        keysets_.clear();
    }

  private:
    std::map<std::string, std::deque<CommitId>> queues_;
    std::map<CommitId, std::vector<std::string>> keysets_;
};

class ShardFrontHost {
  public:
    /// One shard's replica group as the front sees it: contact/failover
    /// node list plus the pinned channel key per replica.
    struct Backend {
        std::vector<sim::NodeId> servers;
        std::vector<crypto::X25519Key> pinned_keys;
    };

    struct Options {
        /// Upstream session knobs (per-shard LegacyClients). The tighter
        /// the timeout, the faster the front follows a shard's failover.
        LegacyClient::Options upstream;
        /// Cross-shard commits allowed in flight concurrently: 0 =
        /// unbounded (the pipelined lock-table engine), 1 = the
        /// serialized single-commit lane (bit-identical replay of the
        /// pre-pipelining flow), k = bounded pipelining.
        std::size_t cross_pipeline_depth = 0;
    };

    struct ShardStats {
        std::uint64_t forwarded = 0;  // requests routed to this shard
        std::uint64_t replies = 0;    // shard-local replies released
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        /// Cross-shard commits this shard participated in.
        std::uint64_t cross_participations = 0;
    };

    struct Status {
        std::uint64_t requests = 0;           // classified + routed
        std::uint64_t released = 0;           // replies sent downstream
        std::uint64_t cross_shard_commits = 0;
        std::uint64_t cross_queue_peak = 0;   // live-commit high-water
        std::uint64_t cross_inflight_peak = 0;  // concurrent dispatches
        /// Commits that queued behind at least one locked key.
        std::uint64_t cross_lock_waits = 0;
        double cross_lock_wait_ms_total = 0.0;  // admission → dispatch
        /// End-to-end cross-commit latency (admission → owner-reply
        /// release), from every completed commit.
        double cross_p50_ms = 0.0;
        double cross_p99_ms = 0.0;
        /// Lock-wait count per key, most contended first (keys with at
        /// least one wait only).
        std::vector<std::pair<std::string, std::uint64_t>> contended_keys;
        std::uint64_t connections = 0;        // downstream channels accepted
        std::uint64_t upstream_failovers = 0; // sum over shard sessions
        int router_fanout = 0;                // upstream sessions (== S)
        std::vector<ShardStats> shards;
    };

    ShardFrontHost(net::Fabric& fabric, sim::Node& node, ShardMap map,
                   std::vector<Backend> backends,
                   crypto::X25519Keypair channel_identity,
                   Classifier classifier, const sim::CostProfile& profile,
                   Options options);

    /// Registers the fabric handlers (downstream client frames and
    /// upstream shard traffic share the front's node).
    void attach();

    /// Opens the S upstream sessions. Requests arriving before a shard's
    /// handshake completes queue inside that shard's LegacyClient.
    void start();

    /// Front crash: the process stops receiving (fabric detach), every
    /// downstream connection, in-flight forward and queued cross-shard
    /// commit dies. The shards are untouched — requests already on the
    /// wire may still execute (ordinary at-least-once exposure); clients
    /// fail over to another front and retransmit.
    void crash();
    /// Brings a crashed front back: re-attaches and opens fresh upstream
    /// sessions. Downstream clients re-handshake on contact.
    void restart();
    [[nodiscard]] bool crashed() const noexcept { return crashed_; }
    [[nodiscard]] std::uint64_t restarts() const noexcept {
        return restarts_;
    }

    [[nodiscard]] Status status() const;
    /// Raw cross-commit latency samples (admission → release), for
    /// merging percentiles across fronts.
    [[nodiscard]] const std::vector<sim::Duration>& cross_latencies()
        const noexcept {
        return cross_latencies_;
    }
    [[nodiscard]] sim::Node& node() noexcept { return node_; }
    [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
    [[nodiscard]] LegacyClient& upstream(int shard) {
        return *upstreams_[static_cast<std::size_t>(shard)];
    }

  private:
    /// Downstream secure-channel state plus the in-order release window.
    /// Slots are assigned at classification time and released strictly
    /// in slot order, so pipelined replies keep the request order the
    /// legacy client's FIFO matching expects even when shards answer
    /// out of order. `generation` fences stale upstream completions
    /// after a client re-handshake resets the window.
    struct Connection {
        explicit Connection(const crypto::X25519Keypair& identity)
            : channel(identity) {}
        net::SecureChannelServer channel;
        std::uint64_t generation = 0;
        std::uint64_t next_assign = 0;
        std::uint64_t next_release = 0;
        std::map<std::uint64_t, Bytes> ready;
    };

    /// One live cross-shard commit: admitted into the lock table, then
    /// dispatched through its ordered two-shard (or N-shard) sequence.
    struct CrossCommit {
        CrossLockTable::CommitId id = 0;
        sim::NodeId client = 0;
        std::uint64_t generation = 0;
        std::uint64_t slot = 0;
        /// Refcounted request payload: one buffer serves every target
        /// shard's forward (and retransmissions) without a per-shard
        /// copy.
        std::shared_ptr<const Bytes> request;
        std::vector<int> shards;  // ascending; forwarded one at a time
        std::vector<std::string> keys;  // canonical lock set
        int owner = 0;            // shard whose reply the client sees
        std::size_t next = 0;
        Bytes owner_reply;
        sim::SimTime admitted_at = 0;
        bool waited = false;      // admission found a key locked
    };

    void on_message(sim::NodeId from, Bytes message);
    void on_chain(sim::NodeId from, sim::FragmentChain chain);
    void on_client_frame(sim::NodeId from, ByteView payload);
    void handle_request(sim::NodeId from, Connection& conn,
                        Bytes app_request);
    void forward_single(sim::NodeId from, Connection& conn, int shard,
                        bool is_read, Bytes app_request);
    void enqueue_cross(sim::NodeId from, Connection& conn,
                       std::vector<int> shards, int owner,
                       Bytes app_request, const hybster::RequestInfo& info);
    /// Dispatches runnable commits while the depth budget allows, in
    /// admission order (lowest id first).
    void pump_cross();
    void send_cross_step(CrossCommit& commit);
    void advance_cross(CrossLockTable::CommitId id, int shard, Bytes reply);
    /// Banks `reply` under (client, slot) and seals every consecutively
    /// ready reply into downstream records.
    void deliver_reply(sim::NodeId client, std::uint64_t generation,
                       std::uint64_t slot, Bytes reply);

    net::Fabric& fabric_;
    sim::Node& node_;
    ShardMap map_;
    crypto::X25519Keypair identity_;
    Classifier classifier_;
    const sim::CostProfile& profile_;
    Options options_;

    std::vector<std::unique_ptr<LegacyClient>> upstreams_;
    std::map<sim::NodeId, int> server_to_shard_;

    std::map<sim::NodeId, Connection> connections_;
    std::uint64_t handshake_counter_ = 0;
    std::uint64_t connection_generation_ = 0;

    // Pipelined cross-shard commit engine.
    CrossLockTable locks_;
    std::map<CrossLockTable::CommitId, CrossCommit> commits_;
    std::set<CrossLockTable::CommitId> ready_;  // runnable, undispatched
    std::size_t cross_inflight_ = 0;
    CrossLockTable::CommitId next_commit_id_ = 0;

    bool crashed_ = false;
    std::uint64_t restarts_ = 0;

    std::uint64_t requests_ = 0;
    std::uint64_t released_ = 0;
    std::uint64_t cross_commits_ = 0;
    std::uint64_t cross_queue_peak_ = 0;
    std::uint64_t cross_inflight_peak_ = 0;
    std::uint64_t cross_lock_waits_ = 0;
    sim::Duration cross_lock_wait_total_ = 0;
    std::map<std::string, std::uint64_t> lock_waits_by_key_;
    std::vector<sim::Duration> cross_latencies_;
    std::uint64_t connections_accepted_ = 0;
    std::vector<ShardStats> shard_stats_;
};

}  // namespace troxy::troxy_core
