// Sharded Troxy front: one transparent endpoint over S replica groups.
//
// The front terminates ordinary legacy secure channels exactly like a
// contact Troxy — the client does a 1-RTT handshake against one pinned
// server key and speaks its unmodified application protocol — and hides
// a partitioned deployment behind that single endpoint. Every decrypted
// request is classified (the same Classifier the Troxy enclave uses),
// routed by the ShardMap on its state_key, and forwarded over a
// per-shard upstream session: the front runs one LegacyClient per shard
// whose failover list is the shard's whole replica group, so
// shard-internal faults (leader crash, view change, contact failover)
// are absorbed by the machinery that already exists for unsharded
// clients. Replies are matched back to the originating downstream
// connection and released strictly in request order, preserving the
// stream semantics a legacy client relies on.
//
// Reads ride each shard's cache-quorum fast path untouched — the front
// just picks the shard whose Troxy cache slice owns the key. Writes
// whose classifier closure (extra_keys) spans a second shard take the
// cross-shard lane: a simple ordered commit that forwards the full
// request to every touched shard in ascending shard order, one shard at
// a time, and releases the owner shard's reply only after the last
// shard committed. The lane is serialized (one cross-shard commit in
// flight at a time), so every shard observes cross-shard writes in one
// global order — two-shard commits can never interleave into a cycle —
// while shard-local traffic flows around it unimpeded.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "crypto/x25519.hpp"
#include "net/fabric.hpp"
#include "net/secure_channel.hpp"
#include "sim/cost.hpp"
#include "troxy/enclave.hpp"
#include "troxy/legacy_client.hpp"
#include "troxy/shard_router.hpp"

namespace troxy::troxy_core {

class ShardFrontHost {
  public:
    /// One shard's replica group as the front sees it: contact/failover
    /// node list plus the pinned channel key per replica.
    struct Backend {
        std::vector<sim::NodeId> servers;
        std::vector<crypto::X25519Key> pinned_keys;
    };

    struct Options {
        /// Upstream session knobs (per-shard LegacyClients). The tighter
        /// the timeout, the faster the front follows a shard's failover.
        LegacyClient::Options upstream;
    };

    struct ShardStats {
        std::uint64_t forwarded = 0;  // requests routed to this shard
        std::uint64_t replies = 0;    // shard-local replies released
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        /// Cross-shard commits this shard participated in.
        std::uint64_t cross_participations = 0;
    };

    struct Status {
        std::uint64_t requests = 0;           // classified + routed
        std::uint64_t released = 0;           // replies sent downstream
        std::uint64_t cross_shard_commits = 0;
        std::uint64_t cross_queue_peak = 0;   // lane backlog high-water
        std::uint64_t connections = 0;        // downstream channels accepted
        std::uint64_t upstream_failovers = 0; // sum over shard sessions
        int router_fanout = 0;                // upstream sessions (== S)
        std::vector<ShardStats> shards;
    };

    ShardFrontHost(net::Fabric& fabric, sim::Node& node, ShardMap map,
                   std::vector<Backend> backends,
                   crypto::X25519Keypair channel_identity,
                   Classifier classifier, const sim::CostProfile& profile,
                   Options options);

    /// Registers the fabric handlers (downstream client frames and
    /// upstream shard traffic share the front's node).
    void attach();

    /// Opens the S upstream sessions. Requests arriving before a shard's
    /// handshake completes queue inside that shard's LegacyClient.
    void start();

    [[nodiscard]] Status status() const;
    [[nodiscard]] sim::Node& node() noexcept { return node_; }
    [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
    [[nodiscard]] LegacyClient& upstream(int shard) {
        return *upstreams_[static_cast<std::size_t>(shard)];
    }

  private:
    /// Downstream secure-channel state plus the in-order release window.
    /// Slots are assigned at classification time and released strictly
    /// in slot order, so pipelined replies keep the request order the
    /// legacy client's FIFO matching expects even when shards answer
    /// out of order. `generation` fences stale upstream completions
    /// after a client re-handshake resets the window.
    struct Connection {
        explicit Connection(const crypto::X25519Keypair& identity)
            : channel(identity) {}
        net::SecureChannelServer channel;
        std::uint64_t generation = 0;
        std::uint64_t next_assign = 0;
        std::uint64_t next_release = 0;
        std::map<std::uint64_t, Bytes> ready;
    };

    /// One queued cross-shard commit on the serialized lane.
    struct CrossCommit {
        sim::NodeId client = 0;
        std::uint64_t generation = 0;
        std::uint64_t slot = 0;
        Bytes request;
        std::vector<int> shards;  // ascending; forwarded one at a time
        int owner = 0;            // shard whose reply the client sees
        std::size_t next = 0;
        Bytes owner_reply;
    };

    void on_message(sim::NodeId from, Bytes message);
    void on_chain(sim::NodeId from, sim::FragmentChain chain);
    void on_client_frame(sim::NodeId from, ByteView payload);
    void handle_request(sim::NodeId from, Connection& conn,
                        Bytes app_request);
    void forward_single(sim::NodeId from, Connection& conn, int shard,
                        bool is_read, Bytes app_request);
    void enqueue_cross(sim::NodeId from, Connection& conn,
                       std::vector<int> shards, int owner,
                       Bytes app_request);
    void send_cross_step();
    void advance_cross(int shard, Bytes reply);
    /// Banks `reply` under (client, slot) and seals every consecutively
    /// ready reply into downstream records.
    void deliver_reply(sim::NodeId client, std::uint64_t generation,
                       std::uint64_t slot, Bytes reply);

    net::Fabric& fabric_;
    sim::Node& node_;
    ShardMap map_;
    crypto::X25519Keypair identity_;
    Classifier classifier_;
    const sim::CostProfile& profile_;
    Options options_;

    std::vector<std::unique_ptr<LegacyClient>> upstreams_;
    std::map<sim::NodeId, int> server_to_shard_;

    std::map<sim::NodeId, Connection> connections_;
    std::uint64_t handshake_counter_ = 0;
    std::uint64_t connection_generation_ = 0;

    std::deque<CrossCommit> cross_queue_;
    bool cross_active_ = false;

    std::uint64_t requests_ = 0;
    std::uint64_t released_ = 0;
    std::uint64_t cross_commits_ = 0;
    std::uint64_t cross_queue_peak_ = 0;
    std::uint64_t connections_accepted_ = 0;
    std::vector<ShardStats> shard_stats_;
};

}  // namespace troxy::troxy_core
