#include "troxy/cache_messages.hpp"

namespace troxy::troxy_core {

namespace {

void put_digest(Writer& w, const crypto::Sha256Digest& d) { w.raw(d); }

crypto::Sha256Digest get_digest(Reader& r) {
    const Bytes raw = r.raw(crypto::kSha256DigestSize);
    crypto::Sha256Digest d;
    std::copy(raw.begin(), raw.end(), d.begin());
    return d;
}

enclave::Certificate get_cert(Reader& r) {
    const Bytes raw = r.raw(sizeof(enclave::Certificate));
    enclave::Certificate cert;
    std::copy(raw.begin(), raw.end(), cert.begin());
    return cert;
}

}  // namespace

Bytes CacheQuery::certified_view() const {
    Writer w;
    w.reserve(4 + 8 + 4 + state_key.size() + crypto::kSha256DigestSize);
    w.u32(requester);
    w.u64(query_id);
    w.str(state_key);
    put_digest(w, request_digest);
    return std::move(w).take();
}

void CacheQuery::encode(Writer& w) const {
    w.reserve(4 + 8 + 4 + state_key.size() + crypto::kSha256DigestSize +
              sizeof(enclave::Certificate));
    w.u32(requester);
    w.u64(query_id);
    w.str(state_key);
    put_digest(w, request_digest);
    w.raw(cert);
}

CacheQuery CacheQuery::decode(Reader& r) {
    CacheQuery q;
    q.requester = r.u32();
    q.query_id = r.u64();
    q.state_key = r.str();
    q.request_digest = get_digest(r);
    q.cert = get_cert(r);
    return q;
}

Bytes CacheResponse::certified_view() const {
    Writer w;
    w.reserve(4 + 4 + 8 + 1 + 2 * crypto::kSha256DigestSize);
    w.u32(responder);
    w.u32(responder_replica);
    w.u64(query_id);
    w.u8(has_entry ? 1 : 0);
    put_digest(w, request_digest);
    put_digest(w, result_digest);
    return std::move(w).take();
}

void CacheResponse::encode(Writer& w) const {
    w.reserve(4 + 4 + 8 + 1 + 2 * crypto::kSha256DigestSize +
              sizeof(enclave::Certificate));
    w.u32(responder);
    w.u32(responder_replica);
    w.u64(query_id);
    w.u8(has_entry ? 1 : 0);
    put_digest(w, request_digest);
    put_digest(w, result_digest);
    w.raw(cert);
}

CacheResponse CacheResponse::decode(Reader& r) {
    CacheResponse resp;
    resp.responder = r.u32();
    resp.responder_replica = r.u32();
    resp.query_id = r.u64();
    resp.has_entry = r.u8() != 0;
    resp.request_digest = get_digest(r);
    resp.result_digest = get_digest(r);
    resp.cert = get_cert(r);
    return resp;
}

void CacheQueryBatch::encode(Writer& w) const {
    w.u16(static_cast<std::uint16_t>(queries.size()));
    for (const CacheQuery& q : queries) q.encode(w);
}

CacheQueryBatch CacheQueryBatch::decode(Reader& r) {
    CacheQueryBatch batch;
    const std::uint16_t count = r.u16();
    batch.queries.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        batch.queries.push_back(CacheQuery::decode(r));
    }
    return batch;
}

void CacheResponseBatch::encode(Writer& w) const {
    w.reserve(2 + responses.size() * CacheResponse::wire_size());
    w.u16(static_cast<std::uint16_t>(responses.size()));
    for (const CacheResponse& resp : responses) resp.encode(w);
}

CacheResponseBatch CacheResponseBatch::decode(Reader& r) {
    CacheResponseBatch batch;
    const std::uint16_t count = r.u16();
    batch.responses.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        batch.responses.push_back(CacheResponse::decode(r));
    }
    return batch;
}

Bytes encode_cache_message(const CacheMessage& message) {
    Writer w;
    if (const auto* query = std::get_if<CacheQuery>(&message)) {
        w.u8(1);
        query->encode(w);
    } else if (const auto* response = std::get_if<CacheResponse>(&message)) {
        w.u8(2);
        response->encode(w);
    } else if (const auto* queries = std::get_if<CacheQueryBatch>(&message)) {
        w.u8(3);
        queries->encode(w);
    } else {
        w.u8(4);
        std::get<CacheResponseBatch>(message).encode(w);
    }
    return std::move(w).take();
}

std::optional<CacheMessage> decode_cache_message(ByteView data) {
    try {
        Reader r(data);
        const std::uint8_t tag = r.u8();
        CacheMessage out = [&]() -> CacheMessage {
            if (tag == 1) return CacheQuery::decode(r);
            if (tag == 2) return CacheResponse::decode(r);
            if (tag == 3) return CacheQueryBatch::decode(r);
            if (tag == 4) return CacheResponseBatch::decode(r);
            throw DecodeError("unknown cache message tag");
        }();
        r.expect_done();
        return out;
    } catch (const DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace troxy::troxy_core
