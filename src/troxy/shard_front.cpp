#include "troxy/shard_front.hpp"

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/fragment.hpp"
#include "net/outbox.hpp"

namespace troxy::troxy_core {

ShardFrontHost::ShardFrontHost(net::Fabric& fabric, sim::Node& node,
                               ShardMap map, std::vector<Backend> backends,
                               crypto::X25519Keypair channel_identity,
                               Classifier classifier,
                               const sim::CostProfile& profile,
                               Options options)
    : fabric_(fabric),
      node_(node),
      map_(std::move(map)),
      identity_(channel_identity),
      classifier_(std::move(classifier)),
      profile_(profile),
      options_(options) {
    map_.validate();
    TROXY_ASSERT(static_cast<int>(backends.size()) == map_.shard_count(),
                 "one backend replica group per shard");
    shard_stats_.resize(backends.size());
    upstreams_.reserve(backends.size());
    for (std::size_t s = 0; s < backends.size(); ++s) {
        for (const sim::NodeId server : backends[s].servers) {
            server_to_shard_[server] = static_cast<int>(s);
        }
        upstreams_.push_back(std::make_unique<LegacyClient>(
            fabric_, node_, std::move(backends[s].servers),
            std::move(backends[s].pinned_keys), profile_,
            options_.upstream));
    }
}

void ShardFrontHost::attach() {
    fabric_.attach(node_.id(), [this](sim::NodeId from, Bytes message) {
        on_message(from, std::move(message));
    });
    fabric_.attach_chain(
        node_.id(), [this](sim::NodeId from, sim::FragmentChain chain) {
            on_chain(from, std::move(chain));
        });
}

void ShardFrontHost::start() {
    for (auto& upstream : upstreams_) {
        upstream->start(nullptr);
    }
}

void ShardFrontHost::on_chain(sim::NodeId from, sim::FragmentChain chain) {
    sim::Network& network = fabric_.network();
    auto messages = net::take_bundle_messages(std::move(chain));
    if (messages) {
        network.recycle_chain(std::move(chain));
        for (Bytes& m : *messages) {
            on_message(from, std::move(m));
        }
        return;
    }
    network.count_materialization();
    Bytes flat = chain.materialize(&network.pool());
    network.recycle_chain(std::move(chain));
    on_message(from, std::move(flat));
}

void ShardFrontHost::on_message(sim::NodeId from, Bytes message) {
    auto unwrapped = net::unwrap_view(message);
    if (unwrapped) {
        const auto it = server_to_shard_.find(from);
        if (it != server_to_shard_.end()) {
            // Upstream traffic from a shard replica; a coalescing host
            // may ship several client frames as one Bundle.
            LegacyClient& upstream = *upstreams_[
                static_cast<std::size_t>(it->second)];
            if (unwrapped->first == net::Channel::Bundle) {
                auto inner = net::unbundle(unwrapped->second);
                if (inner) {
                    for (const Bytes& m : *inner) {
                        auto u = net::unwrap_view(m);
                        if (u && u->first == net::Channel::Client) {
                            upstream.on_message(from, u->second);
                        }
                    }
                }
            } else if (unwrapped->first == net::Channel::Client) {
                upstream.on_message(from, unwrapped->second);
            }
        } else if (unwrapped->first == net::Channel::Client) {
            on_client_frame(from, unwrapped->second);
        }
    }
    fabric_.network().recycle(std::move(message));
}

void ShardFrontHost::on_client_frame(sim::NodeId from, ByteView payload) {
    auto frame = net::unframe_client(payload);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge_dispatch();

    switch (frame->first) {
        case net::ClientFrame::Hello: {
            auto [it, inserted] = connections_.try_emplace(from, identity_);
            if (!inserted) {
                // Fresh session from the same node: the old release
                // window dies with the old channel; in-flight upstream
                // completions are fenced off by the generation bump.
                connections_.erase(it);
                it = connections_.try_emplace(from, identity_).first;
            }
            it->second.generation = ++connection_generation_;
            Writer seed;
            seed.u32(node_.id());
            seed.u64(++handshake_counter_);
            auto hello =
                it->second.channel.accept(crypto, frame->second,
                                          seed.data());
            if (hello) {
                ++connections_accepted_;
                outbox.send(from,
                            net::wrap(net::Channel::Client,
                                      net::frame_client(
                                          net::ClientFrame::ServerHello,
                                          *hello)));
            } else {
                connections_.erase(from);
            }
            break;
        }
        case net::ClientFrame::Record: {
            const auto it = connections_.find(from);
            if (it == connections_.end() ||
                !it->second.channel.established()) {
                break;
            }
            crypto.charge(profile_.aead(frame->second.size()));
            for (Bytes& app_request :
                 it->second.channel.unprotect(frame->second)) {
                handle_request(from, it->second, std::move(app_request));
            }
            break;
        }
        case net::ClientFrame::ServerHello:
            break;
    }
    outbox.flush(meter);
}

void ShardFrontHost::handle_request(sim::NodeId from, Connection& conn,
                                    Bytes app_request) {
    const hybster::RequestInfo info = classifier_(app_request);
    ++requests_;
    const int owner = map_.shard_of(info.state_key);
    if (info.is_read) {
        // Reads ride the owner shard's cache-quorum path; the closure is
        // irrelevant (nothing is written).
        forward_single(from, conn, owner, /*is_read=*/true,
                       std::move(app_request));
        return;
    }
    std::vector<int> shards = map_.shards_of(info);
    if (shards.size() == 1) {
        forward_single(from, conn, owner, /*is_read=*/false,
                       std::move(app_request));
        return;
    }
    enqueue_cross(from, conn, std::move(shards), owner,
                  std::move(app_request));
}

void ShardFrontHost::forward_single(sim::NodeId from, Connection& conn,
                                    int shard, bool is_read,
                                    Bytes app_request) {
    ShardStats& stats = shard_stats_[static_cast<std::size_t>(shard)];
    ++stats.forwarded;
    if (is_read) {
        ++stats.reads;
    } else {
        ++stats.writes;
    }
    const std::uint64_t generation = conn.generation;
    const std::uint64_t slot = conn.next_assign++;
    upstreams_[static_cast<std::size_t>(shard)]->send(
        std::move(app_request),
        [this, from, generation, slot, shard](Bytes reply) {
            ++shard_stats_[static_cast<std::size_t>(shard)].replies;
            deliver_reply(from, generation, slot, std::move(reply));
        });
}

void ShardFrontHost::enqueue_cross(sim::NodeId from, Connection& conn,
                                   std::vector<int> shards, int owner,
                                   Bytes app_request) {
    for (const int s : shards) {
        ShardStats& stats = shard_stats_[static_cast<std::size_t>(s)];
        ++stats.forwarded;
        ++stats.writes;
        ++stats.cross_participations;
    }
    CrossCommit commit;
    commit.client = from;
    commit.generation = conn.generation;
    commit.slot = conn.next_assign++;
    commit.request = std::move(app_request);
    commit.shards = std::move(shards);
    commit.owner = owner;
    cross_queue_.push_back(std::move(commit));
    cross_queue_peak_ =
        std::max<std::uint64_t>(cross_queue_peak_, cross_queue_.size());
    if (!cross_active_) {
        cross_active_ = true;
        send_cross_step();
    }
}

void ShardFrontHost::send_cross_step() {
    CrossCommit& commit = cross_queue_.front();
    const int shard = commit.shards[commit.next];
    // The full request goes to every touched shard: each shard's service
    // executes it against the keys it owns, so the owner of every key in
    // the closure sees the write in its ordered log.
    Bytes request = commit.request;
    upstreams_[static_cast<std::size_t>(shard)]->send(
        std::move(request),
        [this, shard](Bytes reply) { advance_cross(shard, std::move(reply)); });
}

void ShardFrontHost::advance_cross(int shard, Bytes reply) {
    TROXY_ASSERT(!cross_queue_.empty(), "cross-shard lane out of sync");
    CrossCommit& commit = cross_queue_.front();
    if (shard == commit.owner) {
        commit.owner_reply = std::move(reply);
    }
    ++commit.next;
    if (commit.next < commit.shards.size()) {
        send_cross_step();
        return;
    }
    // Every shard committed: release the owner's reply. Releasing only
    // now is what makes the write visible-atomic to this client — a
    // follow-up read of any touched key (routed to that key's owner
    // shard) lands after that shard's commit.
    ++cross_commits_;
    CrossCommit done = std::move(cross_queue_.front());
    cross_queue_.pop_front();
    deliver_reply(done.client, done.generation, done.slot,
                  std::move(done.owner_reply));
    if (cross_queue_.empty()) {
        cross_active_ = false;
    } else {
        send_cross_step();
    }
}

void ShardFrontHost::deliver_reply(sim::NodeId client,
                                   std::uint64_t generation,
                                   std::uint64_t slot, Bytes reply) {
    const auto it = connections_.find(client);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.generation != generation) return;  // pre-reconnect straggler
    conn.ready.emplace(slot, std::move(reply));

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    auto next = conn.ready.find(conn.next_release);
    while (next != conn.ready.end()) {
        crypto.charge(profile_.aead(next->second.size()));
        outbox.send(client,
                    net::wrap(net::Channel::Client,
                              net::frame_client(
                                  net::ClientFrame::Record,
                                  conn.channel.protect(next->second))));
        ++released_;
        conn.ready.erase(next);
        next = conn.ready.find(++conn.next_release);
    }
    outbox.flush(meter);
}

ShardFrontHost::Status ShardFrontHost::status() const {
    Status status;
    status.requests = requests_;
    status.released = released_;
    status.cross_shard_commits = cross_commits_;
    status.cross_queue_peak = cross_queue_peak_;
    status.connections = connections_accepted_;
    status.router_fanout = static_cast<int>(upstreams_.size());
    for (const auto& upstream : upstreams_) {
        status.upstream_failovers += upstream->failovers();
    }
    status.shards = shard_stats_;
    return status;
}

}  // namespace troxy::troxy_core
