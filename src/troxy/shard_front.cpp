#include "troxy/shard_front.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/fragment.hpp"
#include "net/outbox.hpp"

namespace troxy::troxy_core {

CrossLockTable::Admission CrossLockTable::admit(
    CommitId id, const std::vector<std::string>& keys) {
    TROXY_ASSERT(!keys.empty(), "a commit must lock at least one key");
    TROXY_ASSERT(keysets_.find(id) == keysets_.end(),
                 "commit id admitted twice");
    Admission admission;
    for (const std::string& key : keys) {
        std::deque<CommitId>& queue = queues_[key];
        if (!queue.empty()) admission.blocked_on.push_back(key);
        queue.push_back(id);
    }
    keysets_.emplace(id, keys);
    admission.runnable = admission.blocked_on.empty();
    return admission;
}

bool CrossLockTable::is_runnable(CommitId id) const {
    const auto it = keysets_.find(id);
    TROXY_ASSERT(it != keysets_.end(), "unknown commit id");
    for (const std::string& key : it->second) {
        const auto queue = queues_.find(key);
        if (queue == queues_.end() || queue->second.front() != id) {
            return false;
        }
    }
    return true;
}

std::vector<CrossLockTable::CommitId> CrossLockTable::release(CommitId id) {
    const auto it = keysets_.find(id);
    TROXY_ASSERT(it != keysets_.end(), "releasing unknown commit id");
    // std::set: successors surface deduplicated and in ascending id
    // order, matching the admission total order.
    std::set<CommitId> successors;
    for (const std::string& key : it->second) {
        const auto queue = queues_.find(key);
        TROXY_ASSERT(queue != queues_.end() &&
                         !queue->second.empty() &&
                         queue->second.front() == id,
                     "released commit must head every one of its queues");
        queue->second.pop_front();
        if (queue->second.empty()) {
            queues_.erase(queue);
        } else {
            successors.insert(queue->second.front());
        }
    }
    keysets_.erase(it);

    std::vector<CommitId> runnable;
    for (const CommitId successor : successors) {
        if (is_runnable(successor)) runnable.push_back(successor);
    }
    return runnable;
}

ShardFrontHost::ShardFrontHost(net::Fabric& fabric, sim::Node& node,
                               ShardMap map, std::vector<Backend> backends,
                               crypto::X25519Keypair channel_identity,
                               Classifier classifier,
                               const sim::CostProfile& profile,
                               Options options)
    : fabric_(fabric),
      node_(node),
      map_(std::move(map)),
      identity_(channel_identity),
      classifier_(std::move(classifier)),
      profile_(profile),
      options_(options) {
    map_.validate();
    TROXY_ASSERT(static_cast<int>(backends.size()) == map_.shard_count(),
                 "one backend replica group per shard");
    shard_stats_.resize(backends.size());
    upstreams_.reserve(backends.size());
    for (std::size_t s = 0; s < backends.size(); ++s) {
        for (const sim::NodeId server : backends[s].servers) {
            server_to_shard_[server] = static_cast<int>(s);
        }
        upstreams_.push_back(std::make_unique<LegacyClient>(
            fabric_, node_, std::move(backends[s].servers),
            std::move(backends[s].pinned_keys), profile_,
            options_.upstream));
    }
}

void ShardFrontHost::attach() {
    fabric_.attach(node_.id(), [this](sim::NodeId from, Bytes message) {
        on_message(from, std::move(message));
    });
    fabric_.attach_chain(
        node_.id(), [this](sim::NodeId from, sim::FragmentChain chain) {
            on_chain(from, std::move(chain));
        });
}

void ShardFrontHost::start() {
    for (auto& upstream : upstreams_) {
        upstream->start(nullptr);
    }
}

void ShardFrontHost::crash() {
    TROXY_ASSERT(!crashed_, "front already crashed");
    crashed_ = true;
    // The process stops receiving; everything volatile dies with it.
    // Upstream LegacyClients go dormant instead of being destroyed —
    // their armed watchdog timers hold raw pointers into the objects and
    // are fenced off by shutdown()'s generation bump.
    fabric_.detach(node_.id());
    for (auto& upstream : upstreams_) {
        upstream->shutdown();
    }
    connections_.clear();
    commits_.clear();
    ready_.clear();
    locks_.clear();
    cross_inflight_ = 0;
}

void ShardFrontHost::restart() {
    TROXY_ASSERT(crashed_, "restart() needs a crashed front");
    crashed_ = false;
    ++restarts_;
    attach();
    start();  // fresh upstream sessions; clients re-handshake on contact
}

void ShardFrontHost::on_chain(sim::NodeId from, sim::FragmentChain chain) {
    sim::Network& network = fabric_.network();
    auto messages = net::take_bundle_messages(std::move(chain));
    if (messages) {
        network.recycle_chain(std::move(chain));
        for (Bytes& m : *messages) {
            on_message(from, std::move(m));
        }
        return;
    }
    network.count_materialization();
    Bytes flat = chain.materialize(&network.pool());
    network.recycle_chain(std::move(chain));
    on_message(from, std::move(flat));
}

void ShardFrontHost::on_message(sim::NodeId from, Bytes message) {
    auto unwrapped = net::unwrap_view(message);
    if (unwrapped) {
        const auto it = server_to_shard_.find(from);
        if (it != server_to_shard_.end()) {
            // Upstream traffic from a shard replica; a coalescing host
            // may ship several client frames as one Bundle.
            LegacyClient& upstream = *upstreams_[
                static_cast<std::size_t>(it->second)];
            if (unwrapped->first == net::Channel::Bundle) {
                auto inner = net::unbundle(unwrapped->second);
                if (inner) {
                    for (const Bytes& m : *inner) {
                        auto u = net::unwrap_view(m);
                        if (u && u->first == net::Channel::Client) {
                            upstream.on_message(from, u->second);
                        }
                    }
                }
            } else if (unwrapped->first == net::Channel::Client) {
                upstream.on_message(from, unwrapped->second);
            }
        } else if (unwrapped->first == net::Channel::Client) {
            on_client_frame(from, unwrapped->second);
        }
    }
    fabric_.network().recycle(std::move(message));
}

void ShardFrontHost::on_client_frame(sim::NodeId from, ByteView payload) {
    auto frame = net::unframe_client(payload);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge_dispatch();

    switch (frame->first) {
        case net::ClientFrame::Hello: {
            auto [it, inserted] = connections_.try_emplace(from, identity_);
            if (!inserted) {
                // Fresh session from the same node: the old release
                // window dies with the old channel; in-flight upstream
                // completions are fenced off by the generation bump.
                connections_.erase(it);
                it = connections_.try_emplace(from, identity_).first;
            }
            it->second.generation = ++connection_generation_;
            Writer seed;
            seed.u32(node_.id());
            seed.u64(++handshake_counter_);
            auto hello =
                it->second.channel.accept(crypto, frame->second,
                                          seed.data());
            if (hello) {
                ++connections_accepted_;
                outbox.send(from,
                            net::wrap(net::Channel::Client,
                                      net::frame_client(
                                          net::ClientFrame::ServerHello,
                                          *hello)));
            } else {
                connections_.erase(from);
            }
            break;
        }
        case net::ClientFrame::Record: {
            const auto it = connections_.find(from);
            if (it == connections_.end() ||
                !it->second.channel.established()) {
                break;
            }
            crypto.charge(profile_.aead(frame->second.size()));
            for (Bytes& app_request :
                 it->second.channel.unprotect(frame->second)) {
                handle_request(from, it->second, std::move(app_request));
            }
            break;
        }
        case net::ClientFrame::ServerHello:
            break;
    }
    outbox.flush(meter);
}

void ShardFrontHost::handle_request(sim::NodeId from, Connection& conn,
                                    Bytes app_request) {
    const hybster::RequestInfo info = classifier_(app_request);
    ++requests_;
    const int owner = map_.shard_of(info.state_key);
    if (info.is_read) {
        // Reads ride the owner shard's cache-quorum path; the closure is
        // irrelevant (nothing is written).
        forward_single(from, conn, owner, /*is_read=*/true,
                       std::move(app_request));
        return;
    }
    std::vector<int> shards = map_.shards_of(info);
    if (shards.size() == 1) {
        forward_single(from, conn, owner, /*is_read=*/false,
                       std::move(app_request));
        return;
    }
    enqueue_cross(from, conn, std::move(shards), owner,
                  std::move(app_request), info);
}

void ShardFrontHost::forward_single(sim::NodeId from, Connection& conn,
                                    int shard, bool is_read,
                                    Bytes app_request) {
    ShardStats& stats = shard_stats_[static_cast<std::size_t>(shard)];
    ++stats.forwarded;
    if (is_read) {
        ++stats.reads;
    } else {
        ++stats.writes;
    }
    const std::uint64_t generation = conn.generation;
    const std::uint64_t slot = conn.next_assign++;
    upstreams_[static_cast<std::size_t>(shard)]->send(
        std::move(app_request),
        [this, from, generation, slot, shard](Bytes reply) {
            ++shard_stats_[static_cast<std::size_t>(shard)].replies;
            deliver_reply(from, generation, slot, std::move(reply));
        });
}

void ShardFrontHost::enqueue_cross(sim::NodeId from, Connection& conn,
                                   std::vector<int> shards, int owner,
                                   Bytes app_request,
                                   const hybster::RequestInfo& info) {
    for (const int s : shards) {
        ShardStats& stats = shard_stats_[static_cast<std::size_t>(s)];
        ++stats.forwarded;
        ++stats.writes;
        ++stats.cross_participations;
    }
    CrossCommit commit;
    commit.id = next_commit_id_++;
    commit.client = from;
    commit.generation = conn.generation;
    commit.slot = conn.next_assign++;
    commit.request =
        std::make_shared<const Bytes>(std::move(app_request));
    commit.shards = std::move(shards);
    // Canonical lock set: the classifier's full key closure, sorted and
    // deduplicated. Canonical order is what makes atomic admission a
    // total order over conflicting commits.
    commit.keys.reserve(info.extra_keys.size() + 1);
    commit.keys.push_back(info.state_key);
    commit.keys.insert(commit.keys.end(), info.extra_keys.begin(),
                       info.extra_keys.end());
    std::sort(commit.keys.begin(), commit.keys.end());
    commit.keys.erase(std::unique(commit.keys.begin(), commit.keys.end()),
                      commit.keys.end());
    commit.owner = owner;
    commit.admitted_at = fabric_.simulator().now();

    const CrossLockTable::Admission admission =
        locks_.admit(commit.id, commit.keys);
    if (admission.runnable) {
        ready_.insert(commit.id);
    } else {
        commit.waited = true;
        ++cross_lock_waits_;
        for (const std::string& key : admission.blocked_on) {
            ++lock_waits_by_key_[key];
        }
    }
    commits_.emplace(commit.id, std::move(commit));
    cross_queue_peak_ =
        std::max<std::uint64_t>(cross_queue_peak_, commits_.size());
    pump_cross();
}

void ShardFrontHost::pump_cross() {
    const std::size_t depth = options_.cross_pipeline_depth;
    // Dispatch in admission order (lowest id first). At depth 1 the
    // oldest live commit is always runnable when the lane frees — every
    // commit admitted before it has completed — so this loop degenerates
    // to the serialized global FIFO.
    while (!ready_.empty() &&
           (depth == 0 || cross_inflight_ < depth)) {
        const CrossLockTable::CommitId id = *ready_.begin();
        ready_.erase(ready_.begin());
        const auto it = commits_.find(id);
        TROXY_ASSERT(it != commits_.end(), "ready commit without record");
        CrossCommit& commit = it->second;
        ++cross_inflight_;
        cross_inflight_peak_ = std::max<std::uint64_t>(
            cross_inflight_peak_, cross_inflight_);
        cross_lock_wait_total_ +=
            fabric_.simulator().now() - commit.admitted_at;
        send_cross_step(commit);
    }
}

void ShardFrontHost::send_cross_step(CrossCommit& commit) {
    const int shard = commit.shards[commit.next];
    const CrossLockTable::CommitId id = commit.id;
    // The full request goes to every touched shard: each shard's service
    // executes it against the keys it owns, so the owner of every key in
    // the closure sees the write in its ordered log. The payload travels
    // as a refcounted reference — one buffer serves every shard's
    // forward; the upstream session seals its ciphertext straight from
    // the shared bytes.
    fabric_.network().count_referenced(commit.request->size());
    upstreams_[static_cast<std::size_t>(shard)]->send_ref(
        commit.request, [this, id, shard](Bytes reply) {
            advance_cross(id, shard, std::move(reply));
        });
}

void ShardFrontHost::advance_cross(CrossLockTable::CommitId id, int shard,
                                   Bytes reply) {
    const auto it = commits_.find(id);
    if (it == commits_.end()) return;  // pre-crash straggler
    CrossCommit& commit = it->second;
    if (shard == commit.owner) {
        commit.owner_reply = std::move(reply);
    }
    ++commit.next;
    if (commit.next < commit.shards.size()) {
        send_cross_step(commit);
        return;
    }
    // Every shard committed: release the owner's reply. Releasing only
    // now is what makes the write visible-atomic to this client — a
    // follow-up read of any touched key (routed to that key's owner
    // shard) lands after that shard's commit.
    ++cross_commits_;
    cross_latencies_.push_back(fabric_.simulator().now() -
                               commit.admitted_at);
    CrossCommit done = std::move(it->second);
    commits_.erase(it);
    --cross_inflight_;
    for (const CrossLockTable::CommitId successor :
         locks_.release(done.id)) {
        ready_.insert(successor);
    }
    deliver_reply(done.client, done.generation, done.slot,
                  std::move(done.owner_reply));
    pump_cross();
}

void ShardFrontHost::deliver_reply(sim::NodeId client,
                                   std::uint64_t generation,
                                   std::uint64_t slot, Bytes reply) {
    const auto it = connections_.find(client);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.generation != generation) return;  // pre-reconnect straggler
    conn.ready.emplace(slot, std::move(reply));

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    auto next = conn.ready.find(conn.next_release);
    while (next != conn.ready.end()) {
        crypto.charge(profile_.aead(next->second.size()));
        outbox.send(client,
                    net::wrap(net::Channel::Client,
                              net::frame_client(
                                  net::ClientFrame::Record,
                                  conn.channel.protect(next->second))));
        ++released_;
        conn.ready.erase(next);
        next = conn.ready.find(++conn.next_release);
    }
    outbox.flush(meter);
}

namespace {

double percentile_ms(std::vector<sim::Duration> samples, double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const auto index = static_cast<std::size_t>(rank + 0.5);
    return sim::to_millis(samples[std::min(index, samples.size() - 1)]);
}

}  // namespace

ShardFrontHost::Status ShardFrontHost::status() const {
    Status status;
    status.requests = requests_;
    status.released = released_;
    status.cross_shard_commits = cross_commits_;
    status.cross_queue_peak = cross_queue_peak_;
    status.cross_inflight_peak = cross_inflight_peak_;
    status.cross_lock_waits = cross_lock_waits_;
    status.cross_lock_wait_ms_total = sim::to_millis(cross_lock_wait_total_);
    status.cross_p50_ms = percentile_ms(cross_latencies_, 0.50);
    status.cross_p99_ms = percentile_ms(cross_latencies_, 0.99);
    status.contended_keys.assign(lock_waits_by_key_.begin(),
                                 lock_waits_by_key_.end());
    std::sort(status.contended_keys.begin(), status.contended_keys.end(),
              [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
              });
    status.connections = connections_accepted_;
    status.router_fanout = static_cast<int>(upstreams_.size());
    for (const auto& upstream : upstreams_) {
        status.upstream_failovers += upstream->failovers();
    }
    status.shards = shard_stats_;
    return status;
}

}  // namespace troxy::troxy_core
