#include "troxy/host.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/fragment.hpp"
#include "net/outbox.hpp"

namespace troxy::troxy_core {

TroxyReplicaHost::TroxyReplicaHost(
    net::Fabric& fabric, sim::Node& node, hybster::Config config,
    std::uint32_t replica_id, hybster::ServicePtr service,
    std::shared_ptr<enclave::TrinX> trinx,
    crypto::X25519Keypair channel_identity, Classifier classifier,
    const sim::CostProfile& replica_profile,
    const sim::CostProfile& troxy_profile, Options options,
    std::uint64_t seed)
    : fabric_(fabric),
      node_(node),
      config_(config),
      troxy_profile_(troxy_profile),
      options_(options),
      replica_id_(replica_id),
      trinx_(trinx),
      channel_identity_(channel_identity),
      classifier_(std::move(classifier)),
      seed_(seed) {
    troxy_ = std::make_unique<TroxyEnclave>(
        node.id(), replica_id, config, trinx, channel_identity, classifier_,
        troxy_profile, options.troxy, seed);

    hybster::Replica::Hooks hooks;
    // Requests in a Troxy deployment carry a single trusted-subsystem
    // certificate from the issuing Troxy (identified by its host replica).
    hooks.verify_request = [this, trinx](enclave::CostedCrypto& crypto,
                                         const hybster::Request& request) {
        if (request.auth.size() != 1) return false;
        const int issuer = config_.replica_of(request.id.client);
        if (issuer < 0) return false;
        return trinx->verify_independent(crypto,
                                         static_cast<std::uint32_t>(issuer),
                                         request.signed_view(),
                                         request.auth[0]);
    };
    // Replies are authenticated by the local Troxy (which uses the moment
    // to keep its fast-read cache coherent), then sent to the contact
    // replica hosting the issuing Troxy.
    hooks.deliver_reply = [this](enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox,
                                 const hybster::Request& request,
                                 hybster::Reply reply) {
        reply.cert =
            troxy_->authenticate_reply(crypto.meter(), request, reply);
        outbox.send(request.id.client,
                    net::wrap(net::Channel::Hybster,
                              encode_message(hybster::Message(reply))));
    };
    if (options.batch_reply_auth) {
        // A whole executed batch's replies enter the enclave through ONE
        // authenticate_replies transition; retransmissions and optimistic
        // reads keep the per-reply hook above.
        hooks.deliver_replies =
            [this](enclave::CostedCrypto& crypto, net::Outbox& outbox,
                   std::vector<hybster::Replica::Hooks::ExecutedReply>&&
                       batch) {
                std::vector<TroxyEnclave::ReplyAuth> items;
                items.reserve(batch.size());
                for (const auto& member : batch) {
                    items.push_back(TroxyEnclave::ReplyAuth{member.request,
                                                            &member.reply});
                }
                const std::vector<enclave::Certificate> certs =
                    troxy_->authenticate_replies(crypto.meter(), items);
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    batch[i].reply.cert = certs[i];
                    outbox.send(
                        batch[i].request->id.client,
                        net::wrap(net::Channel::Hybster,
                                  encode_message(
                                      hybster::Message(batch[i].reply))));
                }
            };
    }

    replica_ = std::make_unique<hybster::Replica>(
        fabric, node, config, replica_id, std::move(service),
        std::move(trinx), replica_profile, std::move(hooks));

    // All ecalls mutate shared trusted state (voter tables, cache,
    // session keys), so the Troxy serializes them on a bounded number of
    // enclave threads — for etroxy that is the TCS budget, for ctroxy the
    // same library lock without SGX. Transition costs differ (SGX vs JNI).
    if (options_.troxy.tcs_count > 0) {
        tcs_free_.assign(
            static_cast<std::size_t>(options_.troxy.tcs_count), 0);
    }
}

void TroxyReplicaHost::crash() {
    hybster::FaultProfile profile;
    profile.crashed = true;
    faults_ = profile;
    replica_->set_faults(profile);
    // Volatile host bookkeeping dies with the process; pending timer
    // callbacks find their ids gone and become no-ops.
    votes_in_flight_.clear();
    fast_reads_in_flight_.clear();
    // Buffered replies die with the untrusted process; the vote timers'
    // retransmit path (re-armed post-restart) covers the gap.
    reply_buffer_.clear();
    ++voter_flush_generation_;
    voter_timer_armed_ = false;
    // Buffered cache queries die too; the enclave's fast-read timeout
    // would have fallen the reads back, but the enclave state is wiped on
    // restart anyway.
    fastread_buffer_.clear();
    fastread_buffered_ = 0;
    ++fastread_flush_generation_;
    fastread_timer_armed_ = false;
    // An in-flight enclave recovery dies with the host; the periodic
    // schedule (if any) re-triggers one after restart.
    enclave_recovering_ = false;
    ++recovery_generation_;
    recovery_buffer_.clear();
}

void TroxyReplicaHost::restart(hybster::ServicePtr fresh_service) {
    faults_ = hybster::FaultProfile{};
    ++restarts_;
    troxy_->restart();
    if (!tcs_free_.empty()) {
        std::fill(tcs_free_.begin(), tcs_free_.end(), 0);
    }
    // Clears the replica's fault profile, resets its volatile state and
    // kicks off the rejoin protocol.
    replica_->restart(std::move(fresh_service));
}

void TroxyReplicaHost::attach() {
    fabric_.attach(node_.id(), [this](sim::NodeId from, Bytes message) {
        on_message(from, std::move(message));
    });
    fabric_.attach_chain(
        node_.id(), [this](sim::NodeId from, sim::FragmentChain chain) {
            on_chain(from, std::move(chain));
        });
    if (options_.enclave_recovery_period > 0 && options_.authority) {
        arm_recovery_timer(options_.enclave_recovery_period +
                           options_.enclave_recovery_offset);
    }
}

void TroxyReplicaHost::arm_recovery_timer(sim::Duration delay) {
    fabric_.simulator().after(delay, [this]() {
        if (options_.enclave_recovery_period <= 0) return;
        // A crashed host skips the firing but keeps the schedule: the
        // recovery cycle resumes once the host restarts.
        if (!faults_.crashed) recover_enclave();
        arm_recovery_timer(options_.enclave_recovery_period);
    });
}

bool TroxyReplicaHost::recover_enclave() {
    if (!options_.authority || faults_.crashed || enclave_recovering_) {
        return false;
    }
    enclave_recovering_ = true;
    const std::uint64_t generation = ++recovery_generation_;

    // Teardown: the trusted subsystem exports a certified record of its
    // counters first (the handover only an attested instance can accept),
    // then the old enclave instance is gone for the downtime window.
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(troxy_profile_, meter);
    Bytes handover = trinx_->export_handover(crypto);

    fabric_.simulator().after(
        options_.enclave_recovery_downtime,
        [this, generation, handover = std::move(handover)]() mutable {
            if (generation != recovery_generation_) return;
            if (faults_.crashed) return;  // crash() aborted the recovery
            finish_enclave_recovery(std::move(handover));
        });
    return true;
}

void TroxyReplicaHost::finish_enclave_recovery(Bytes handover) {
    // Attestation re-handshake: a fresh nonce, a fresh report, and the
    // authority's verdict gate the replacement instance — exactly the
    // initial provisioning flow, re-run.
    const std::uint64_t nonce = seed_ * 1000003 + ++recovery_nonce_;
    const enclave::AttestationReport report =
        options_.authority->issue(options_.measurement, nonce);
    if (!options_.authority->verify(report, options_.measurement, nonce)) {
        // The authority refused the re-handshake: stay down rather than
        // run unattested (cannot happen with a well-configured authority).
        enclave_recovering_ = false;
        recovery_buffer_.clear();
        return;
    }

    // Retire the outgoing instance's counters into the host accumulator
    // so observability spans the swap.
    {
        const TroxyEnclave::Status old = troxy_->status();
        auto& acc = retired_troxy_stats_;
        acc.fast_read_hits += old.fast_read_hits;
        acc.fast_read_misses += old.fast_read_misses;
        acc.fast_read_conflicts += old.fast_read_conflicts;
        acc.ordered_requests += old.ordered_requests;
        acc.completed_votes += old.completed_votes;
        acc.rejected_replies += old.rejected_replies;
        acc.reply_batches += old.reply_batches;
        acc.batched_replies += old.batched_replies;
        acc.reply_auth_batches += old.reply_auth_batches;
        acc.batch_authenticated_replies += old.batch_authenticated_replies;
        acc.cache_query_batches += old.cache_query_batches;
        acc.batched_cache_queries += old.batched_cache_queries;
        acc.cache_response_batches += old.cache_response_batches;
        acc.batched_cache_responses += old.batched_cache_responses;
        acc.cache_invalidations += old.cache_invalidations;
        acc.invalidations_saved += old.invalidations_saved;
        acc.invalidations_saved_cross_batch +=
            old.invalidations_saved_cross_batch;
        acc.fallback_prebatches += old.fallback_prebatches;
        acc.prebatched_fallbacks += old.prebatched_fallbacks;
        acc.mode_switches += old.mode_switches;
        acc.enclave_transitions += old.enclave_transitions;
    }

    // Fresh instance: empty cache, empty voter, no sessions — every
    // secure-channel session key rotates because clients must re-
    // handshake, against the SAME pinned channel identity. The varied
    // seed re-keys the instance's internal randomness.
    troxy_ = std::make_unique<TroxyEnclave>(
        node_.id(), replica_id_, config_, trinx_, channel_identity_,
        classifier_, troxy_profile_, options_.troxy,
        seed_ + 7919 * (enclave_recoveries_ + 1));
    if (!tcs_free_.empty()) {
        std::fill(tcs_free_.begin(), tcs_free_.end(), 0);
    }

    // Trusted-counter re-binding: the certified handover verifies under
    // the provisioned group key and never lowers a counter, so the
    // recovered subsystem cannot re-certify any (counter, value) slot —
    // e.g. an old view's ordering counter — the old instance used.
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(troxy_profile_, meter);
    const bool rebound = trinx_->import_handover(crypto, handover);
    TROXY_ASSERT(rebound, "counter handover must verify under the group key");

    ++enclave_recoveries_;
    enclave_recovering_ = false;

    // Replay what the host buffered while the enclave was down: hellos
    // re-handshake against the new instance; records under a dead session
    // are rejected by the channel and covered by the client's ordinary
    // reconnect logic — either way the legacy client never notices more
    // than added latency.
    std::vector<std::pair<sim::NodeId, Bytes>> buffered =
        std::move(recovery_buffer_);
    recovery_buffer_.clear();
    for (auto& [from, frame] : buffered) {
        on_message(from, std::move(frame));
    }
}

void TroxyReplicaHost::on_message(sim::NodeId from, Bytes message) {
    if (faults_.crashed) return;

    // During a recovery downtime window the enclave is gone: traffic that
    // would enter it through client-facing ecalls is buffered and
    // replayed once the recovered instance is attested. Agreement traffic
    // keeps flowing — the replica is untrusted host-side code and runs
    // through an enclave recovery (its trusted counters are exactly what
    // the handover preserves).
    if (enclave_recovering_) {
        // Peek at the channel byte without detaching the payload.
        auto peeked = net::unwrap_view(message);
        if (peeked && (peeked->first == net::Channel::Client ||
                       peeked->first == net::Channel::TroxyCache)) {
            ++recovery_buffered_frames_;
            if (recovery_buffer_.size() < 4096) {
                recovery_buffer_.emplace_back(from, std::move(message));
            } else {
                fabric_.network().recycle(std::move(message));
            }
            return;
        }
    }

    dispatch_message(from, message);
    // Every dispatch path decodes out of the frame synchronously, so the
    // wire buffer can rejoin the pool for the next sender.
    fabric_.network().recycle(std::move(message));
}

void TroxyReplicaHost::on_chain(sim::NodeId from, sim::FragmentChain chain) {
    sim::Network& network = fabric_.network();
    if (faults_.crashed) {
        network.recycle_chain(std::move(chain));
        return;
    }
    // Recovery-window traffic goes through the ordinary buffering logic,
    // which needs an owning flat frame anyway.
    if (!enclave_recovering_) {
        auto messages = net::take_bundle_messages(std::move(chain));
        if (messages) {
            network.recycle_chain(std::move(chain));
            dispatch_burst(from, std::move(*messages));
            return;
        }
    }
    network.count_materialization();
    Bytes flat = chain.materialize(&network.pool());
    network.recycle_chain(std::move(chain));
    on_message(from, std::move(flat));
}

void TroxyReplicaHost::dispatch_message(sim::NodeId from, ByteView message) {
    auto unwrapped = net::unwrap_view(message);
    if (!unwrapped) return;
    auto& [channel, payload] = *unwrapped;

    switch (channel) {
        case net::Channel::Hybster: {
            // Replies addressed to this node feed the local Troxy's voter;
            // everything else is agreement traffic for the replica.
            auto decoded = hybster::decode_message(payload);
            if (!decoded) return;
            if (auto* reply = std::get_if<hybster::Reply>(&*decoded)) {
                if (reply->request_id.client == node_.id()) {
                    enqueue_reply(std::move(*reply));
                    return;
                }
                return;  // misrouted reply
            }
            replica_->on_message(from, payload);
            return;
        }
        case net::Channel::Bundle: {
            // A coalesced flush burst from a peer: unpack and dispatch
            // each inner message.
            auto inner = net::unbundle(payload);
            if (!inner) return;
            dispatch_burst(from, std::move(*inner));
            return;
        }
        case net::Channel::Client: {
            auto frame = net::unframe_client(payload);
            if (!frame) return;
            enclave::CostMeter meter;
            switch (frame->first) {
                case net::ClientFrame::Hello:
                    apply(meter, troxy_->accept_connection(meter, from,
                                                           frame->second));
                    return;
                case net::ClientFrame::Record:
                    apply(meter, troxy_->handle_request(meter, from,
                                                        frame->second));
                    return;
                case net::ClientFrame::ServerHello:
                    return;  // servers never receive server hellos
            }
            return;
        }
        case net::Channel::TroxyCache: {
            auto decoded = decode_cache_message(payload);
            if (!decoded) return;
            enclave::CostMeter meter;
            if (auto* query = std::get_if<CacheQuery>(&*decoded)) {
                apply(meter, troxy_->handle_cache_query(meter, *query));
            } else if (auto* response =
                           std::get_if<CacheResponse>(&*decoded)) {
                apply(meter,
                      troxy_->handle_cache_response(meter, *response));
            } else if (auto* queries =
                           std::get_if<CacheQueryBatch>(&*decoded)) {
                // A whole query burst from a contact Troxy: answered in
                // ONE handle_cache_queries transition.
                apply(meter, troxy_->handle_cache_queries(meter,
                                                          queries->queries));
            } else {
                // A whole response burst from a remote: applied in ONE
                // handle_cache_responses transition.
                apply(meter,
                      troxy_->handle_cache_responses(
                          meter,
                          std::get<CacheResponseBatch>(*decoded).responses));
            }
            return;
        }
        default:
            return;  // not for this host
    }
}

void TroxyReplicaHost::dispatch_burst(sim::NodeId from,
                                      std::vector<Bytes> messages) {
    std::vector<hybster::Reply> replies;
    for (Bytes& message : messages) {
        auto unwrapped_inner = net::unwrap_view(message);
        if (!unwrapped_inner) continue;
        if (unwrapped_inner->first == net::Channel::Hybster) {
            auto decoded = hybster::decode_message(unwrapped_inner->second);
            if (!decoded) continue;
            if (auto* reply = std::get_if<hybster::Reply>(&*decoded)) {
                if (reply->request_id.client == node_.id()) {
                    replies.push_back(std::move(*reply));
                }
                continue;
            }
            replica_->on_message(from, unwrapped_inner->second);
            continue;
        }
        on_message(from, std::move(message));
    }
    ingest_replies(std::move(replies));
}

void TroxyReplicaHost::enqueue_reply(hybster::Reply&& reply) {
    if (options_.voter_batch_max <= 1) {
        // Unbatched voter: one ecall transition per reply, exactly the
        // pre-batching flow.
        enclave::CostMeter meter;
        apply(meter, troxy_->handle_reply(meter, std::move(reply)));
        return;
    }
    reply_buffer_.push_back(std::move(reply));
    // The adaptive boundary follows the *served* load (replies per delay
    // window, fed back at flush time): an idle voter flushes every reply
    // immediately, a busy one opens up to the configured maximum.
    std::size_t boundary = options_.voter_batch_max;
    if (options_.adaptive_voting) {
        boundary = voter_controller_.effective(options_.voter_batch_max);
    }
    if (reply_buffer_.size() >= boundary) {
        flush_reply_buffer();
    } else {
        arm_voter_flush_timer();
    }
}

void TroxyReplicaHost::ingest_replies(std::vector<hybster::Reply> replies) {
    if (replies.empty()) return;
    if (options_.voter_batch_max <= 1) {
        for (hybster::Reply& reply : replies) {
            enqueue_reply(std::move(reply));
        }
        return;
    }
    for (hybster::Reply& reply : replies) {
        reply_buffer_.push_back(std::move(reply));
        if (reply_buffer_.size() >= options_.voter_batch_max) {
            flush_reply_buffer();
        }
    }
    // The arrival burst is complete — flush the remainder now instead of
    // waiting for the delay timer (no added latency for bundled bursts).
    flush_reply_buffer();
}

void TroxyReplicaHost::flush_reply_buffer() {
    if (reply_buffer_.empty()) return;
    ++voter_flush_generation_;  // cancel any armed delay timer
    voter_timer_armed_ = false;
    std::vector<hybster::Reply> batch = std::move(reply_buffer_);
    reply_buffer_.clear();
    voter_controller_.record_served(batch.size(), fabric_.simulator().now(),
                                    options_.voter_batch_delay);
    enclave::CostMeter meter;
    apply(meter, troxy_->handle_replies(meter, std::move(batch)));
}

void TroxyReplicaHost::arm_voter_flush_timer() {
    if (voter_timer_armed_) return;
    voter_timer_armed_ = true;
    const std::uint64_t generation = voter_flush_generation_;
    fabric_.simulator().after(options_.voter_batch_delay,
                              [this, generation]() {
                                  if (faults_.crashed) return;
                                  if (generation != voter_flush_generation_) {
                                      return;
                                  }
                                  voter_timer_armed_ = false;
                                  flush_reply_buffer();
                              });
}

void TroxyReplicaHost::apply(enclave::CostMeter& meter,
                             TroxyActions&& actions) {
    // Enclave concurrency: the ecall's work occupies one TCS slot for its
    // duration; when every slot is busy the call's effects wait for a
    // free slot. The wait delays completion but burns no CPU.
    sim::SimTime tcs_done = 0;
    if (!tcs_free_.empty() && meter.total() > 0) {
        const sim::SimTime now = fabric_.simulator().now();
        auto slot = std::min_element(tcs_free_.begin(), tcs_free_.end());
        const sim::SimTime start = std::max(now, *slot);
        tcs_done = start + meter.total();
        *slot = tcs_done;
    }

    for (const std::uint64_t number : actions.completed_votes) {
        votes_in_flight_.erase(number);
    }
    for (const std::uint64_t id : actions.completed_fast_reads) {
        fast_reads_in_flight_.erase(id);
    }

    net::Outbox outbox(fabric_, node_, options_.coalesce_wire,
                       /*record_cost=*/0, options_.wire_zero_copy,
                       &options_.transport);
    for (auto& [to, bytes] : actions.sends) {
        outbox.send(to, std::move(bytes));
    }
    if (!actions.cache_queries.empty()) {
        route_cache_queries(outbox, std::move(actions.cache_queries));
    }
    if (!actions.to_order.empty()) {
        // The replica's processing happens after the Troxy's metered work.
        // One ecall can surface several client requests (e.g. pipelined
        // records in one segment); hand them over in a single batched
        // submission (one metered step, one outbox flush) so a batching
        // leader can cut them into one Prepare without per-request waits.
        outbox.defer([this, batch = std::move(actions.to_order)]() mutable {
            replica_->submit_all(std::move(batch));
        });
    }
    if (!actions.to_order_batch.empty()) {
        // A conflicted fast-read burst enters the ordering pipeline as
        // ONE pre-formed batch (cut into a single Prepare on the leader).
        outbox.defer(
            [this, batch = std::move(actions.to_order_batch)]() mutable {
                replica_->submit_prebatched(std::move(batch));
            });
    }
    outbox.flush(meter, tcs_done);

    for (const std::uint64_t number : actions.arm_vote_timers) {
        votes_in_flight_.insert(number);
        arm_vote_timer(number);
    }
    for (const std::uint64_t id : actions.arm_fast_read_timers) {
        fast_reads_in_flight_.insert(id);
        arm_fast_read_timer(id);
    }
}

void TroxyReplicaHost::route_cache_queries(
    net::Outbox& outbox,
    std::vector<std::pair<sim::NodeId, CacheQuery>>&& queries) {
    if (options_.fastread_batch_max <= 1) {
        // Unbatched fast reads: each query goes out as its own wire
        // message immediately, exactly the pre-batching flow.
        for (auto& [to, query] : queries) {
            outbox.send(to,
                        net::wrap(net::Channel::TroxyCache,
                                  encode_cache_message(
                                      CacheMessage(std::move(query)))));
        }
        return;
    }
    for (auto& [to, query] : queries) {
        fastread_buffer_[to].push_back(std::move(query));
        ++fastread_buffered_;
    }
    std::size_t boundary = options_.fastread_batch_max;
    if (options_.adaptive_fastread) {
        boundary = fastread_controller_.effective(options_.fastread_batch_max);
    }
    if (fastread_buffered_ >= boundary) {
        flush_fastread_buffer(outbox);
    } else if (options_.fastread_latency_target &&
               fastread_buffered_ * 100 +
                       fastread_controller_.ewma_x100() <
                   boundary * 100) {
        // Latency target: the served-load EWMA (queries per delay
        // window) predicts this burst will NOT reach the boundary within
        // the hold, so waiting only adds latency — flush now. An idle
        // system keeps batch-1 latency; a loaded one (EWMA ≥ boundary)
        // still holds for full batches.
        flush_fastread_buffer(outbox);
    } else {
        arm_fastread_flush_timer();
    }
}

void TroxyReplicaHost::flush_fastread_buffer(net::Outbox& outbox) {
    if (fastread_buffered_ == 0) return;
    ++fastread_flush_generation_;  // cancel any armed delay timer
    fastread_timer_armed_ = false;
    fastread_controller_.record_served(fastread_buffered_,
                                       fabric_.simulator().now(),
                                       options_.fastread_batch_delay);
    for (auto& [to, queries] : fastread_buffer_) {
        if (queries.empty()) continue;
        // A lone query keeps the single-message wire form (byte parity
        // with the unbatched flow); a burst ships as one CacheQueryBatch
        // and will be answered in one remote transition.
        const CacheMessage message =
            queries.size() == 1
                ? CacheMessage(std::move(queries.front()))
                : CacheMessage(CacheQueryBatch{std::move(queries)});
        outbox.send(to, net::wrap(net::Channel::TroxyCache,
                                  encode_cache_message(message)));
    }
    fastread_buffer_.clear();
    fastread_buffered_ = 0;
}

void TroxyReplicaHost::arm_fastread_flush_timer() {
    if (fastread_timer_armed_) return;
    fastread_timer_armed_ = true;
    const std::uint64_t generation = fastread_flush_generation_;
    fabric_.simulator().after(
        options_.fastread_batch_delay, [this, generation]() {
            if (faults_.crashed) return;
            if (generation != fastread_flush_generation_) return;
            fastread_timer_armed_ = false;
            enclave::CostMeter meter;
            net::Outbox outbox(fabric_, node_, options_.coalesce_wire,
                       /*record_cost=*/0, options_.wire_zero_copy,
                       &options_.transport);
            flush_fastread_buffer(outbox);
            outbox.flush(meter);
        });
}

TroxyReplicaHost::Status TroxyReplicaHost::status() const {
    Status s;
    s.troxy = troxy_->status();
    // Add the counters retired by enclave recoveries; gauges stay live.
    {
        const auto& acc = retired_troxy_stats_;
        s.troxy.fast_read_hits += acc.fast_read_hits;
        s.troxy.fast_read_misses += acc.fast_read_misses;
        s.troxy.fast_read_conflicts += acc.fast_read_conflicts;
        s.troxy.ordered_requests += acc.ordered_requests;
        s.troxy.completed_votes += acc.completed_votes;
        s.troxy.rejected_replies += acc.rejected_replies;
        s.troxy.reply_batches += acc.reply_batches;
        s.troxy.batched_replies += acc.batched_replies;
        s.troxy.reply_auth_batches += acc.reply_auth_batches;
        s.troxy.batch_authenticated_replies +=
            acc.batch_authenticated_replies;
        s.troxy.cache_query_batches += acc.cache_query_batches;
        s.troxy.batched_cache_queries += acc.batched_cache_queries;
        s.troxy.cache_response_batches += acc.cache_response_batches;
        s.troxy.batched_cache_responses += acc.batched_cache_responses;
        s.troxy.cache_invalidations += acc.cache_invalidations;
        s.troxy.invalidations_saved += acc.invalidations_saved;
        s.troxy.invalidations_saved_cross_batch +=
            acc.invalidations_saved_cross_batch;
        s.troxy.fallback_prebatches += acc.fallback_prebatches;
        s.troxy.prebatched_fallbacks += acc.prebatched_fallbacks;
        s.troxy.mode_switches += acc.mode_switches;
        s.troxy.enclave_transitions += acc.enclave_transitions;
    }
    s.voter_ewma_x100 = voter_controller_.ewma_x100();
    s.fastread_ewma_x100 = fastread_controller_.ewma_x100();
    s.batch_ewma_x100 = replica_->batch_ewma_x100();
    s.exec = replica_->exec_stats();
    s.state = replica_->state_stats();
    s.enclave_recoveries = enclave_recoveries_;
    s.recovery_buffered_frames = recovery_buffered_frames_;
    s.pool = fabric_.network().pool().stats();
    s.wire = fabric_.network().wire_stats();
    return s;
}

void TroxyReplicaHost::arm_vote_timer(std::uint64_t number) {
    fabric_.simulator().after(options_.vote_timeout, [this, number]() {
        if (faults_.crashed) return;
        if (!votes_in_flight_.contains(number)) return;
        enclave::CostMeter meter;
        apply(meter, troxy_->retransmit(meter, number));
    });
}

void TroxyReplicaHost::arm_fast_read_timer(std::uint64_t query_id) {
    fabric_.simulator().after(options_.fast_read_timeout, [this, query_id]() {
        if (faults_.crashed) return;
        if (!fast_reads_in_flight_.contains(query_id)) return;
        fast_reads_in_flight_.erase(query_id);
        enclave::CostMeter meter;
        apply(meter, troxy_->fast_read_timeout(meter, query_id));
    });
}

}  // namespace troxy::troxy_core
