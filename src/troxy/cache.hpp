// Managed fast-read cache (§IV).
//
// The cache maps a state key (the partition a request touches, from
// Service::classify) to the last correctly executed read on that key:
// request digest plus result. It is *actively maintained*: every write
// reply that passes through the trusted reply-authentication path removes
// the entry for the written key before the write becomes visible to any
// client — this is what lets the quorum-intersection argument of §IV-B
// guarantee linearizability of fast reads.
//
// Entries enter the cache from two trustworthy-enough sources:
//   * local ordered-read execution (value correctness is protected by the
//     f+1 cache-match quorum at read time, so a faulty local replica can
//     only cause mismatches, never wrong results), and
//   * voted results at the contact Troxy (already proven correct).
// Write replies never *update* the cache ("a faulty replica should not be
// able to pollute the cache", §IV-B) — they only invalidate.
//
// A miss-rate monitor implements the §IV-B / §VI-C3 optimization: when the
// recent miss/conflict rate exceeds a threshold, the fast path is switched
// off in favour of total ordering, and probed again after a cooldown.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "enclave/gate.hpp"

namespace troxy::troxy_core {

struct CacheEntry {
    crypto::Sha256Digest request_digest{};
    Bytes result;
    /// SHA-256 of `result`, computed once at insertion so that remote
    /// cache queries and quorum comparisons never re-hash large replies.
    crypto::Sha256Digest result_digest{};
};

class FastReadCache {
  public:
    /// `gate` accounts the entries against the EPC model; `capacity_bytes`
    /// bounds the cache (LRU eviction).
    FastReadCache(enclave::EnclaveGate& gate, std::size_t capacity_bytes);

    /// Looks up the entry for a state key (refreshes LRU position).
    [[nodiscard]] const CacheEntry* get(const std::string& state_key);

    /// Inserts or overwrites the entry for a state key.
    void put(const std::string& state_key, CacheEntry entry);

    /// Removes the entry for a state key (write invalidation).
    void invalidate(const std::string& state_key);

    /// Drops everything (enclave restart: "the cache would simply lose
    /// its entire state", §IV-B).
    void clear();

    [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
    [[nodiscard]] std::size_t bytes_used() const noexcept { return bytes_; }

  private:
    struct Slot {
        CacheEntry entry;
        std::list<std::string>::iterator lru_position;
    };

    [[nodiscard]] static std::size_t footprint(const std::string& key,
                                               const CacheEntry& entry);
    void evict_if_needed();

    enclave::EnclaveGate& gate_;
    std::size_t capacity_;
    std::size_t bytes_ = 0;
    std::map<std::string, Slot> map_;
    std::list<std::string> lru_;  // front = most recent
};

/// Sliding-window miss-rate monitor with hysteresis: above
/// `miss_threshold` over the last `window` fast-read attempts the Troxy
/// leaves fast-read mode; after `cooldown` ordered requests it probes the
/// fast path again.
class MissRateMonitor {
  public:
    struct Options {
        double miss_threshold = 0.5;
        std::uint32_t window = 64;
        std::uint32_t cooldown = 256;
        bool adaptive = true;  // false: never switch modes (Fig. 10 ablation)
    };

    explicit MissRateMonitor(Options options) : options_(options) {}

    /// Records a fast-read attempt outcome.
    void record(bool miss);

    /// Records an ordered request processed while the fast path is off
    /// (progress towards the probe).
    void record_total_order();

    [[nodiscard]] bool fast_path_enabled() const noexcept {
        return fast_enabled_;
    }
    [[nodiscard]] double miss_rate() const noexcept;
    [[nodiscard]] std::uint64_t mode_switches() const noexcept {
        return switches_;
    }

  private:
    Options options_;
    std::uint32_t samples_ = 0;   // capped at window
    double miss_ewma_ = 0.0;      // exponentially weighted over the window
    bool fast_enabled_ = true;
    std::uint32_t cooldown_left_ = 0;
    std::uint64_t switches_ = 0;
};

}  // namespace troxy::troxy_core
