#include "troxy/cache.hpp"

#include <algorithm>

namespace troxy::troxy_core {

FastReadCache::FastReadCache(enclave::EnclaveGate& gate,
                             std::size_t capacity_bytes)
    : gate_(gate), capacity_(capacity_bytes) {}

std::size_t FastReadCache::footprint(const std::string& key,
                                     const CacheEntry& entry) {
    return key.size() + entry.result.size() + sizeof(CacheEntry) + 64;
}

const CacheEntry* FastReadCache::get(const std::string& state_key) {
    const auto it = map_.find(state_key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return &it->second.entry;
}

void FastReadCache::put(const std::string& state_key, CacheEntry entry) {
    invalidate(state_key);
    const std::size_t size = footprint(state_key, entry);
    lru_.push_front(state_key);
    map_.emplace(state_key, Slot{std::move(entry), lru_.begin()});
    bytes_ += size;
    gate_.allocate(size);
    evict_if_needed();
}

void FastReadCache::invalidate(const std::string& state_key) {
    const auto it = map_.find(state_key);
    if (it == map_.end()) return;
    const std::size_t size = footprint(it->first, it->second.entry);
    lru_.erase(it->second.lru_position);
    map_.erase(it);
    bytes_ -= size;
    gate_.release(size);
}

void FastReadCache::clear() {
    gate_.release(bytes_);
    bytes_ = 0;
    map_.clear();
    lru_.clear();
}

void FastReadCache::evict_if_needed() {
    while (bytes_ > capacity_ && !lru_.empty()) {
        invalidate(lru_.back());
    }
}

void MissRateMonitor::record(bool miss) {
    const double alpha = 1.0 / static_cast<double>(options_.window);
    if (samples_ < options_.window) ++samples_;
    miss_ewma_ = (1.0 - alpha) * miss_ewma_ + alpha * (miss ? 1.0 : 0.0);

    if (!options_.adaptive || !fast_enabled_) return;
    if (samples_ >= options_.window / 2 &&
        miss_ewma_ > options_.miss_threshold) {
        fast_enabled_ = false;
        cooldown_left_ = options_.cooldown;
        ++switches_;
        // Reset the estimate so the next probe starts fresh.
        miss_ewma_ = 0.0;
        samples_ = 0;
    }
}

void MissRateMonitor::record_total_order() {
    if (fast_enabled_ || !options_.adaptive) return;
    if (cooldown_left_ > 0) --cooldown_left_;
    if (cooldown_left_ == 0) {
        fast_enabled_ = true;
        ++switches_;
    }
}

double MissRateMonitor::miss_rate() const noexcept { return miss_ewma_; }

}  // namespace troxy::troxy_core
