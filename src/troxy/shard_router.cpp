#include "troxy/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

namespace troxy::troxy_core {

ShardMap ShardMap::split_evenly(std::vector<std::string> keys, int shards) {
    if (shards < 1) {
        throw std::invalid_argument(
            "ShardMap::split_evenly: shard count must be at least 1, got " +
            std::to_string(shards));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (static_cast<int>(keys.size()) < shards) {
        throw std::invalid_argument(
            "ShardMap::split_evenly: " + std::to_string(keys.size()) +
            " distinct keys cannot populate " + std::to_string(shards) +
            " shards");
    }
    std::vector<std::string> boundaries;
    boundaries.reserve(static_cast<std::size_t>(shards) - 1);
    for (int s = 1; s < shards; ++s) {
        boundaries.push_back(
            keys[keys.size() * static_cast<std::size_t>(s) /
                 static_cast<std::size_t>(shards)]);
    }
    ShardMap map(std::move(boundaries));
    map.validate();
    return map;
}

int ShardMap::shard_of(std::string_view state_key) const noexcept {
    // Half-open ranges: shard index = number of boundaries ≤ key, so a
    // key equal to boundary b_i lands in the shard b_i starts (i+1).
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                                     state_key);
    return static_cast<int>(it - boundaries_.begin());
}

std::vector<int> ShardMap::shards_of(
    const hybster::RequestInfo& info) const {
    std::vector<int> shards;
    shards.push_back(shard_of(info.state_key));
    for (const std::string& key : info.extra_keys) {
        const int s = shard_of(key);
        if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
            shards.push_back(s);
        }
    }
    std::sort(shards.begin(), shards.end());
    return shards;
}

void ShardMap::validate() const {
    for (std::size_t i = 0; i < boundaries_.size(); ++i) {
        if (boundaries_[i].empty()) {
            throw std::invalid_argument(
                "ShardMap: boundary " + std::to_string(i + 1) +
                " is empty — shard " + std::to_string(i) +
                "'s key range would be empty");
        }
        if (i > 0 && boundaries_[i] <= boundaries_[i - 1]) {
            throw std::invalid_argument(
                "ShardMap: boundaries must be strictly increasing, but "
                "boundary " +
                std::to_string(i + 1) + " (\"" + boundaries_[i] +
                "\") <= boundary " + std::to_string(i) + " (\"" +
                boundaries_[i - 1] + "\") — shard " + std::to_string(i) +
                "'s key range would be empty");
        }
    }
}

}  // namespace troxy::troxy_core
