#include "troxy/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

namespace troxy::troxy_core {

ShardMap ShardMap::split_evenly(std::vector<std::string> keys, int shards) {
    if (shards < 1) {
        throw std::invalid_argument(
            "ShardMap::split_evenly: shard count must be at least 1, got " +
            std::to_string(shards));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (static_cast<int>(keys.size()) < shards) {
        throw std::invalid_argument(
            "ShardMap::split_evenly: " + std::to_string(keys.size()) +
            " distinct keys cannot populate " + std::to_string(shards) +
            " shards");
    }
    std::vector<std::string> boundaries;
    boundaries.reserve(static_cast<std::size_t>(shards) - 1);
    for (int s = 1; s < shards; ++s) {
        boundaries.push_back(
            keys[keys.size() * static_cast<std::size_t>(s) /
                 static_cast<std::size_t>(shards)]);
    }
    ShardMap map(std::move(boundaries));
    map.validate();
    return map;
}

int ShardMap::shard_of(std::string_view state_key) const noexcept {
    // Half-open ranges: shard index = number of boundaries ≤ key, so a
    // key equal to boundary b_i lands in the shard b_i starts (i+1).
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                                     state_key);
    return static_cast<int>(it - boundaries_.begin());
}

std::vector<int> ShardMap::shards_of(
    const hybster::RequestInfo& info) const {
    std::vector<int> shards;
    shards.push_back(shard_of(info.state_key));
    for (const std::string& key : info.extra_keys) {
        const int s = shard_of(key);
        if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
            shards.push_back(s);
        }
    }
    std::sort(shards.begin(), shards.end());
    return shards;
}

namespace {

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash whose output is
/// a pure function of its input — exactly what a deterministic,
/// seed-replayable ring needs (no process-randomized std::hash).
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

FrontMap::FrontMap(int fronts, int vnodes) : fronts_(fronts) {
    if (fronts_ < 1) {
        throw std::invalid_argument(
            "FrontMap: front count must be at least 1, got " +
            std::to_string(fronts));
    }
    if (vnodes < 1) {
        throw std::invalid_argument(
            "FrontMap: vnodes per front must be at least 1, got " +
            std::to_string(vnodes));
    }
    ring_.reserve(static_cast<std::size_t>(fronts_) *
                  static_cast<std::size_t>(vnodes));
    for (int f = 0; f < fronts_; ++f) {
        for (int v = 0; v < vnodes; ++v) {
            // Domain-separate front id and replica index so ring points
            // never collide structurally across (f, v) pairs.
            const std::uint64_t point =
                mix64((static_cast<std::uint64_t>(f) << 32) |
                      (static_cast<std::uint64_t>(v) + 1));
            ring_.emplace_back(point, f);
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

int FrontMap::front_of(std::uint64_t client) const noexcept {
    const std::uint64_t point = mix64(client ^ 0xf7043f5fa2f0df0dULL);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(point, 0),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == ring_.end()) it = ring_.begin();  // wrap at the ring's top
    return it->second;
}

std::vector<int> FrontMap::failover_order(std::uint64_t client) const {
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(fronts_));
    const std::uint64_t point = mix64(client ^ 0xf7043f5fa2f0df0dULL);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(point, 0),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t walked = 0;
         walked < ring_.size() &&
         order.size() < static_cast<std::size_t>(fronts_);
         ++walked, ++it) {
        if (it == ring_.end()) it = ring_.begin();
        const int front = it->second;
        if (std::find(order.begin(), order.end(), front) == order.end()) {
            order.push_back(front);
        }
    }
    return order;
}

void ShardMap::validate() const {
    for (std::size_t i = 0; i < boundaries_.size(); ++i) {
        if (boundaries_[i].empty()) {
            throw std::invalid_argument(
                "ShardMap: boundary " + std::to_string(i + 1) +
                " is empty — shard " + std::to_string(i) +
                "'s key range would be empty");
        }
        if (i > 0 && boundaries_[i] <= boundaries_[i - 1]) {
            throw std::invalid_argument(
                "ShardMap: boundaries must be strictly increasing, but "
                "boundary " +
                std::to_string(i + 1) + " (\"" + boundaries_[i] +
                "\") <= boundary " + std::to_string(i) + " (\"" +
                boundaries_[i - 1] + "\") — shard " + std::to_string(i) +
                "'s key range would be empty");
        }
    }
}

}  // namespace troxy::troxy_core
