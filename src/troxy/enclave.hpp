// The Troxy: trusted server-side substitute for the client-side BFT
// library (§III).
//
// Everything in this class is conceptually *inside the SGX enclave*: the
// secure-channel session keys, the voter, the fast-read cache and the
// trusted-counter subsystem. The untrusted replica host interacts with it
// exclusively through the ecall methods below (each charges its enclave
// transition through the EnclaveGate), hands it raw bytes, and transmits
// whatever the Troxy returns — it can delay or drop, but never forge or
// alter without detection.
//
// Ecall inventory (the paper's implementation keeps the interface at 16
// entry points; ours needs 13):
//   accept_connection, close_connection, handle_request, handle_reply,
//   handle_replies, authenticate_reply, authenticate_replies,
//   handle_cache_query, handle_cache_queries, handle_cache_response,
//   handle_cache_responses, fast_read_timeout, retransmit.
// The plural entry points are the batched hot paths: one enclave
// transition votes a whole burst of replies, certifies a whole executed
// batch, answers a whole cache-query burst, or applies a whole
// cache-response burst — amortizing the transition cost and the
// per-source MAC setup across the batch (§V: transitions dominate the
// enclave hot path).
// Key provisioning happens at enclave construction through the
// attestation flow (enclave/attestation.hpp), not through an ecall.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/rng.hpp"
#include "crypto/x25519.hpp"
#include "enclave/gate.hpp"
#include "enclave/trinx.hpp"
#include "hybster/config.hpp"
#include "hybster/messages.hpp"
#include "hybster/service.hpp"
#include "net/secure_channel.hpp"
#include "troxy/cache.hpp"
#include "troxy/cache_messages.hpp"

namespace troxy::troxy_core {

/// App-specific trusted parsing: classifies a legacy request (read/write
/// plus the state key it touches). Runs inside the enclave (§IV-A).
using Classifier = std::function<hybster::RequestInfo(ByteView app_request)>;

struct TroxyOptions {
    /// Enables the fast-read cache (§IV).
    bool fast_reads = true;
    std::size_t cache_capacity_bytes = 32ull * 1024 * 1024;
    MissRateMonitor::Options monitor;
    sim::EnclaveCosts enclave_costs = sim::EnclaveCosts::sgx_v1();
    /// false = the paper's "ctroxy" variant: same native code path but
    /// running outside SGX (JNI call costs only, no SGX transitions/EPC).
    bool inside_enclave = true;
    /// Concurrent threads allowed inside the enclave (the TCS budget the
    /// enclave interface fixes at build time, §V-A). Ecall work beyond
    /// this concurrency serializes. Ignored for ctroxy.
    int tcs_count = 1;
};

/// What the untrusted host must do after an ecall returns: transmit the
/// listed wire messages and/or hand a BFT request to the local replica.
struct TroxyActions {
    std::vector<std::pair<sim::NodeId, Bytes>> sends;
    /// Fast-read cache queries surfaced in structured form so the
    /// untrusted host can buffer concurrent queries per destination and
    /// ship a burst as one CacheQueryBatch (it only forwards — the
    /// certificate inside each query was created in the enclave, so the
    /// host can delay or drop but not alter).
    std::vector<std::pair<sim::NodeId, CacheQuery>> cache_queries;
    /// BFT requests to hand to the local replica for ordering (one ecall
    /// can surface several client requests when a record closes a gap).
    std::vector<hybster::Request> to_order;
    /// Like to_order, but the burst should enter the ordering pipeline
    /// as ONE pre-formed batch (conflicted fast-read fallbacks surfaced
    /// together by one cache-response transition): the host hands it to
    /// Replica::submit_prebatched instead of submit_all.
    std::vector<hybster::Request> to_order_batch;
    /// Ordered-request numbers that now need a retransmit/vote timer.
    std::vector<std::uint64_t> arm_vote_timers;
    /// Fast-read query ids that now need a timeout timer.
    std::vector<std::uint64_t> arm_fast_read_timers;
    /// Completion notifications so the untrusted host can cancel timers
    /// without an extra ecall (reveals only what the outgoing client
    /// record already reveals).
    std::vector<std::uint64_t> completed_votes;
    std::vector<std::uint64_t> completed_fast_reads;
};

class TroxyEnclave {
  public:
    TroxyEnclave(sim::NodeId host_node, std::uint32_t replica_id,
                 hybster::Config config,
                 std::shared_ptr<enclave::TrinX> trinx,
                 crypto::X25519Keypair channel_identity,
                 Classifier classifier, const sim::CostProfile& profile,
                 TroxyOptions options, std::uint64_t seed);

    // ------------------------------------------------------------ ecalls

    /// Secure-channel establishment for a new client connection; returns
    /// the ServerHello to transmit.
    TroxyActions accept_connection(enclave::CostMeter& meter,
                                   sim::NodeId client, ByteView hello);

    /// Tears down a client connection, wiping its session state.
    void close_connection(enclave::CostMeter& meter, sim::NodeId client);

    /// Decrypts one client record, classifies it, and either starts the
    /// fast-read protocol or emits an authenticated BFT request (§III-C
    /// task 2 — decrypt and translate atomically).
    TroxyActions handle_request(enclave::CostMeter& meter, sim::NodeId client,
                                ByteView record);

    /// Voter (§III-C task 3): ingests one replica reply; once f+1
    /// matching, Troxy-authenticated replies arrived, emits the encrypted
    /// client reply.
    TroxyActions handle_reply(enclave::CostMeter& meter,
                              hybster::Reply reply);

    /// Batched voter: ingests a whole burst of replica replies in ONE
    /// enclave transition. Certificate checks keep a running MAC per
    /// source replica (only a source's first reply pays the MAC setup),
    /// completed votes for many requests surface from the single
    /// transition, and all client replies released to one connection are
    /// sealed into one coalesced secure-channel record (one AEAD pass).
    /// A batch of one is cost- and byte-identical to handle_reply.
    TroxyActions handle_replies(enclave::CostMeter& meter,
                                std::vector<hybster::Reply> replies);

    /// Reply authentication for the *local* replica (§IV-A change (1)).
    /// Certifies the reply with the trusted subsystem and maintains the
    /// fast-read cache: write replies invalidate their state key before
    /// the certificate — and hence the write's visibility — exists; read
    /// replies populate the local cache.
    enclave::Certificate authenticate_reply(enclave::CostMeter& meter,
                                            const hybster::Request& request,
                                            const hybster::Reply& reply);

    /// Batched reply authentication: certifies a whole executed batch's
    /// replies in ONE enclave transition. The certificates share a running
    /// MAC (only the first reply pays the MAC setup); cache maintenance is
    /// identical to authenticate_reply, per reply. A batch of one is cost-
    /// and byte-identical to authenticate_reply.
    struct ReplyAuth {
        const hybster::Request* request = nullptr;
        const hybster::Reply* reply = nullptr;
    };
    std::vector<enclave::Certificate> authenticate_replies(
        enclave::CostMeter& meter, const std::vector<ReplyAuth>& batch);

    /// Remote side of the fast read (get_remote_cache_entry, Fig. 4).
    TroxyActions handle_cache_query(enclave::CostMeter& meter,
                                    const CacheQuery& query);

    /// Remote side, batched: answers a whole query burst in ONE enclave
    /// transition. Requester certificates share a running MAC per source
    /// replica; each query is still verified individually, so a bad query
    /// drops only itself. Responses going back to the same requester are
    /// grouped into one CacheResponseBatch.
    TroxyActions handle_cache_queries(enclave::CostMeter& meter,
                                      const std::vector<CacheQuery>& queries);

    /// Voting side: validates one remote cache response; on f matches the
    /// fast read succeeds, on any mismatch the request falls back to
    /// ordering.
    TroxyActions handle_cache_response(enclave::CostMeter& meter,
                                       const CacheResponse& response);

    /// Voting side, batched: applies a whole response burst in ONE
    /// enclave transition. Responder certificates share a running MAC per
    /// source replica, each response is verified individually (one
    /// Byzantine response rejects — and falls back — only its own query),
    /// and all client replies released to one connection are sealed into
    /// one coalesced secure-channel record.
    TroxyActions handle_cache_responses(
        enclave::CostMeter& meter,
        const std::vector<CacheResponse>& responses);

    /// Fast-read liveness: an unresponsive remote Troxy must not stall
    /// the client; the read falls back to ordering.
    TroxyActions fast_read_timeout(enclave::CostMeter& meter,
                                   std::uint64_t query_id);

    /// Vote liveness: rebroadcasts an ordered request to all replicas so
    /// followers can suspect an unresponsive leader.
    TroxyActions retransmit(enclave::CostMeter& meter,
                            std::uint64_t request_number);

    // ----------------------------------------------------------- metrics

    struct Status {
        std::uint64_t fast_read_hits = 0;
        std::uint64_t fast_read_misses = 0;    // local cache miss
        std::uint64_t fast_read_conflicts = 0; // remote mismatch/timeout
        std::uint64_t ordered_requests = 0;
        std::uint64_t completed_votes = 0;
        std::uint64_t rejected_replies = 0;
        std::uint64_t reply_batches = 0;   // handle_replies invocations
        std::uint64_t batched_replies = 0; // replies ingested via batches
        std::uint64_t reply_auth_batches = 0;   // authenticate_replies calls
        std::uint64_t batch_authenticated_replies = 0;
        std::uint64_t cache_query_batches = 0;  // handle_cache_queries calls
        std::uint64_t batched_cache_queries = 0;
        std::uint64_t cache_response_batches = 0;
        std::uint64_t batched_cache_responses = 0;
        std::uint64_t cache_invalidations = 0;   // keys actually dropped
        /// Repeat invalidations skipped because an earlier write in the
        /// same batched transition already dropped the key.
        std::uint64_t invalidations_saved = 0;
        /// Invalidations skipped across transitions: the key was already
        /// invalidated earlier and nothing re-cached it since, so the
        /// cache provably does not hold it.
        std::uint64_t invalidations_saved_cross_batch = 0;
        /// Fallback bursts surfaced as one pre-formed ordering batch.
        std::uint64_t fallback_prebatches = 0;
        std::uint64_t prebatched_fallbacks = 0;  // members of those bursts
        double miss_rate = 0.0;
        bool fast_path_enabled = true;
        std::uint64_t mode_switches = 0;
        std::size_t cache_entries = 0;
        std::uint64_t enclave_transitions = 0;
        std::size_t pending_votes = 0;
        std::size_t pending_fast_reads = 0;
        std::size_t stuck_replies = 0;  // buffered out-of-order releases
    };
    [[nodiscard]] Status status() const;

    [[nodiscard]] const enclave::EnclaveGate& gate() const noexcept {
        return gate_;
    }

    /// Simulates an enclave restart: all volatile trusted state is lost
    /// (the rollback "attack" of §IV-B — the cache empties, safety holds).
    void restart();

    /// Test-only introspection: the current cache entry for a state key
    /// (no LRU side effects would matter in tests). Real deployments have
    /// no such interface — it exists to let property tests check the
    /// write-invalidation quorum invariant directly.
    [[nodiscard]] const CacheEntry* debug_cache_entry(
        const std::string& state_key) {
        return cache_.get(state_key);
    }

  private:
    struct Connection {
        net::SecureChannelServer channel;
        std::uint64_t next_assign = 0;   // per-connection request slot
        std::uint64_t next_release = 0;  // in-order reply release
        std::map<std::uint64_t, Bytes> ready;  // slot → plaintext reply

        explicit Connection(const crypto::X25519Keypair& identity)
            : channel(identity) {}
    };

    struct PendingVote {
        sim::NodeId client = 0;
        std::uint64_t conn_slot = 0;
        std::string state_key;
        /// Write-set closure beyond state_key (RequestInfo::extra_keys);
        /// registered in pending_write_keys_ and invalidated on quorum.
        std::vector<std::string> extra_keys;
        bool is_read = false;
        crypto::Sha256Digest request_digest{};
        hybster::Request request;  // kept for retransmission
        std::map<std::uint32_t, Bytes> votes;
        std::map<Bytes, int> tally;
    };

    struct PendingFastRead {
        sim::NodeId client = 0;
        std::uint64_t conn_slot = 0;
        std::string state_key;
        CacheEntry local;        // snapshot compared against responses
        Bytes app_request;       // for fallback ordering
        std::set<std::uint32_t> awaiting;
        bool resolved = false;
    };

    static void merge_actions(TroxyActions& into, TroxyActions&& from);
    TroxyActions order_request(enclave::CostedCrypto& crypto,
                               sim::NodeId client, std::uint64_t conn_slot,
                               const hybster::RequestInfo& info,
                               ByteView app_request);
    void start_fast_read(enclave::CostedCrypto& crypto, TroxyActions& actions,
                         sim::NodeId client, std::uint64_t conn_slot,
                         const hybster::RequestInfo& info,
                         ByteView app_request, const CacheEntry& entry);
    void fast_read_fallback(enclave::CostedCrypto& crypto,
                            TroxyActions& actions, std::uint64_t query_id);
    void release_reply(enclave::CostedCrypto& crypto, TroxyActions& actions,
                       sim::NodeId client, std::uint64_t conn_slot,
                       Bytes app_reply);
    /// Per-connection plaintexts awaiting one coalesced seal at the end
    /// of a batched-voter transition.
    using ReleasePlan = std::map<sim::NodeId, std::vector<Bytes>>;
    /// Shared voting core: validates one reply, updates the tally, and on
    /// quorum maintains the cache and releases the client reply — either
    /// immediately (release_plan == nullptr, the unbatched path) or into
    /// the plan for one coalesced record per connection.
    void ingest_reply(enclave::CostedCrypto& crypto, TroxyActions& actions,
                      hybster::Reply&& reply, bool first_from_source,
                      ReleasePlan* release_plan,
                      std::set<std::string>* invalidated);
    /// Shared cache-maintenance + certification core of the two
    /// authenticate_reply* ecalls. `invalidated` carries the
    /// per-transition dedup set (see invalidate_write_set).
    enclave::Certificate certify_executed_reply(enclave::CostedCrypto& crypto,
                                                const hybster::Request& request,
                                                const hybster::Reply& reply,
                                                bool first_in_batch,
                                                std::set<std::string>* invalidated);
    /// Drops a completed write's whole key set (state_key + extra_keys)
    /// from the fast-read cache. Within one batched transition each
    /// distinct key is dropped once: `invalidated` (when non-null)
    /// remembers the keys this transition already invalidated, and a
    /// cache_.put between two writes erases its key from the set again
    /// so the second write re-invalidates.
    void invalidate_write_set(const std::string& state_key,
                              const std::vector<std::string>& extra_keys,
                              std::set<std::string>* invalidated);
    /// True when any key the (read) request touches has an own write
    /// still in flight.
    [[nodiscard]] bool has_pending_write(
        const hybster::RequestInfo& info) const;
    /// Shared remote-side core: verifies the requester certificate and
    /// builds the response; nullopt when the query must be dropped.
    std::optional<CacheResponse> answer_cache_query(
        enclave::CostedCrypto& crypto, const CacheQuery& query,
        bool first_from_source);
    /// Shared voting-side core: validates one remote response, completes
    /// or falls back its fast read. Releases go out immediately
    /// (release_plan == nullptr, the unbatched path) or into the plan for
    /// one coalesced record per connection.
    void ingest_cache_response(enclave::CostedCrypto& crypto,
                               TroxyActions& actions,
                               const CacheResponse& response,
                               bool first_from_source,
                               ReleasePlan* release_plan);
    void collect_releases(sim::NodeId client, std::uint64_t conn_slot,
                          Bytes app_reply, ReleasePlan& plan);
    void flush_releases(enclave::CostedCrypto& crypto, TroxyActions& actions,
                        ReleasePlan& plan);
    [[nodiscard]] crypto::Sha256Digest app_request_digest(
        enclave::CostedCrypto& crypto, ByteView app_request) const;

    sim::NodeId host_node_;
    std::uint32_t replica_id_;
    hybster::Config config_;
    std::shared_ptr<enclave::TrinX> trinx_;
    crypto::X25519Keypair identity_;
    Classifier classifier_;
    const sim::CostProfile& profile_;
    TroxyOptions options_;

    enclave::EnclaveGate gate_;
    FastReadCache cache_;
    MissRateMonitor monitor_;
    Rng rng_;

    std::map<sim::NodeId, Connection> connections_;
    std::map<std::uint64_t, PendingVote> pending_votes_;   // by request no.
    std::map<std::uint64_t, PendingFastRead> fast_reads_;  // by query id
    /// Keys with own writes still in flight: fast reads on them would
    /// almost certainly conflict, so they are conservatively ordered.
    std::map<std::string, int> pending_write_keys_;
    /// Keys invalidated and not re-cached since (every cache_.put erases
    /// its key): the cache provably holds none of them, so a repeat write
    /// skips the whole invalidation — the cross-batch counterpart of the
    /// per-transition `invalidated` dedup set.
    std::set<std::string> invalidated_unrecached_;
    std::uint64_t next_request_number_ = 1;
    std::uint64_t next_query_id_ = 1;
    std::uint64_t handshake_counter_ = 0;

    Status stats_;
};

}  // namespace troxy::troxy_core
