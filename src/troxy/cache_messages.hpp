// Fast-read coordination messages between Troxies (Channel::TroxyCache).
//
// A voting Troxy with a local cache hit queries f randomly chosen remote
// Troxies (Fig. 4). The exchange is authenticated with trusted-subsystem
// certificates; responses carry the *hash* of the cached result rather
// than the full reply ("the fast-read cache only needs to transfer the
// hash of the reply between replicas", §VI-C2), which is what makes the
// fast path cheap for large replies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "enclave/trinx.hpp"
#include "sim/node.hpp"

namespace troxy::troxy_core {

struct CacheQuery {
    sim::NodeId requester = 0;
    std::uint64_t query_id = 0;
    std::string state_key;
    crypto::Sha256Digest request_digest{};
    enclave::Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static CacheQuery decode(Reader& r);

    /// Exact encoded size, used to charge the real ecall copy-in cost.
    [[nodiscard]] std::size_t wire_size() const noexcept {
        return 4 + 8 + 4 + state_key.size() + crypto::kSha256DigestSize +
               sizeof(enclave::Certificate);
    }
};

struct CacheResponse {
    sim::NodeId responder = 0;
    std::uint32_t responder_replica = 0;
    std::uint64_t query_id = 0;
    bool has_entry = false;
    crypto::Sha256Digest request_digest{};
    crypto::Sha256Digest result_digest{};
    enclave::Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static CacheResponse decode(Reader& r);

    /// Exact encoded size, used to charge the real ecall copy-in cost.
    [[nodiscard]] static constexpr std::size_t wire_size() noexcept {
        return 4 + 4 + 8 + 1 + 2 * crypto::kSha256DigestSize +
               sizeof(enclave::Certificate);
    }
};

/// A burst of queries from one contact Troxy, answered by the remote in a
/// single enclave transition. Count framing is u16, matching the secure
/// channel's record limit.
struct CacheQueryBatch {
    std::vector<CacheQuery> queries;

    void encode(Writer& w) const;
    static CacheQueryBatch decode(Reader& r);
};

/// The remote's answers for a whole query burst, applied at the contact in
/// a single enclave transition.
struct CacheResponseBatch {
    std::vector<CacheResponse> responses;

    void encode(Writer& w) const;
    static CacheResponseBatch decode(Reader& r);
};

using CacheMessage = std::variant<CacheQuery, CacheResponse, CacheQueryBatch,
                                  CacheResponseBatch>;

Bytes encode_cache_message(const CacheMessage& message);
std::optional<CacheMessage> decode_cache_message(ByteView data);

}  // namespace troxy::troxy_core
