#include "common/bytes.hpp"

#include <stdexcept>

namespace troxy {

Bytes to_bytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
    return std::string(b.begin(), b.end());
}

std::string hex_encode(ByteView b) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(b.size() * 2);
    for (std::uint8_t byte : b) {
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0x0f]);
    }
    return out;
}

namespace {
int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("hex_decode: invalid hex character");
}
}  // namespace

Bytes hex_decode(std::string_view hex) {
    if (hex.size() % 2 != 0) {
        throw std::invalid_argument("hex_decode: odd-length input");
    }
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 |
                                                hex_value(hex[i + 1])));
    }
    return out;
}

bool constant_time_equal(ByteView a, ByteView b) noexcept {
    if (a.size() != b.size()) return false;
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
    return diff == 0;
}

Bytes concat(ByteView a, ByteView b) {
    Bytes out;
    out.reserve(a.size() + b.size());
    out.insert(out.end(), a.begin(), a.end());
    out.insert(out.end(), b.begin(), b.end());
    return out;
}

Bytes concat(ByteView a, ByteView b, ByteView c) {
    Bytes out;
    out.reserve(a.size() + b.size() + c.size());
    out.insert(out.end(), a.begin(), a.end());
    out.insert(out.end(), b.begin(), b.end());
    out.insert(out.end(), c.begin(), c.end());
    return out;
}

}  // namespace troxy
