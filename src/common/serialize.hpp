// Bounds-checked binary serialization.
//
// All wire messages (BFT protocol, secure-channel records, cache queries)
// are encoded with Writer and decoded with Reader. Integers are
// little-endian fixed width; variable data is length-prefixed with u32.
// Reader reports malformed input via DecodeError so a Byzantine peer can
// never crash a correct node with a truncated message.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "common/bytes.hpp"

namespace troxy {

/// Thrown by Reader on truncated or oversized input. Protocol code
/// catches this at the message boundary and discards the message,
/// per the system model ("if a correct component receives a message it
/// cannot verify, the component discards the message").
class DecodeError : public std::runtime_error {
  public:
    explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
  public:
    Writer() = default;

    /// Reuses `backing`'s allocation (pool-recycled wire buffers): the
    /// buffer is cleared, its capacity kept.
    explicit Writer(Bytes&& backing) noexcept : buf_(std::move(backing)) {
        buf_.clear();
    }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { put_le(v, 2); }
    void u32(std::uint32_t v) { put_le(v, 4); }
    void u64(std::uint64_t v) { put_le(v, 8); }

    /// Length-prefixed byte string (u32 length).
    void bytes(ByteView b) {
        u32(static_cast<std::uint32_t>(b.size()));
        raw(b);
    }

    void str(std::string_view s) {
        bytes(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
    }

    /// Appends bytes without a length prefix (fixed-size fields like MACs).
    void raw(ByteView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

    /// Pre-reserves capacity for `n` further bytes. Hot-path encoders call
    /// this once up front so a message serializes with one allocation.
    void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

    [[nodiscard]] const Bytes& data() const& noexcept { return buf_; }
    [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

    /// Mutable backing buffer — for encoders that post-process an
    /// already-written region in place (e.g. sealing plaintext where it
    /// sits instead of sealing a copy).
    [[nodiscard]] Bytes& buffer() noexcept { return buf_; }

  private:
    void put_le(std::uint64_t v, int n) {
        for (int i = 0; i < n; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    Bytes buf_;
};

class Reader {
  public:
    explicit Reader(ByteView data) noexcept : data_(data) {}

    std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
    std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
    std::uint64_t u64() { return get_le(8); }

    Bytes bytes() {
        const std::uint32_t n = u32();
        if (n > remaining()) throw DecodeError("length prefix exceeds input");
        return raw(n);
    }

    std::string str() {
        const Bytes b = bytes();
        return std::string(b.begin(), b.end());
    }

    Bytes raw(std::size_t n) {
        require(n);
        Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return out;
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return data_.size() - pos_;
    }
    [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

    /// Call after decoding a full message to reject trailing garbage.
    void expect_done() const {
        if (!done()) throw DecodeError("trailing bytes after message");
    }

  private:
    void require(std::size_t n) const {
        if (remaining() < n) throw DecodeError("truncated input");
    }

    std::uint64_t get_le(int n) {
        require(static_cast<std::size_t>(n));
        std::uint64_t v = 0;
        for (int i = 0; i < n; ++i) {
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        }
        pos_ += static_cast<std::size_t>(n);
        return v;
    }

    ByteView data_;
    std::size_t pos_ = 0;
};

}  // namespace troxy
