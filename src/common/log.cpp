#include "common/log.hpp"

#include <cstdio>

namespace troxy {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void log_raw(LogLevel level, std::string_view msg) {
    std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                 static_cast<int>(msg.size()), msg.data());
}

}  // namespace troxy
