// Deterministic random number generation.
//
// Every stochastic element of the simulation (network jitter, workload
// inter-arrival times, Byzantine fault injection, replica selection for
// fast reads) draws from an explicitly seeded Rng so experiments replay
// bit-identically from a seed. xoshiro256** is used for generation,
// SplitMix64 for seeding, matching the reference implementations.
#pragma once

#include <array>
#include <cstdint>

namespace troxy {

class Rng {
  public:
    explicit Rng(std::uint64_t seed) noexcept;

    /// Uniform 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling,
    /// so the distribution is exactly uniform.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Normal(mean, stddev) via Box-Muller.
    double next_normal(double mean, double stddev) noexcept;

    /// Exponential with the given mean (for Poisson arrivals).
    double next_exponential(double mean) noexcept;

    /// Derives an independent child stream; children with distinct tags
    /// never correlate with the parent or each other.
    Rng fork(std::uint64_t tag) noexcept;

  private:
    std::array<std::uint64_t, 4> state_;
};

}  // namespace troxy
