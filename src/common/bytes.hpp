// Byte-buffer utilities shared by every module.
//
// A `Bytes` value is the universal currency for payloads, messages and keys
// throughout the code base. Helpers here convert between strings, hex and
// raw buffers without ever aliasing unowned memory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace troxy {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Copies a string's characters into a fresh byte buffer.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as text (bytes are copied).
std::string to_string(ByteView b);

/// Lower-case hex encoding, two characters per byte.
std::string hex_encode(ByteView b);

/// Decodes lower- or upper-case hex; throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes hex_decode(std::string_view hex);

/// Constant-time equality; returns false for different lengths without
/// leaking where the first mismatch occurred.
bool constant_time_equal(ByteView a, ByteView b) noexcept;

/// Concatenates buffers (used to build MAC inputs and transcripts).
Bytes concat(ByteView a, ByteView b);
Bytes concat(ByteView a, ByteView b, ByteView c);

}  // namespace troxy
