#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace troxy {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
    // Lemire-style rejection: discard the biased tail.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

double Rng::next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_normal(double mean, double stddev) noexcept {
    // Box-Muller; u1 must be non-zero for the log.
    double u1 = 0.0;
    while (u1 == 0.0) u1 = next_double();
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::next_exponential(double mean) noexcept {
    double u = 0.0;
    while (u == 0.0) u = next_double();
    return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t tag) noexcept {
    return Rng(next() ^ (tag * 0x9e3779b97f4a7c15ULL));
}

}  // namespace troxy
