// Minimal leveled logging.
//
// Logging defaults to Warn so tests and benchmarks stay quiet; integration
// debugging raises the level per-scope with LogLevelGuard. Formatting uses
// a small "{}" substitution helper (libstdc++ 12 lacks <format>).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace troxy {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

void log_raw(LogLevel level, std::string_view msg);

namespace detail {

inline void format_into(std::ostringstream& out, std::string_view fmt) {
    out << fmt;
}

template <typename First, typename... Rest>
void format_into(std::ostringstream& out, std::string_view fmt,
                 const First& first, const Rest&... rest) {
    const std::size_t pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        out << fmt;
        return;
    }
    out << fmt.substr(0, pos) << first;
    format_into(out, fmt.substr(pos + 2), rest...);
}

}  // namespace detail

/// Formats by replacing each "{}" in order with the streamed argument.
template <typename... Args>
std::string format(std::string_view fmt, const Args&... args) {
    std::ostringstream out;
    detail::format_into(out, fmt, args...);
    return out.str();
}

template <typename... Args>
void log(LogLevel level, std::string_view fmt, const Args&... args) {
    if (level < log_level()) return;
    log_raw(level, format(fmt, args...));
}

#define TROXY_TRACE(...) ::troxy::log(::troxy::LogLevel::Trace, __VA_ARGS__)
#define TROXY_DEBUG(...) ::troxy::log(::troxy::LogLevel::Debug, __VA_ARGS__)
#define TROXY_INFO(...) ::troxy::log(::troxy::LogLevel::Info, __VA_ARGS__)
#define TROXY_WARN(...) ::troxy::log(::troxy::LogLevel::Warn, __VA_ARGS__)
#define TROXY_ERROR(...) ::troxy::log(::troxy::LogLevel::Error, __VA_ARGS__)

/// RAII guard that restores the previous level on scope exit.
class LogLevelGuard {
  public:
    explicit LogLevelGuard(LogLevel level) noexcept : previous_(log_level()) {
        set_log_level(level);
    }
    ~LogLevelGuard() { set_log_level(previous_); }
    LogLevelGuard(const LogLevelGuard&) = delete;
    LogLevelGuard& operator=(const LogLevelGuard&) = delete;

  private:
    LogLevel previous_;
};

}  // namespace troxy
