// Invariant checking that stays on in release builds.
//
// Protocol invariants (quorum intersection, sequence monotonicity, cache
// consistency) are cheap relative to simulated work, so they are always
// checked; a violated invariant is a bug in this library, never recoverable
// input error, hence abort.
#pragma once

#include <cstdio>
#include <cstdlib>

#define TROXY_ASSERT(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::fprintf(stderr, "TROXY_ASSERT failed at %s:%d: %s — %s\n", \
                         __FILE__, __LINE__, #cond, msg);                    \
            std::abort();                                                    \
        }                                                                    \
    } while (0)
