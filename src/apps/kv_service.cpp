#include "apps/kv_service.hpp"

#include "common/serialize.hpp"

namespace troxy::apps {

namespace {
enum class Op : std::uint8_t { Get = 0, Put = 1, Delete = 2, Scan = 3 };
}

hybster::RequestInfo KvService::classify(ByteView request) const {
    hybster::RequestInfo info;
    try {
        Reader r(request);
        const auto op = static_cast<Op>(r.u8());
        const std::string key = r.str();
        info.is_read = (op == Op::Get || op == Op::Scan);
        // SCAN touches a whole prefix partition, keyed "scan:<prefix>".
        // A PUT/DELETE under that prefix changes the partition's
        // contents, so a mutation's write set is its exact key plus
        // every scan partition covering it — "scan:<p>" for each prefix
        // p of the key, including the empty prefix (a full scan). That
        // closure is what keeps cached scans coherent: the enclave
        // invalidates (and gates fast reads on) every key in the set.
        // It stays out of execution-conflict classes — two mutations
        // under a common prefix still commute at the exact-key level.
        if (op == Op::Scan) {
            info.state_key = "scan:" + key;
        } else {
            info.state_key = "kv:" + key;
            if (op == Op::Put || op == Op::Delete) {
                info.extra_keys.reserve(key.size() + 1);
                for (std::size_t len = 0; len <= key.size(); ++len) {
                    info.extra_keys.push_back("scan:" + key.substr(0, len));
                }
            }
        }
    } catch (const DecodeError&) {
        info.is_read = true;
        info.state_key = "invalid";
    }
    return info;
}

Bytes KvService::execute(ByteView request) {
    try {
        Reader r(request);
        const auto op = static_cast<Op>(r.u8());
        const std::string key = r.str();
        switch (op) {
            case Op::Get: {
                const auto it = store_.find(key);
                return to_bytes(it == store_.end() ? "" : it->second);
            }
            case Op::Put: {
                const std::string value = r.str();
                std::string previous;
                if (auto it = store_.find(key); it != store_.end()) {
                    previous = it->second;
                }
                store_[key] = value;
                return to_bytes(previous);
            }
            case Op::Delete: {
                std::string previous;
                if (auto it = store_.find(key); it != store_.end()) {
                    previous = it->second;
                    store_.erase(it);
                }
                return to_bytes(previous);
            }
            case Op::Scan: {
                Writer w;
                std::vector<std::string> matches;
                for (auto it = store_.lower_bound(key);
                     it != store_.end() && it->first.starts_with(key); ++it) {
                    matches.push_back(it->first);
                }
                w.u32(static_cast<std::uint32_t>(matches.size()));
                for (const std::string& k : matches) w.str(k);
                return std::move(w).take();
            }
        }
        return to_bytes("ERR unknown op");
    } catch (const DecodeError&) {
        return to_bytes("ERR malformed request");
    }
}

Bytes KvService::checkpoint() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(store_.size()));
    for (const auto& [key, value] : store_) {
        w.str(key);
        w.str(value);
    }
    return std::move(w).take();
}

void KvService::restore(ByteView snapshot) {
    store_.clear();
    Reader r(snapshot);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string key = r.str();
        store_[std::move(key)] = r.str();
    }
}

sim::Duration KvService::execution_cost(ByteView request) const {
    return sim::nanoseconds(800 + request.size() / 10);
}

Bytes KvService::make_get(std::string_view key) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::Get));
    w.str(key);
    return std::move(w).take();
}

Bytes KvService::make_put(std::string_view key, std::string_view value) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::Put));
    w.str(key);
    w.str(value);
    return std::move(w).take();
}

Bytes KvService::make_delete(std::string_view key) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::Delete));
    w.str(key);
    return std::move(w).take();
}

Bytes KvService::make_scan(std::string_view prefix) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::Scan));
    w.str(prefix);
    return std::move(w).take();
}

}  // namespace troxy::apps
