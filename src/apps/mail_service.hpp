// IMAP-style mailbox service — the paper's second motivating legacy
// protocol ("standardized protocols such as HTTP and IMAP are dominant",
// §I). A deliberately line-based, text protocol to show the Troxy needs
// nothing from a protocol beyond message boundaries and a read/write
// classifier:
//
//   LIST <mailbox>              → "N <id> <id> …"          (read)
//   FETCH <mailbox> <id>        → the message text           (read)
//   APPEND <mailbox> <text>     → "OK <id>"                  (write)
//   EXPUNGE <mailbox> <id>      → "OK" / "NO such message"   (write)
//
// State keys partition by mailbox, so the fast-read cache serves repeated
// LIST/FETCH traffic (the dominant IMAP pattern) and any APPEND/EXPUNGE
// on a mailbox invalidates exactly that mailbox's cached reads.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hybster/service.hpp"

namespace troxy::apps {

class MailService final : public hybster::Service {
  public:
    [[nodiscard]] hybster::RequestInfo classify(
        ByteView request) const override;
    Bytes execute(ByteView request) override;
    [[nodiscard]] Bytes checkpoint() const override;
    void restore(ByteView snapshot) override;
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override;

    static Bytes make_list(std::string_view mailbox);
    static Bytes make_fetch(std::string_view mailbox, std::uint64_t id);
    static Bytes make_append(std::string_view mailbox,
                             std::string_view text);
    static Bytes make_expunge(std::string_view mailbox, std::uint64_t id);

    [[nodiscard]] std::size_t message_count(const std::string& mailbox) const;

  private:
    struct Mailbox {
        std::uint64_t next_id = 1;
        std::map<std::uint64_t, std::string> messages;
    };

    std::map<std::string, Mailbox> mailboxes_;
};

}  // namespace troxy::apps
