#include "apps/mail_service.hpp"

#include <charconv>

#include "common/serialize.hpp"

namespace troxy::apps {

namespace {

struct Parsed {
    std::string verb;
    std::string mailbox;
    std::string rest;  // id or message text
};

Parsed parse_line(ByteView request) {
    const std::string line(request.begin(), request.end());
    Parsed parsed;
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos) {
        parsed.verb = line;
        return parsed;
    }
    parsed.verb = line.substr(0, sp1);
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
        parsed.mailbox = line.substr(sp1 + 1);
        return parsed;
    }
    parsed.mailbox = line.substr(sp1 + 1, sp2 - sp1 - 1);
    parsed.rest = line.substr(sp2 + 1);
    return parsed;
}

std::uint64_t parse_id(const std::string& text) {
    std::uint64_t id = 0;
    std::from_chars(text.data(), text.data() + text.size(), id);
    return id;
}

}  // namespace

hybster::RequestInfo MailService::classify(ByteView request) const {
    const Parsed parsed = parse_line(request);
    hybster::RequestInfo info;
    info.is_read = parsed.verb == "LIST" || parsed.verb == "FETCH";
    // Every operation touches its mailbox partition — that is the cache
    // key for LIST/FETCH replies and the conflict class for execution,
    // so disjoint mailboxes run on parallel lanes. An EXPUNGE names the
    // exact message it removes; the per-message key in its write set
    // records the finer-grained mutation for invalidation consumers.
    info.state_key = "mail:" + parsed.mailbox;
    if (parsed.verb == "EXPUNGE") {
        info.extra_keys.push_back("mail:" + parsed.mailbox +
                                  ":msg:" + parsed.rest);
    }
    return info;
}

Bytes MailService::execute(ByteView request) {
    const Parsed parsed = parse_line(request);
    if (parsed.verb == "LIST") {
        const auto it = mailboxes_.find(parsed.mailbox);
        std::string out =
            std::to_string(it == mailboxes_.end() ? 0
                                                  : it->second.messages.size());
        if (it != mailboxes_.end()) {
            for (const auto& [id, _] : it->second.messages) {
                out += " " + std::to_string(id);
            }
        }
        return to_bytes(out);
    }
    if (parsed.verb == "FETCH") {
        const auto it = mailboxes_.find(parsed.mailbox);
        if (it == mailboxes_.end()) return to_bytes("NO such mailbox");
        const auto msg = it->second.messages.find(parse_id(parsed.rest));
        if (msg == it->second.messages.end()) {
            return to_bytes("NO such message");
        }
        return to_bytes(msg->second);
    }
    if (parsed.verb == "APPEND") {
        Mailbox& mailbox = mailboxes_[parsed.mailbox];
        const std::uint64_t id = mailbox.next_id++;
        mailbox.messages[id] = parsed.rest;
        return to_bytes("OK " + std::to_string(id));
    }
    if (parsed.verb == "EXPUNGE") {
        const auto it = mailboxes_.find(parsed.mailbox);
        if (it != mailboxes_.end() &&
            it->second.messages.erase(parse_id(parsed.rest)) > 0) {
            return to_bytes("OK");
        }
        return to_bytes("NO such message");
    }
    return to_bytes("BAD command");
}

Bytes MailService::checkpoint() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(mailboxes_.size()));
    for (const auto& [name, mailbox] : mailboxes_) {
        w.str(name);
        w.u64(mailbox.next_id);
        w.u32(static_cast<std::uint32_t>(mailbox.messages.size()));
        for (const auto& [id, text] : mailbox.messages) {
            w.u64(id);
            w.str(text);
        }
    }
    return std::move(w).take();
}

void MailService::restore(ByteView snapshot) {
    mailboxes_.clear();
    Reader r(snapshot);
    const std::uint32_t mailbox_count = r.u32();
    for (std::uint32_t i = 0; i < mailbox_count; ++i) {
        const std::string name = r.str();
        Mailbox& mailbox = mailboxes_[name];
        mailbox.next_id = r.u64();
        const std::uint32_t message_count = r.u32();
        for (std::uint32_t j = 0; j < message_count; ++j) {
            const std::uint64_t id = r.u64();
            mailbox.messages[id] = r.str();
        }
    }
}

sim::Duration MailService::execution_cost(ByteView request) const {
    return sim::nanoseconds(1'000 + request.size() / 8);
}

Bytes MailService::make_list(std::string_view mailbox) {
    return to_bytes("LIST " + std::string(mailbox));
}

Bytes MailService::make_fetch(std::string_view mailbox, std::uint64_t id) {
    return to_bytes("FETCH " + std::string(mailbox) + " " +
                    std::to_string(id));
}

Bytes MailService::make_append(std::string_view mailbox,
                               std::string_view text) {
    return to_bytes("APPEND " + std::string(mailbox) + " " +
                    std::string(text));
}

Bytes MailService::make_expunge(std::string_view mailbox, std::uint64_t id) {
    return to_bytes("EXPUNGE " + std::string(mailbox) + " " +
                    std::to_string(id));
}

std::size_t MailService::message_count(const std::string& mailbox) const {
    const auto it = mailboxes_.find(mailbox);
    return it == mailboxes_.end() ? 0 : it->second.messages.size();
}

}  // namespace troxy::apps
