// Key-value store service: a realistic application for the examples and
// integration tests.
//
// Application protocol:
//   GET:    u8 0, key string        → value string ("" if absent)
//   PUT:    u8 1, key, value        → previous value
//   DELETE: u8 2, key               → previous value
//   SCAN:   u8 3, prefix            → count ‖ matching keys (read-only,
//                                     state key = prefix partition)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hybster/service.hpp"

namespace troxy::apps {

class KvService final : public hybster::Service {
  public:
    [[nodiscard]] hybster::RequestInfo classify(
        ByteView request) const override;
    Bytes execute(ByteView request) override;
    [[nodiscard]] Bytes checkpoint() const override;
    void restore(ByteView snapshot) override;
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override;

    static Bytes make_get(std::string_view key);
    static Bytes make_put(std::string_view key, std::string_view value);
    static Bytes make_delete(std::string_view key);
    static Bytes make_scan(std::string_view prefix);

    [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

  private:
    std::map<std::string, std::string> store_;
};

}  // namespace troxy::apps
