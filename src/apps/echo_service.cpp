#include "apps/echo_service.hpp"

#include "common/serialize.hpp"

namespace troxy::apps {

namespace {
constexpr std::size_t kHeaderSize = 1 + 8 + 4 + 4;
constexpr std::size_t kWriteAckSize = 10;
}  // namespace

EchoService::Parsed EchoService::parse(ByteView request) {
    Reader r(request);
    Parsed p;
    const std::uint8_t op = r.u8();
    p.is_read = op == 0;
    p.multi = op == 2;
    p.key = r.u64();
    if (p.multi) p.partner = r.u64();
    p.reply_size = r.u32();
    return p;  // padding ignored
}

hybster::RequestInfo EchoService::classify(ByteView request) const {
    const Parsed p = parse(request);
    hybster::RequestInfo info;
    info.is_read = p.is_read;
    info.state_key = "k" + std::to_string(p.key);
    if (p.multi) {
        info.extra_keys.push_back("k" + std::to_string(p.partner));
    }
    return info;
}

Bytes EchoService::expected_read_reply(std::uint64_t key,
                                       std::uint64_t version,
                                       std::size_t reply_size) {
    Bytes reply;
    reply.reserve(reply_size);
    // Deterministic stream from (key, version): xorshift over the seed.
    std::uint64_t state = key * 0x9e3779b97f4a7c15ULL + version + 1;
    while (reply.size() < reply_size) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        for (int i = 0; i < 8 && reply.size() < reply_size; ++i) {
            reply.push_back(static_cast<std::uint8_t>(state >> (8 * i)));
        }
    }
    return reply;
}

Bytes EchoService::execute(ByteView request) {
    const Parsed p = parse(request);
    if (p.is_read) {
        return expected_read_reply(p.key, versions_[p.key], p.reply_size);
    }
    if (p.multi) ++versions_[p.partner];
    const std::uint64_t version = ++versions_[p.key];
    Writer ack;
    ack.u8(1);  // "written"
    ack.u64(version);
    ack.u8(0);
    Bytes out = std::move(ack).take();
    out.resize(kWriteAckSize, 0);
    return out;
}

Bytes EchoService::checkpoint() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(versions_.size()));
    for (const auto& [key, version] : versions_) {
        w.u64(key);
        w.u64(version);
    }
    return std::move(w).take();
}

void EchoService::restore(ByteView snapshot) {
    versions_.clear();
    Reader r(snapshot);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t key = r.u64();
        versions_[key] = r.u64();
    }
}

sim::Duration EchoService::execution_cost(ByteView request) const {
    const Parsed p = parse(request);
    const std::size_t touched =
        request.size() + (p.is_read ? p.reply_size : kWriteAckSize);
    // ~0.1 ns/byte of state/reply handling plus a small fixed cost.
    return sim::nanoseconds(500 + touched / 10);
}

Bytes EchoService::make_read(std::uint64_t key, std::size_t request_size,
                             std::size_t reply_size) {
    Writer w;
    w.u8(0);
    w.u64(key);
    w.u32(static_cast<std::uint32_t>(reply_size));
    const std::size_t pad =
        request_size > kHeaderSize ? request_size - kHeaderSize : 0;
    w.u32(static_cast<std::uint32_t>(pad));
    Bytes out = std::move(w).take();
    out.resize(out.size() + pad, 0);
    return out;
}

Bytes EchoService::make_write(std::uint64_t key, std::size_t request_size) {
    Writer w;
    w.u8(1);
    w.u64(key);
    w.u32(0);
    const std::size_t pad =
        request_size > kHeaderSize ? request_size - kHeaderSize : 0;
    w.u32(static_cast<std::uint32_t>(pad));
    Bytes out = std::move(w).take();
    out.resize(out.size() + pad, 0);
    return out;
}

Bytes EchoService::make_multi_write(std::uint64_t key,
                                    std::uint64_t partner,
                                    std::size_t request_size) {
    Writer w;
    w.u8(2);
    w.u64(key);
    w.u64(partner);
    w.u32(0);
    const std::size_t header = kHeaderSize + 8;
    const std::size_t pad =
        request_size > header ? request_size - header : 0;
    w.u32(static_cast<std::uint32_t>(pad));
    Bytes out = std::move(w).take();
    out.resize(out.size() + pad, 0);
    return out;
}

std::uint64_t EchoService::version_of(std::uint64_t key) const {
    const auto it = versions_.find(key);
    return it == versions_.end() ? 0 : it->second;
}

}  // namespace troxy::apps
