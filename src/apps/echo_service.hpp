// Microbenchmark service (§VI-C): "a simple service that accepts requests
// and generates a reply message of configurable size. Read and write
// requests can be distinguished by their operation types."
//
// Request wire format (application level — the Troxy treats it as an
// opaque record and only uses the classifier):
//   u8  op            0 = read, 1 = write, 2 = multiwrite
//   u64 key           state partition touched
//   u64 partner       (op 2 only) second state partition touched
//   u32 reply_size    requested reply payload size
//   u32 pad_size      request padding length
//   pad_size × u8     padding (zeros; makes the request the desired size)
//
// Op 2 is a two-key write whose classifier closure names the partner key
// in extra_keys — under a sharded deployment a multiwrite whose keys live
// on different shards exercises the cross-shard commit path. The ack
// carries the primary key's new version in the usual 10-byte format.
//
// State: a version counter per key. Writes bump the version and return a
// 10-byte acknowledgement (the paper's write replies are always 10 B);
// reads return reply_size bytes deterministically derived from
// (key, version), so a stale read is *detectably* stale.
#pragma once

#include <cstdint>
#include <map>

#include "hybster/service.hpp"

namespace troxy::apps {

class EchoService final : public hybster::Service {
  public:
    [[nodiscard]] hybster::RequestInfo classify(
        ByteView request) const override;
    Bytes execute(ByteView request) override;
    [[nodiscard]] Bytes checkpoint() const override;
    void restore(ByteView snapshot) override;
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override;

    /// Builds a read request of approximately `request_size` bytes asking
    /// for a `reply_size`-byte reply.
    static Bytes make_read(std::uint64_t key, std::size_t request_size,
                           std::size_t reply_size);

    /// Builds a write request of approximately `request_size` bytes.
    static Bytes make_write(std::uint64_t key, std::size_t request_size);

    /// Builds a two-key write (op 2) of approximately `request_size`
    /// bytes; bumps both `key` and `partner`, acks `key`'s new version.
    static Bytes make_multi_write(std::uint64_t key, std::uint64_t partner,
                                  std::size_t request_size);

    /// The deterministic reply a read of (key, version) must produce —
    /// used by tests to check linearizability.
    static Bytes expected_read_reply(std::uint64_t key,
                                     std::uint64_t version,
                                     std::size_t reply_size);

    [[nodiscard]] std::uint64_t version_of(std::uint64_t key) const;

  private:
    struct Parsed {
        bool is_read = false;
        bool multi = false;
        std::uint64_t key = 0;
        std::uint64_t partner = 0;
        std::size_t reply_size = 0;
    };
    [[nodiscard]] static Parsed parse(ByteView request);

    std::map<std::uint64_t, std::uint64_t> versions_;
};

}  // namespace troxy::apps
