// Deferred send buffer.
//
// A message handler runs synchronously in simulation but its CPU cost must
// elapse before its outgoing messages hit the wire. Handlers queue sends
// into an Outbox while a CostMeter accumulates their cost; flush()
// schedules the actual transmissions after the metered time on the node's
// earliest-free core.
#pragma once

#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "enclave/meter.hpp"
#include "net/fabric.hpp"
#include "sim/node.hpp"

namespace troxy::net {

class Outbox {
  public:
    Outbox(Fabric& fabric, sim::Node& node) : fabric_(fabric), node_(node) {}

    /// Queues `message` for `to`; transmitted at flush time.
    void send(sim::NodeId to, Bytes message) {
        pending_.emplace_back(to, std::move(message));
    }

    /// Queues a callback to run at flush time (local effects that must
    /// wait for the processing delay, e.g. completing a client reply).
    void defer(std::function<void()> fn) {
        deferred_.push_back(std::move(fn));
    }

    /// Schedules all queued sends and callbacks after `meter`'s
    /// accumulated cost; resets the meter. `not_before` floors the
    /// completion (used for enclave-thread serialization) without
    /// charging CPU for the wait.
    void flush(enclave::CostMeter& meter, sim::SimTime not_before = 0) {
        if (pending_.empty() && deferred_.empty()) {
            node_.charge(meter.take());
            return;
        }
        auto sends = std::move(pending_);
        pending_.clear();
        auto callbacks = std::move(deferred_);
        deferred_.clear();
        const sim::NodeId from = node_.id();
        // NB: the Outbox itself is usually stack-allocated and gone by the
        // time this event fires — capture the long-lived Fabric, not this.
        // exec_ordered keeps the node's wire order equal to its message
        // processing order (single egress path), which the protocol's
        // trusted-counter continuity and the secure channel's stream
        // semantics both rely on.
        Fabric* fabric = &fabric_;
        node_.exec_ordered(
            meter.take(),
            [fabric, from, sends = std::move(sends),
             callbacks = std::move(callbacks)]() mutable {
                for (auto& [to, message] : sends) {
                    fabric->send(from, to, std::move(message));
                }
                for (auto& fn : callbacks) fn();
            },
            not_before);
    }

    [[nodiscard]] sim::Node& node() noexcept { return node_; }
    [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }

  private:
    Fabric& fabric_;
    sim::Node& node_;
    std::vector<std::pair<sim::NodeId, Bytes>> pending_;
    std::vector<std::function<void()>> deferred_;
};

}  // namespace troxy::net
