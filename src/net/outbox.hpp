// Deferred send buffer.
//
// A message handler runs synchronously in simulation but its CPU cost must
// elapse before its outgoing messages hit the wire. Handlers queue sends
// into an Outbox while a CostMeter accumulates their cost; flush()
// schedules the actual transmissions after the metered time on the node's
// earliest-free core.
//
// With coalescing enabled, flush() groups the queued messages by
// destination and ships each group as ONE Bundle frame — one wire record
// per destination burst. The per-record cost is charged once per emitted
// record (per burst), not per queued message, so the meter matches the
// one-record-per-burst wire behaviour.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "enclave/meter.hpp"
#include "net/envelope.hpp"
#include "net/fabric.hpp"
#include "sim/node.hpp"

namespace troxy::net {

class Outbox {
  public:
    Outbox(Fabric& fabric, sim::Node& node, bool coalesce = false,
           sim::Duration record_cost = 0)
        : fabric_(fabric),
          node_(node),
          coalesce_(coalesce),
          record_cost_(record_cost) {}

    /// Queues `message` for `to`; transmitted at flush time.
    void send(sim::NodeId to, Bytes message) {
        pending_.emplace_back(to, std::move(message));
    }

    /// Queues a callback to run at flush time (local effects that must
    /// wait for the processing delay, e.g. completing a client reply).
    void defer(std::function<void()> fn) {
        deferred_.push_back(std::move(fn));
    }

    /// Schedules all queued sends and callbacks after `meter`'s
    /// accumulated cost; resets the meter. `not_before` floors the
    /// completion (used for enclave-thread serialization) without
    /// charging CPU for the wait.
    void flush(enclave::CostMeter& meter, sim::SimTime not_before = 0) {
        if (pending_.empty() && deferred_.empty()) {
            node_.charge(meter.take());
            return;
        }
        auto sends = std::move(pending_);
        pending_.clear();
        auto callbacks = std::move(deferred_);
        deferred_.clear();
        if (coalesce_) sends = coalesce_bursts(std::move(sends));
        // One per-record charge per emitted wire record: after coalescing
        // a destination burst costs one record, not one per queued message.
        meter.add(record_cost_ * static_cast<sim::Duration>(sends.size()));
        const sim::NodeId from = node_.id();
        // NB: the Outbox itself is usually stack-allocated and gone by the
        // time this event fires — capture the long-lived Fabric, not this.
        // exec_ordered keeps the node's wire order equal to its message
        // processing order (single egress path), which the protocol's
        // trusted-counter continuity and the secure channel's stream
        // semantics both rely on.
        Fabric* fabric = &fabric_;
        node_.exec_ordered(
            meter.take(),
            [fabric, from, sends = std::move(sends),
             callbacks = std::move(callbacks)]() mutable {
                for (auto& [to, message] : sends) {
                    fabric->send(from, to, std::move(message));
                }
                for (auto& fn : callbacks) fn();
            },
            not_before);
    }

    [[nodiscard]] sim::Node& node() noexcept { return node_; }
    [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }

  private:
    /// Groups consecutive-by-destination queued messages into Bundle
    /// frames. Order within a destination is preserved (stable grouping);
    /// a destination with a single message keeps its original frame so
    /// batch-1 traffic is byte-identical to the uncoalesced path.
    static std::vector<std::pair<sim::NodeId, Bytes>> coalesce_bursts(
        std::vector<std::pair<sim::NodeId, Bytes>> sends) {
        std::map<sim::NodeId, std::vector<Bytes>> groups;
        std::vector<sim::NodeId> order;
        for (auto& [to, message] : sends) {
            auto [it, inserted] = groups.try_emplace(to);
            if (inserted) order.push_back(to);
            it->second.push_back(std::move(message));
        }
        std::vector<std::pair<sim::NodeId, Bytes>> out;
        out.reserve(order.size());
        for (const sim::NodeId to : order) {
            auto& burst = groups[to];
            if (burst.size() == 1) {
                out.emplace_back(to, std::move(burst.front()));
            } else {
                out.emplace_back(to, make_bundle(burst));
            }
        }
        return out;
    }

    Fabric& fabric_;
    sim::Node& node_;
    bool coalesce_ = false;
    sim::Duration record_cost_ = 0;
    std::vector<std::pair<sim::NodeId, Bytes>> pending_;
    std::vector<std::function<void()>> deferred_;
};

}  // namespace troxy::net
