// Deferred send buffer.
//
// A message handler runs synchronously in simulation but its CPU cost must
// elapse before its outgoing messages hit the wire. Handlers queue sends
// into an Outbox while a CostMeter accumulates their cost; flush()
// schedules the actual transmissions after the metered time on the node's
// earliest-free core.
//
// With coalescing enabled, flush() groups the queued messages by
// destination and ships each group as ONE Bundle frame — one wire record
// per destination burst. The per-record cost is charged once per emitted
// *Bundle* record: a destination with a single message keeps its original
// frame and pays exactly what the uncoalesced path pays, so batch-1
// traffic is cost- and byte-identical whether coalescing is on or off.
//
// With zero_copy enabled, Bundle frames are built as FragmentChains —
// inline framing headers plus the queued messages referenced in place —
// and shipped through the scatter-gather network path: no per-burst
// flatten copy, and the chain storage itself is recycled by the network.
// A transport profile, when given, charges the per-record send cost
// (syscall or doorbell plus staging copies) to the flushing meter; the
// zero-copy path pays the per-byte cost only on inline header bytes.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "enclave/meter.hpp"
#include "net/envelope.hpp"
#include "net/fabric.hpp"
#include "net/fragment.hpp"
#include "sim/cost.hpp"
#include "sim/node.hpp"

namespace troxy::net {

class Outbox {
  public:
    Outbox(Fabric& fabric, sim::Node& node, bool coalesce = false,
           sim::Duration record_cost = 0, bool zero_copy = false,
           const sim::TransportProfile* transport = nullptr)
        : fabric_(fabric),
          node_(node),
          coalesce_(coalesce),
          zero_copy_(zero_copy),
          record_cost_(record_cost),
          transport_(transport) {}

    /// Queues `message` for `to`; transmitted at flush time.
    void send(sim::NodeId to, Bytes message) {
        Pending p;
        p.to = to;
        p.message = std::move(message);
        pending_.push_back(std::move(p));
    }

    /// Queues an already-chained frame (e.g. a zero-copy state-transfer
    /// response whose chunk payloads are referenced in place). Travels
    /// through the same coalescing path as flat messages: a coalesced
    /// Bundle splices the chain's fragments in, keeping the materialized
    /// bytes identical to what send() of the flattened frame would ship.
    void send_chain(sim::NodeId to, sim::FragmentChain chain) {
        Pending p;
        p.to = to;
        p.chain = std::move(chain);
        p.chained = true;
        pending_.push_back(std::move(p));
    }

    /// Queues a callback to run at flush time (local effects that must
    /// wait for the processing delay, e.g. completing a client reply).
    void defer(std::function<void()> fn) {
        deferred_.push_back(std::move(fn));
    }

    /// Schedules all queued sends and callbacks after `meter`'s
    /// accumulated cost; resets the meter. `not_before` floors the
    /// completion (used for enclave-thread serialization) without
    /// charging CPU for the wait.
    void flush(enclave::CostMeter& meter, sim::SimTime not_before = 0) {
        if (pending_.empty() && deferred_.empty()) {
            node_.charge(meter.take());
            return;
        }
        auto callbacks = std::move(deferred_);
        deferred_.clear();
        std::vector<OutFrame> frames = collect_frames(meter);
        const sim::NodeId from = node_.id();
        // NB: the Outbox itself is usually stack-allocated and gone by the
        // time this event fires — capture the long-lived Fabric, not this.
        // exec_ordered keeps the node's wire order equal to its message
        // processing order (single egress path), which the protocol's
        // trusted-counter continuity and the secure channel's stream
        // semantics both rely on.
        Fabric* fabric = &fabric_;
        node_.exec_ordered(
            meter.take(),
            [fabric, from, frames = std::move(frames),
             callbacks = std::move(callbacks)]() mutable {
                for (OutFrame& f : frames) {
                    if (f.chained) {
                        fabric->send_chain(from, f.to, std::move(f.chain));
                    } else {
                        fabric->send(from, f.to, std::move(f.frame));
                    }
                }
                for (auto& fn : callbacks) fn();
            },
            not_before);
    }

    [[nodiscard]] sim::Node& node() noexcept { return node_; }
    [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }

  private:
    /// One wire frame ready to emit: either a contiguous buffer or a
    /// fragment chain (`chained` selects).
    struct OutFrame {
        sim::NodeId to = 0;
        Bytes frame;
        sim::FragmentChain chain;
        bool chained = false;
    };

    /// One queued send: a flat wrapped message or a pre-built chain.
    struct Pending {
        sim::NodeId to = 0;
        Bytes message;
        sim::FragmentChain chain;
        bool chained = false;

        [[nodiscard]] std::size_t size() const noexcept {
            return chained ? chain.size() : message.size();
        }
    };

    /// Turns the queue into wire frames, grouping consecutive-by-
    /// destination messages into Bundle frames when coalescing. Order
    /// within a destination is preserved (stable grouping); a destination
    /// with a single message keeps its original frame. Charges `meter`
    /// the per-record cost for each emitted Bundle and, when a transport
    /// profile is set, the per-frame send cost.
    std::vector<OutFrame> collect_frames(enclave::CostMeter& meter) {
        auto sends = std::move(pending_);
        pending_.clear();
        std::vector<OutFrame> frames;
        if (!coalesce_) {
            frames.reserve(sends.size());
            for (Pending& p : sends) {
                OutFrame f;
                f.to = p.to;
                f.chained = p.chained;
                f.frame = std::move(p.message);
                f.chain = std::move(p.chain);
                frames.push_back(std::move(f));
            }
        } else {
            std::map<sim::NodeId, std::vector<Pending>> groups;
            std::vector<sim::NodeId> order;
            for (Pending& p : sends) {
                auto [it, inserted] = groups.try_emplace(p.to);
                if (inserted) order.push_back(p.to);
                it->second.push_back(std::move(p));
            }
            frames.reserve(order.size());
            for (const sim::NodeId to : order) {
                auto& burst = groups[to];
                OutFrame f;
                f.to = to;
                if (burst.size() == 1) {
                    // Batch-1: the original frame travels unchanged.
                    f.chained = burst.front().chained;
                    f.frame = std::move(burst.front().message);
                    f.chain = std::move(burst.front().chain);
                } else if (zero_copy_) {
                    // Mixed Bundle chain: flat messages are referenced as
                    // Owned payloads, already-chained messages splice
                    // their fragments in under the same length prefix —
                    // materialized bytes match make_bundle() of the
                    // flattened burst exactly.
                    f.chain = fabric_.network().acquire_chain();
                    append_bundle_head(f.chain, burst.size());
                    for (Pending& p : burst) {
                        append_bundle_prefix(f.chain, p.size());
                        if (p.chained) {
                            f.chain.splice(std::move(p.chain));
                            fabric_.network().recycle_chain(
                                std::move(p.chain));
                        } else {
                            f.chain.append_owned(std::move(p.message));
                        }
                    }
                    f.chained = true;
                } else {
                    sim::BufferPool& pool = fabric_.network().pool();
                    std::vector<Bytes> flat;
                    flat.reserve(burst.size());
                    for (Pending& p : burst) {
                        if (p.chained) {
                            flat.push_back(p.chain.materialize(&pool));
                            p.chain.recycle(pool);
                            fabric_.network().recycle_chain(
                                std::move(p.chain));
                        } else {
                            flat.push_back(std::move(p.message));
                        }
                    }
                    f.frame = make_bundle(flat);
                }
                frames.push_back(std::move(f));
            }
        }
        // One per-record charge per emitted wire record: a coalesced
        // burst costs one record, and a singleton group costs exactly
        // what the same message costs uncoalesced — no Bundle surcharge.
        meter.add(record_cost_ *
                  static_cast<sim::Duration>(frames.size()));
        if (transport_ != nullptr) {
            for (const OutFrame& f : frames) {
                meter.add(transport_->tx(
                    f.chained ? f.chain.copied_bytes() : f.frame.size()));
            }
        }
        return frames;
    }

    Fabric& fabric_;
    sim::Node& node_;
    bool coalesce_ = false;
    bool zero_copy_ = false;
    sim::Duration record_cost_ = 0;
    const sim::TransportProfile* transport_ = nullptr;
    std::vector<Pending> pending_;
    std::vector<std::function<void()>> deferred_;
};

}  // namespace troxy::net
