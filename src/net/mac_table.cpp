#include "net/mac_table.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace troxy::net {

MacTable MacTable::for_group(ByteView master_secret,
                             const std::vector<sim::NodeId>& ids) {
    MacTable table;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        for (std::size_t j = i + 1; j < ids.size(); ++j) {
            Writer info;
            info.u32(std::min(ids[i], ids[j]));
            info.u32(std::max(ids[i], ids[j]));
            Bytes key = crypto::hkdf(to_bytes("troxy-pairwise"),
                                     master_secret, info.data(), 32);
            table.set_key(ids[i], ids[j], std::move(key));
        }
    }
    return table;
}

void MacTable::set_key(sim::NodeId a, sim::NodeId b, Bytes key) {
    keys_[{std::min(a, b), std::max(a, b)}] = std::move(key);
}

const Bytes* MacTable::key_for(sim::NodeId a, sim::NodeId b) const {
    const auto it = keys_.find({std::min(a, b), std::max(a, b)});
    return it == keys_.end() ? nullptr : &it->second;
}

bool MacTable::has_key(sim::NodeId a, sim::NodeId b) const {
    return key_for(a, b) != nullptr;
}

Bytes MacTable::frame(sim::NodeId from, sim::NodeId to, ByteView message) {
    Writer w;
    w.u32(from);
    w.u32(to);
    w.raw(message);
    return std::move(w).take();
}

crypto::HmacTag MacTable::sign(enclave::CostedCrypto& crypto,
                               sim::NodeId from, sim::NodeId to,
                               ByteView message) const {
    const Bytes* key = key_for(from, to);
    TROXY_ASSERT(key != nullptr, "no pairwise key for this link");
    return crypto.mac(*key, frame(from, to, message));
}

bool MacTable::verify(enclave::CostedCrypto& crypto, sim::NodeId from,
                      sim::NodeId to, ByteView message,
                      const crypto::HmacTag& tag) const {
    const Bytes* key = key_for(from, to);
    if (key == nullptr) return false;
    return crypto.mac_verify(*key, frame(from, to, message), tag);
}

}  // namespace troxy::net
