#include "net/fabric.hpp"

#include <utility>

namespace troxy::net {

Fabric::Fabric(sim::Simulator& simulator, sim::Network& network)
    : sim_(simulator), network_(network) {}

void Fabric::attach(sim::NodeId id, Handler handler) {
    handlers_[id] = std::move(handler);
}

void Fabric::attach_chain(sim::NodeId id, ChainHandler handler) {
    chain_handlers_[id] = std::move(handler);
}

void Fabric::detach(sim::NodeId id) {
    handlers_.erase(id);
    chain_handlers_.erase(id);
}

void Fabric::send(sim::NodeId from, sim::NodeId to, Bytes message) {
    // The payload send path carries the buffer on a slab-recycled packet
    // record and dispatches through a function pointer, so the hot path
    // allocates neither a closure nor a payload copy.
    network_.send(from, to, std::move(message),
                  sim::Network::PayloadTarget{this, &Fabric::dispatch});
}

void Fabric::dispatch(void* ctx, sim::NodeId from, sim::NodeId to,
                      Bytes payload) {
    auto* fabric = static_cast<Fabric*>(ctx);
    const auto it = fabric->handlers_.find(to);
    if (it == fabric->handlers_.end()) {
        // Crashed endpoint: the message dies here, but its buffer does not.
        fabric->network_.recycle(std::move(payload));
        return;
    }
    it->second(from, std::move(payload));
}

void Fabric::send_chain(sim::NodeId from, sim::NodeId to,
                        sim::FragmentChain chain) {
    network_.send(from, to, std::move(chain),
                  sim::Network::ChainTarget{this, &Fabric::dispatch_chain});
}

void Fabric::dispatch_chain(void* ctx, sim::NodeId from, sim::NodeId to,
                            sim::FragmentChain chain) {
    auto* fabric = static_cast<Fabric*>(ctx);
    sim::Network& network = fabric->network_;
    const auto chained = fabric->chain_handlers_.find(to);
    if (chained != fabric->chain_handlers_.end()) {
        chained->second(from, std::move(chain));
        return;
    }
    const auto it = fabric->handlers_.find(to);
    if (it == fabric->handlers_.end()) {
        network.recycle_chain(std::move(chain));
        return;
    }
    // Non-chain-aware receiver: flatten the frame into a pooled buffer —
    // exactly the bytes a copying sender would have delivered.
    network.count_materialization();
    Bytes flat = chain.materialize(&network.pool());
    network.recycle_chain(std::move(chain));
    it->second(from, std::move(flat));
}

}  // namespace troxy::net
