#include "net/fabric.hpp"

#include <utility>

namespace troxy::net {

Fabric::Fabric(sim::Simulator& simulator, sim::Network& network)
    : sim_(simulator), network_(network) {}

void Fabric::attach(sim::NodeId id, Handler handler) {
    handlers_[id] = std::move(handler);
}

void Fabric::detach(sim::NodeId id) { handlers_.erase(id); }

void Fabric::send(sim::NodeId from, sim::NodeId to, Bytes message) {
    const std::size_t size = message.size();
    network_.send(from, to, size,
                  [this, from, to, msg = std::move(message)]() mutable {
                      const auto it = handlers_.find(to);
                      if (it == handlers_.end()) return;  // crashed endpoint
                      it->second(from, std::move(msg));
                  });
}

}  // namespace troxy::net
