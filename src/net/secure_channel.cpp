#include "net/secure_channel.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace troxy::net {

namespace {

constexpr std::size_t kHelloNonceSize = 16;

Bytes transcript_of(ByteView client_hello, ByteView server_ephemeral) {
    return concat(client_hello, server_ephemeral);
}

Bytes handshake_mac_key(ByteView dh_static, ByteView transcript) {
    return crypto::hkdf(to_bytes("troxy-hs-salt"), dh_static,
                        crypto::sha256_bytes(transcript), 32);
}

}  // namespace

SessionKeys derive_session_keys(ByteView dh_static, ByteView dh_ephemeral,
                                ByteView transcript) {
    const Bytes ikm = concat(dh_static, dh_ephemeral);
    const Bytes material = crypto::hkdf(
        to_bytes("troxy-session-salt"), ikm, crypto::sha256_bytes(transcript),
        2 * (crypto::kChaChaKeySize + crypto::kChaChaNonceSize));

    SessionKeys keys;
    const std::uint8_t* p = material.data();
    std::memcpy(keys.client_key.data(), p, crypto::kChaChaKeySize);
    p += crypto::kChaChaKeySize;
    std::memcpy(keys.client_iv.data(), p, crypto::kChaChaNonceSize);
    p += crypto::kChaChaNonceSize;
    std::memcpy(keys.server_key.data(), p, crypto::kChaChaKeySize);
    p += crypto::kChaChaKeySize;
    std::memcpy(keys.server_iv.data(), p, crypto::kChaChaNonceSize);
    return keys;
}

RecordProtection::RecordProtection(const crypto::ChaChaKey& key,
                                   const crypto::ChaChaNonce& iv) noexcept
    : key_(key), iv_(iv) {}

Bytes RecordProtection::protect(ByteView plaintext) {
    return protect_many({plaintext});
}

Bytes RecordProtection::protect_many(const std::vector<ByteView>& messages) {
    Writer record;
    protect_many_into(record, messages);
    return std::move(record).take();
}

void RecordProtection::protect_many_into(
    Writer& out, const std::vector<ByteView>& messages) {
    TROXY_ASSERT(!messages.empty() &&
                     messages.size() <= kMaxMessagesPerRecord,
                 "record burst must hold 1..65535 messages");
    const std::uint64_t seq = send_seq_++;
    std::uint8_t aad[8];
    for (int i = 0; i < 8; ++i) {
        aad[i] = static_cast<std::uint8_t>(seq >> (8 * i));
    }
    const crypto::ChaChaNonce nonce = crypto::make_record_nonce(iv_, seq);

    // The burst is framed *inside* the sealed plaintext (count ‖
    // length-prefixed messages), so the AEAD tag covers the count and a
    // receiver can never be tricked into splitting a record differently.
    // Gather encoding: the plaintext is written straight into the record
    // at its final wire position and sealed in place — no inner buffer,
    // no sealed copy, no record copy.
    std::size_t total = 2;
    for (const ByteView m : messages) total += 4 + m.size();
    out.reserve(8 + 4 + total + crypto::kAeadTagSize);
    out.u64(seq);
    out.u32(static_cast<std::uint32_t>(total + crypto::kAeadTagSize));
    const std::size_t plaintext_at = out.size();
    out.u16(static_cast<std::uint16_t>(messages.size()));
    for (const ByteView m : messages) out.bytes(m);
    crypto::aead_seal_inplace(key_, nonce, ByteView(aad, sizeof aad),
                              out.buffer(), plaintext_at);
}

std::vector<Bytes> RecordProtection::unprotect(ByteView record) {
    std::vector<Bytes> deliverable;
    try {
        Reader r(record);
        const std::uint64_t seq = r.u64();
        const Bytes sealed = r.bytes();
        r.expect_done();

        // Replay and window checks: a sequence number is accepted at most
        // once, and only within the receive window. A coalesced record is
        // one unit here — replaying it re-delivers none of its messages.
        if (seq < next_deliver_) return deliverable;                // replay
        if (seq >= next_deliver_ + kReceiveWindow) return deliverable;
        if (received_.contains(seq)) return deliverable;            // replay

        Writer aad;
        aad.u64(seq);
        const crypto::ChaChaNonce nonce = crypto::make_record_nonce(iv_, seq);
        auto plaintext = crypto::aead_open(key_, nonce, aad.data(), sealed);
        if (!plaintext) return deliverable;  // tampered

        Reader inner(*plaintext);
        const std::uint16_t count = inner.u16();
        if (count == 0) return deliverable;  // malformed burst
        std::vector<Bytes> messages;
        messages.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) {
            messages.push_back(inner.bytes());
        }
        inner.expect_done();

        received_.insert(seq);
        reorder_buffer_.emplace(seq, std::move(messages));

        // Release everything that is now consecutive.
        for (auto it = reorder_buffer_.find(next_deliver_);
             it != reorder_buffer_.end() && it->first == next_deliver_;
             it = reorder_buffer_.find(next_deliver_)) {
            for (Bytes& m : it->second) deliverable.push_back(std::move(m));
            reorder_buffer_.erase(it);
            received_.erase(next_deliver_);
            ++next_deliver_;
        }
        return deliverable;
    } catch (const DecodeError&) {
        return deliverable;
    }
}

SecureChannelClient::SecureChannelClient(
    const crypto::X25519Key& pinned_server_key, ByteView seed)
    : pinned_server_key_(pinned_server_key),
      ephemeral_(crypto::x25519_keypair_from_seed(seed)) {
    const Bytes nonce_material = crypto::hkdf(
        to_bytes("troxy-hello-nonce"), seed, {}, kHelloNonceSize);
    hello_nonce_ = nonce_material;
}

Bytes SecureChannelClient::client_hello() const {
    Writer w;
    w.raw(ephemeral_.public_key);
    w.raw(hello_nonce_);
    return std::move(w).take();
}

bool SecureChannelClient::finish(ByteView server_hello) {
    if (server_hello.size() !=
        crypto::kX25519KeySize + crypto::kSha256DigestSize) {
        return false;
    }
    crypto::X25519Key server_ephemeral;
    std::memcpy(server_ephemeral.data(), server_hello.data(),
                crypto::kX25519KeySize);
    const ByteView mac = server_hello.subspan(crypto::kX25519KeySize);

    const crypto::X25519Key dh_static =
        crypto::x25519(ephemeral_.private_key, pinned_server_key_);
    const Bytes hello = client_hello();
    const Bytes transcript = transcript_of(hello, server_ephemeral);
    const Bytes mac_key = handshake_mac_key(dh_static, transcript);
    if (!crypto::hmac_verify(mac_key, transcript, mac)) return false;

    const crypto::X25519Key dh_ephemeral =
        crypto::x25519(ephemeral_.private_key, server_ephemeral);
    const SessionKeys keys =
        derive_session_keys(dh_static, dh_ephemeral, transcript);
    send_ = RecordProtection(keys.client_key, keys.client_iv);
    recv_ = RecordProtection(keys.server_key, keys.server_iv);
    established_ = true;
    return true;
}

Bytes SecureChannelClient::protect(ByteView plaintext) {
    return send_.protect(plaintext);
}

Bytes SecureChannelClient::protect_many(
    const std::vector<ByteView>& messages) {
    return send_.protect_many(messages);
}

void SecureChannelClient::protect_many_into(
    Writer& out, const std::vector<ByteView>& messages) {
    send_.protect_many_into(out, messages);
}

std::vector<Bytes> SecureChannelClient::unprotect(ByteView record) {
    return recv_.unprotect(record);
}

SecureChannelServer::SecureChannelServer(
    const crypto::X25519Keypair& static_keys)
    : static_keys_(static_keys) {}

std::optional<Bytes> SecureChannelServer::accept(
    enclave::CostedCrypto& crypto_ops, ByteView client_hello, ByteView seed) {
    if (client_hello.size() != crypto::kX25519KeySize + kHelloNonceSize) {
        return std::nullopt;
    }
    crypto::X25519Key client_ephemeral;
    std::memcpy(client_ephemeral.data(), client_hello.data(),
                crypto::kX25519KeySize);

    const crypto::X25519Keypair server_ephemeral =
        crypto::x25519_keypair_from_seed(seed);

    crypto_ops.charge_dh();  // DH(static, client ephemeral)
    const crypto::X25519Key dh_static =
        crypto::x25519(static_keys_.private_key, client_ephemeral);
    crypto_ops.charge_dh();  // DH(ephemeral, client ephemeral)
    const crypto::X25519Key dh_ephemeral =
        crypto::x25519(server_ephemeral.private_key, client_ephemeral);

    const Bytes transcript =
        transcript_of(client_hello, server_ephemeral.public_key);
    const Bytes mac_key = handshake_mac_key(dh_static, transcript);
    const crypto::HmacTag mac = crypto_ops.mac(mac_key, transcript);

    const SessionKeys keys =
        derive_session_keys(dh_static, dh_ephemeral, transcript);
    send_ = RecordProtection(keys.server_key, keys.server_iv);
    recv_ = RecordProtection(keys.client_key, keys.client_iv);
    established_ = true;

    Writer w;
    w.raw(server_ephemeral.public_key);
    w.raw(mac);
    return std::move(w).take();
}

Bytes SecureChannelServer::protect(ByteView plaintext) {
    return send_.protect(plaintext);
}

Bytes SecureChannelServer::protect_many(
    const std::vector<ByteView>& messages) {
    return send_.protect_many(messages);
}

void SecureChannelServer::protect_many_into(
    Writer& out, const std::vector<ByteView>& messages) {
    send_.protect_many_into(out, messages);
}

std::vector<Bytes> SecureChannelServer::unprotect(ByteView record) {
    return recv_.unprotect(record);
}

}  // namespace troxy::net
