// Scatter-gather bundle framing.
//
// encode_bundle() is the zero-copy sibling of make_bundle(): instead of
// copying every wrapped message into one contiguous frame, it builds a
// FragmentChain — a 3-byte inline header (channel byte ‖ u16 count),
// then per message a 4-byte inline length prefix followed by the message
// buffer referenced in place. Materializing the chain reproduces
// make_bundle()'s bytes exactly, so the two paths are interchangeable on
// the wire.
//
// take_bundle_messages() is the receive-side inverse for chain-aware
// hosts: it moves the coalesced messages back out of the chain without a
// flatten/re-split round trip.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "net/envelope.hpp"
#include "sim/fragment.hpp"

namespace troxy::net {

using sim::Fragment;
using sim::FragmentChain;

/// Max messages per Bundle frame (the u16 count field).
inline constexpr std::size_t kMaxBundleMessages = 65535;

/// Appends the 3-byte Bundle frame header (channel byte ‖ u16 count) —
/// byte-identical to make_bundle()'s header.
inline void append_bundle_head(FragmentChain& chain, std::size_t count) {
    TROXY_ASSERT(count > 0 && count <= kMaxBundleMessages,
                 "bundle message count out of range");
    const auto c = static_cast<std::uint16_t>(count);
    const std::uint8_t head[3] = {
        static_cast<std::uint8_t>(Channel::Bundle),
        static_cast<std::uint8_t>(c & 0xff),
        static_cast<std::uint8_t>(c >> 8),
    };
    chain.append_inline(ByteView(head, sizeof head));
}

/// Appends a Bundle member's 4-byte LE length prefix.
inline void append_bundle_prefix(FragmentChain& chain, std::size_t length) {
    const auto len = static_cast<std::uint32_t>(length);
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(len & 0xff),
        static_cast<std::uint8_t>((len >> 8) & 0xff),
        static_cast<std::uint8_t>((len >> 16) & 0xff),
        static_cast<std::uint8_t>(len >> 24),
    };
    chain.append_inline(ByteView(prefix, sizeof prefix));
}

/// Appends Bundle framing for `wrapped` to `chain` without copying the
/// messages: byte-identical to make_bundle(wrapped) when materialized.
/// Consumes the message buffers (they travel inside the chain).
inline void encode_bundle(FragmentChain& chain, std::vector<Bytes>&& wrapped) {
    append_bundle_head(chain, wrapped.size());
    for (Bytes& m : wrapped) {
        append_bundle_prefix(chain, m.size());
        chain.append_owned(std::move(m));
    }
    wrapped.clear();
}

/// Moves the coalesced messages out of a chain built by encode_bundle().
/// Strict about shape: returns nullopt unless the chain alternates
/// 4-byte inline length prefixes with matching Owned payloads under a
/// 3-byte Bundle header — callers fall back to materialize()+unbundle()
/// for foreign chains.
inline std::optional<std::vector<Bytes>> take_bundle_messages(
    FragmentChain&& chain) {
    std::vector<Fragment>& frags = chain.fragments();
    if (frags.empty()) return std::nullopt;
    const ByteView head = frags[0].view();
    if (frags[0].kind() != Fragment::Kind::Inline || head.size() != 3 ||
        head[0] != static_cast<std::uint8_t>(Channel::Bundle)) {
        return std::nullopt;
    }
    const std::size_t count =
        static_cast<std::size_t>(head[1]) |
        (static_cast<std::size_t>(head[2]) << 8);
    if (count == 0 || frags.size() != 1 + 2 * count) return std::nullopt;
    std::vector<Bytes> messages;
    messages.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Fragment& prefix = frags[1 + 2 * i];
        Fragment& payload = frags[2 + 2 * i];
        if (prefix.kind() != Fragment::Kind::Inline ||
            prefix.view().size() != 4 ||
            payload.kind() != Fragment::Kind::Owned) {
            return std::nullopt;
        }
        const ByteView p = prefix.view();
        const std::size_t len = static_cast<std::size_t>(p[0]) |
                                (static_cast<std::size_t>(p[1]) << 8) |
                                (static_cast<std::size_t>(p[2]) << 16) |
                                (static_cast<std::size_t>(p[3]) << 24);
        if (payload.size() != len) return std::nullopt;
        messages.push_back(payload.take_owned());
    }
    chain.clear();
    return messages;
}

}  // namespace troxy::net
