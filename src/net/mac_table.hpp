// Pairwise HMAC message certificates for replica↔replica traffic.
//
// "Messages exchanged between Troxies and replicas are authenticated using
// common message certificates, as they are prevalent for BFT" (§I). Each
// ordered pair of processes shares a secret; a certificate is the HMAC of
// the message under that secret plus sender/receiver framing, so a
// certificate for one link can never be replayed on another.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "enclave/meter.hpp"
#include "sim/node.hpp"

namespace troxy::net {

class MacTable {
  public:
    /// Derives all pairwise keys for `ids` from a deployment master secret
    /// (stands in for the usual per-pair key establishment).
    static MacTable for_group(ByteView master_secret,
                              const std::vector<sim::NodeId>& ids);

    /// Adds a single pairwise key (both directions use the same secret).
    void set_key(sim::NodeId a, sim::NodeId b, Bytes key);

    /// Certificate for a message sent `from` → `to`.
    crypto::HmacTag sign(enclave::CostedCrypto& crypto, sim::NodeId from,
                         sim::NodeId to, ByteView message) const;

    [[nodiscard]] bool verify(enclave::CostedCrypto& crypto, sim::NodeId from,
                              sim::NodeId to, ByteView message,
                              const crypto::HmacTag& tag) const;

    [[nodiscard]] bool has_key(sim::NodeId a, sim::NodeId b) const;

  private:
    [[nodiscard]] const Bytes* key_for(sim::NodeId a, sim::NodeId b) const;
    [[nodiscard]] static Bytes frame(sim::NodeId from, sim::NodeId to,
                                     ByteView message);

    std::map<std::pair<sim::NodeId, sim::NodeId>, Bytes> keys_;
};

}  // namespace troxy::net
