// TLS-like secure channel between legacy clients and the Troxy.
//
// The paper terminates TLS inside the enclave (TaLoS, §V-A) so the
// untrusted replica never sees session keys and "each endpoint will never
// accept the same chunk of encrypted data twice" (§III-D). This module
// implements an equivalent channel as a pure state machine over byte
// buffers — no I/O — so the server half can live inside the simulated
// enclave and the client half inside an unmodified legacy client.
//
// Handshake (Noise-NK-shaped, 1-RTT):
//   client → server : ClientHello  = client ephemeral public key ‖ nonce
//   server → client : ServerHello  = server ephemeral public key ‖
//                                    MAC(k_hs, transcript)
// where k_hs is derived from DH(client_eph, server_static); the MAC proves
// the server controls the static key the client pinned (the paper's
// provisioned TLS private key). Session keys for the two directions come
// from HKDF over both DH results and the transcript hash.
//
// Records: AEAD(ChaCha20-Poly1305) with per-direction sequence numbers in
// the nonce and as associated data. A sequence number is accepted at most
// once (sliding-window replay suppression, DTLS-style), so a replayed
// record is always rejected — the anti-replay property §III-D relies on.
// The receiver additionally reassembles records into sequence order
// before delivery (TCP-under-TLS stream semantics), so the application
// above always observes an in-order byte-message stream even though the
// simulated multi-core endpoints may emit records slightly out of order.
//
// One record can carry several application messages: a pipeline burst is
// sealed once (protect_many), paying one AEAD pass and one wire record
// for the whole burst. The message count lives *inside* the sealed
// plaintext, so it is covered by the AEAD tag; replay suppression and
// reassembly operate on whole records exactly as for single-message ones
// — a replayed coalesced record is rejected as one unit and can never
// re-deliver any of its messages.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"
#include "enclave/meter.hpp"

namespace troxy::net {

/// Direction-specific record protection state.
class RecordProtection {
  public:
    /// Receive window: how far ahead of the next expected sequence a
    /// record may arrive before it is dropped.
    static constexpr std::uint64_t kReceiveWindow = 4096;

    /// Messages one record may coalesce (u16 count on the wire).
    static constexpr std::size_t kMaxMessagesPerRecord = 65535;

    RecordProtection() = default;
    RecordProtection(const crypto::ChaChaKey& key,
                     const crypto::ChaChaNonce& iv) noexcept;

    /// Seals one message into a record (header ‖ ciphertext ‖ tag).
    Bytes protect(ByteView plaintext);

    /// Seals a burst of messages into ONE record: one sequence number,
    /// one AEAD pass, one wire transmission for the whole burst.
    Bytes protect_many(const std::vector<ByteView>& messages);

    /// Gather variant: appends the record to `out` (which may already
    /// hold framing bytes), writing the plaintext directly at its final
    /// wire position and sealing it in place — the whole frame builds in
    /// one buffer with zero intermediate copies. Byte-identical to
    /// appending protect_many()'s result.
    void protect_many_into(Writer& out,
                           const std::vector<ByteView>& messages);

    /// Opens a record and returns every message that is now deliverable
    /// in sequence order (possibly none if this record only filled a
    /// buffer slot, possibly several if it closed a gap or carried a
    /// coalesced burst). Tampered, replayed, truncated or out-of-window
    /// records yield nothing and poison no state.
    std::vector<Bytes> unprotect(ByteView record);

    [[nodiscard]] std::uint64_t send_sequence() const noexcept {
        return send_seq_;
    }

  private:
    crypto::ChaChaKey key_{};
    crypto::ChaChaNonce iv_{};
    std::uint64_t send_seq_ = 0;
    std::uint64_t next_deliver_ = 0;
    /// seq → the record's messages (one or a coalesced burst).
    std::map<std::uint64_t, std::vector<Bytes>> reorder_buffer_;
    std::set<std::uint64_t> received_;  // ≥ next_deliver_, replay guard
};

struct SessionKeys {
    crypto::ChaChaKey client_key{};
    crypto::ChaChaNonce client_iv{};
    crypto::ChaChaKey server_key{};
    crypto::ChaChaNonce server_iv{};
};

/// Client half of the handshake; run by legacy clients (their TLS stack).
class SecureChannelClient {
  public:
    /// `pinned_server_key` is the server's static public key, obtained out
    /// of band (the paper's certificate distribution); `seed` provides the
    /// ephemeral key randomness.
    SecureChannelClient(const crypto::X25519Key& pinned_server_key,
                        ByteView seed);

    /// First flight (ClientHello bytes to send).
    [[nodiscard]] Bytes client_hello() const;

    /// Processes the ServerHello; returns false (channel unusable) if the
    /// server failed to prove possession of the pinned static key.
    bool finish(ByteView server_hello);

    [[nodiscard]] bool established() const noexcept { return established_; }

    /// Encrypts application data client→server.
    Bytes protect(ByteView plaintext);

    /// Seals a pipeline burst into one record (one AEAD, one wire record).
    Bytes protect_many(const std::vector<ByteView>& messages);

    /// Appends the sealed record to `out` (see RecordProtection).
    void protect_many_into(Writer& out,
                           const std::vector<ByteView>& messages);

    /// Decrypts server→client records; returns the messages now
    /// deliverable in order.
    std::vector<Bytes> unprotect(ByteView record);

  private:
    crypto::X25519Key pinned_server_key_;
    crypto::X25519Keypair ephemeral_;
    Bytes hello_nonce_;
    bool established_ = false;
    RecordProtection send_;
    RecordProtection recv_;
};

/// Server half; in a Troxy deployment this object lives inside the
/// enclave and its keys never leave it.
class SecureChannelServer {
  public:
    /// `static_keys` is the provisioned identity keypair; `crypto` charges
    /// handshake costs to the caller's meter.
    SecureChannelServer(const crypto::X25519Keypair& static_keys);

    /// Handles a ClientHello; returns the ServerHello to transmit, or
    /// nullopt if the hello was malformed. `crypto` meters the two DH
    /// operations and the transcript MAC.
    std::optional<Bytes> accept(enclave::CostedCrypto& crypto,
                                ByteView client_hello, ByteView seed);

    [[nodiscard]] bool established() const noexcept { return established_; }

    Bytes protect(ByteView plaintext);
    Bytes protect_many(const std::vector<ByteView>& messages);
    void protect_many_into(Writer& out,
                           const std::vector<ByteView>& messages);
    std::vector<Bytes> unprotect(ByteView record);

  private:
    crypto::X25519Keypair static_keys_;
    bool established_ = false;
    RecordProtection send_;
    RecordProtection recv_;
};

/// Key schedule shared by both ends (exposed for tests).
SessionKeys derive_session_keys(ByteView dh_static, ByteView dh_ephemeral,
                                ByteView transcript);

}  // namespace troxy::net
