// Top-level message envelope.
//
// A replica machine receives traffic of several kinds on the same NodeId:
// BFT protocol messages, legacy-client secure-channel records, Troxy
// cache-coordination messages. The one-byte envelope channel lets the
// untrusted host dispatch without parsing (it cannot parse client records
// — they are encrypted for the enclave).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "sim/pool.hpp"

namespace troxy::net {

enum class Channel : std::uint8_t {
    Hybster = 1,     // replica ↔ replica agreement traffic
    Pbft = 2,        // baseline PBFT agreement traffic (Prophecy substrate)
    Client = 3,      // legacy client ↔ server secure-channel records
    TroxyCache = 4,  // Troxy ↔ Troxy fast-read queries/responses
    Middlebox = 5,   // Prophecy middlebox ↔ replica traffic
    Bundle = 6,      // several wrapped messages coalesced into one frame
};

inline Bytes wrap(Channel channel, ByteView payload) {
    Writer w;
    w.reserve(1 + payload.size());
    w.u8(static_cast<std::uint8_t>(channel));
    w.raw(payload);
    return std::move(w).take();
}

/// Returns nullopt on an empty or unknown-channel message.
inline std::optional<std::pair<Channel, Bytes>> unwrap(ByteView message) {
    if (message.empty()) return std::nullopt;
    const auto channel = static_cast<Channel>(message[0]);
    switch (channel) {
        case Channel::Hybster:
        case Channel::Pbft:
        case Channel::Client:
        case Channel::TroxyCache:
        case Channel::Middlebox:
        case Channel::Bundle:
            break;
        default:
            return std::nullopt;
    }
    return std::make_pair(channel,
                          Bytes(message.begin() + 1, message.end()));
}

/// Zero-copy unwrap: the returned view aliases `message` (valid only as
/// long as the underlying buffer is). Use when the payload is consumed in
/// place, e.g. to peek at a channel or decode without detaching the bytes.
inline std::optional<std::pair<Channel, ByteView>> unwrap_view(
    ByteView message) {
    if (message.empty()) return std::nullopt;
    const auto channel = static_cast<Channel>(message[0]);
    switch (channel) {
        case Channel::Hybster:
        case Channel::Pbft:
        case Channel::Client:
        case Channel::TroxyCache:
        case Channel::Middlebox:
        case Channel::Bundle:
            break;
        default:
            return std::nullopt;
    }
    return std::make_pair(channel, message.subspan(1));
}

/// wrap() into a pool-recycled buffer: the envelope frame reuses a retired
/// wire buffer of the right size class instead of allocating a fresh one.
inline Bytes wrap_pooled(sim::BufferPool& pool, Channel channel,
                         ByteView payload) {
    Bytes frame = pool.acquire_empty(1 + payload.size());
    frame.push_back(static_cast<std::uint8_t>(channel));
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

/// Coalesces several already-wrapped messages into one Bundle frame:
/// Bundle ‖ u16 count ‖ (u32 len ‖ wrapped message)*. The receiving host
/// unbundles and dispatches each inner message as if it had arrived alone,
/// so one wire transmission carries a whole pipeline burst.
inline Bytes make_bundle(const std::vector<Bytes>& wrapped) {
    TROXY_ASSERT(wrapped.size() <= 65535,
                 "bundle message count exceeds u16 field");
    std::size_t total = 1 + 2;
    for (const Bytes& m : wrapped) total += 4 + m.size();
    Writer w;
    w.reserve(total);
    w.u8(static_cast<std::uint8_t>(Channel::Bundle));
    w.u16(static_cast<std::uint16_t>(wrapped.size()));
    for (const Bytes& m : wrapped) w.bytes(m);
    return std::move(w).take();
}

/// Splits a Bundle payload (the bytes after the channel byte) back into
/// the coalesced messages; nullopt on malformed framing.
inline std::optional<std::vector<Bytes>> unbundle(ByteView payload) {
    try {
        Reader r(payload);
        const std::uint16_t count = r.u16();
        if (count == 0) return std::nullopt;
        std::vector<Bytes> messages;
        messages.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) {
            messages.push_back(r.bytes());
        }
        r.expect_done();
        return messages;
    } catch (const DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace troxy::net
