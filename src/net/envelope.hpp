// Top-level message envelope.
//
// A replica machine receives traffic of several kinds on the same NodeId:
// BFT protocol messages, legacy-client secure-channel records, Troxy
// cache-coordination messages. The one-byte envelope channel lets the
// untrusted host dispatch without parsing (it cannot parse client records
// — they are encrypted for the enclave).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/bytes.hpp"
#include "common/serialize.hpp"

namespace troxy::net {

enum class Channel : std::uint8_t {
    Hybster = 1,     // replica ↔ replica agreement traffic
    Pbft = 2,        // baseline PBFT agreement traffic (Prophecy substrate)
    Client = 3,      // legacy client ↔ server secure-channel records
    TroxyCache = 4,  // Troxy ↔ Troxy fast-read queries/responses
    Middlebox = 5,   // Prophecy middlebox ↔ replica traffic
};

inline Bytes wrap(Channel channel, ByteView payload) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(channel));
    w.raw(payload);
    return std::move(w).take();
}

/// Returns nullopt on an empty or unknown-channel message.
inline std::optional<std::pair<Channel, Bytes>> unwrap(ByteView message) {
    if (message.empty()) return std::nullopt;
    const auto channel = static_cast<Channel>(message[0]);
    switch (channel) {
        case Channel::Hybster:
        case Channel::Pbft:
        case Channel::Client:
        case Channel::TroxyCache:
        case Channel::Middlebox:
            break;
        default:
            return std::nullopt;
    }
    return std::make_pair(channel,
                          Bytes(message.begin() + 1, message.end()));
}

}  // namespace troxy::net
