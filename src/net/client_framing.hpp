// Framing for client↔server traffic on Channel::Client.
//
// Three frame kinds: the two handshake flights of the secure channel and
// encrypted application records. The header is plaintext (it only routes),
// everything else is protected by the channel.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/bytes.hpp"

namespace troxy::net {

enum class ClientFrame : std::uint8_t {
    Hello = 0,
    ServerHello = 1,
    Record = 2,
};

inline Bytes frame_client(ClientFrame kind, ByteView payload) {
    Bytes out;
    out.reserve(payload.size() + 1);
    out.push_back(static_cast<std::uint8_t>(kind));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

inline std::optional<std::pair<ClientFrame, Bytes>> unframe_client(
    ByteView data) {
    if (data.empty()) return std::nullopt;
    const auto kind = static_cast<ClientFrame>(data[0]);
    if (kind != ClientFrame::Hello && kind != ClientFrame::ServerHello &&
        kind != ClientFrame::Record) {
        return std::nullopt;
    }
    return std::make_pair(kind, Bytes(data.begin() + 1, data.end()));
}

}  // namespace troxy::net
