// Message fabric: typed delivery between simulated processes.
//
// The Fabric owns the mapping from NodeId to message handler and routes
// byte messages through the simulated Network (which applies latency,
// bandwidth and FIFO ordering). Protocol components attach themselves and
// exchange opaque Bytes; interpretation is entirely up to the endpoints,
// so a Byzantine endpoint can send arbitrary garbage, exactly like on a
// real network.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace troxy::net {

class Fabric {
  public:
    using Handler = std::function<void(sim::NodeId from, Bytes message)>;
    using ChainHandler =
        std::function<void(sim::NodeId from, sim::FragmentChain chain)>;

    Fabric(sim::Simulator& simulator, sim::Network& network);

    /// Registers the handler invoked when a message arrives at `id`.
    void attach(sim::NodeId id, Handler handler);
    /// Optional scatter-gather receive path: frames sent as chains reach
    /// `handler` without being flattened. Endpoints without one still get
    /// chained traffic through their plain handler (the dispatcher
    /// materializes the frame), so chain-aware senders interoperate with
    /// every receiver.
    void attach_chain(sim::NodeId id, ChainHandler handler);
    void detach(sim::NodeId id);

    /// Sends `message` from `from` to `to`. Delivery is asynchronous; if
    /// the destination has no handler at delivery time the message is
    /// dropped (crashed process).
    void send(sim::NodeId from, sim::NodeId to, Bytes message);

    /// Scatter-gather send: ships the chain without materializing it.
    void send_chain(sim::NodeId from, sim::NodeId to,
                    sim::FragmentChain chain);

    [[nodiscard]] sim::Network& network() noexcept { return network_; }
    [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  private:
    static void dispatch(void* ctx, sim::NodeId from, sim::NodeId to,
                         Bytes payload);
    static void dispatch_chain(void* ctx, sim::NodeId from, sim::NodeId to,
                               sim::FragmentChain chain);

    sim::Simulator& sim_;
    sim::Network& network_;
    std::unordered_map<sim::NodeId, Handler> handlers_;
    std::unordered_map<sim::NodeId, ChainHandler> chain_handlers_;
};

}  // namespace troxy::net
