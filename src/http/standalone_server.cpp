#include "http/standalone_server.hpp"

#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"
#include "net/outbox.hpp"

namespace troxy::http {

StandaloneServer::StandaloneServer(net::Fabric& fabric, sim::Node& node,
                                   hybster::ServicePtr service,
                                   crypto::X25519Keypair channel_identity,
                                   const sim::CostProfile& profile)
    : fabric_(fabric),
      node_(node),
      service_(std::move(service)),
      identity_(channel_identity),
      profile_(profile) {}

void StandaloneServer::attach() {
    fabric_.attach(node_.id(), [this](sim::NodeId from, Bytes message) {
        on_message(from, std::move(message));
    });
}

void StandaloneServer::on_message(sim::NodeId from, Bytes message) {
    auto unwrapped = net::unwrap(message);
    if (!unwrapped || unwrapped->first != net::Channel::Client) return;
    auto frame = net::unframe_client(unwrapped->second);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    crypto.charge_dispatch();

    switch (frame->first) {
        case net::ClientFrame::Hello: {
            auto [it, inserted] = channels_.try_emplace(from, identity_);
            if (!inserted) {
                channels_.erase(it);
                it = channels_.try_emplace(from, identity_).first;
            }
            Writer seed;
            seed.u32(node_.id());
            seed.u64(++handshake_counter_);
            auto hello =
                it->second.accept(crypto, frame->second, seed.data());
            if (hello) {
                outbox.send(from,
                            net::wrap(net::Channel::Client,
                                      net::frame_client(
                                          net::ClientFrame::ServerHello,
                                          *hello)));
            } else {
                channels_.erase(from);
            }
            break;
        }
        case net::ClientFrame::Record: {
            const auto it = channels_.find(from);
            if (it == channels_.end() || !it->second.established()) break;
            crypto.charge(profile_.aead(frame->second.size()));
            for (const Bytes& app_request :
                 it->second.unprotect(frame->second)) {
                crypto.charge(service_->execution_cost(app_request));
                Bytes app_reply = service_->execute(app_request);

                crypto.charge(profile_.aead(app_reply.size()));
                Bytes record = it->second.protect(app_reply);
                outbox.send(from, net::wrap(net::Channel::Client,
                                            net::frame_client(
                                                net::ClientFrame::Record,
                                                record)));
            }
            break;
        }
        case net::ClientFrame::ServerHello:
            break;
    }
    outbox.flush(meter);
}

}  // namespace troxy::http
