#include "http/page_service.hpp"

#include "common/serialize.hpp"
#include "http/http.hpp"

namespace troxy::http {

namespace {

hybster::RequestInfo classify_http(ByteView request) {
    hybster::RequestInfo info;
    auto parsed = parse_request(request);
    if (!parsed) {
        info.is_read = true;
        info.state_key = "http:invalid";
        return info;
    }
    info.is_read = parsed->method == "GET" || parsed->method == "HEAD";
    info.state_key = "http:" + parsed->path;
    return info;
}

HttpResponse error_response(int status, std::string reason) {
    HttpResponse response;
    response.status = status;
    response.reason = std::move(reason);
    response.headers["content-type"] = "text/plain";
    response.body = to_bytes(response.reason);
    return response;
}

}  // namespace

std::size_t PageService::initial_size(int page) {
    // Cycle through the paper's 4 KB … 18 KB response range.
    return 4096 + static_cast<std::size_t>(page % 15) * 1024;
}

std::string PageService::initial_content(int page) {
    const std::size_t size = initial_size(page);
    std::string content;
    content.reserve(size);
    const std::string stamp = "<page id=\"" + std::to_string(page) + "\">";
    content += stamp;
    std::uint64_t state = static_cast<std::uint64_t>(page) * 2654435761u + 1;
    while (content.size() < size - 8) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        content += "abcdefghijklmnopqrstuvwxyz"[state % 26];
    }
    content += "</page>";
    return content;
}

PageService::PageService(int page_count) {
    for (int page = 0; page < page_count; ++page) {
        pages_["/page/" + std::to_string(page)] = initial_content(page);
    }
}

hybster::RequestInfo PageService::classify(ByteView request) const {
    return classify_http(request);
}

troxy_core::Classifier PageService::classifier() {
    return [](ByteView request) { return classify_http(request); };
}

Bytes PageService::execute(ByteView request) {
    auto parsed = parse_request(request);
    if (!parsed) return error_response(400, "Bad Request").serialize();

    if (parsed->method == "GET") {
        const auto it = pages_.find(parsed->path);
        if (it == pages_.end()) {
            return error_response(404, "Not Found").serialize();
        }
        HttpResponse response;
        response.headers["content-type"] = "text/html";
        response.body = to_bytes(it->second);
        return response.serialize();
    }
    if (parsed->method == "POST" || parsed->method == "PUT") {
        pages_[parsed->path] = to_string(parsed->body);
        HttpResponse response;
        response.headers["content-type"] = "text/html";
        response.body = parsed->body;
        return response.serialize();
    }
    return error_response(405, "Method Not Allowed").serialize();
}

Bytes PageService::checkpoint() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(pages_.size()));
    for (const auto& [path, content] : pages_) {
        w.str(path);
        w.str(content);
    }
    return std::move(w).take();
}

void PageService::restore(ByteView snapshot) {
    pages_.clear();
    Reader r(snapshot);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string path = r.str();
        pages_[std::move(path)] = r.str();
    }
}

sim::Duration PageService::execution_cost(ByteView request) const {
    // HTTP parsing plus page lookup/copy.
    return sim::nanoseconds(3'000 + request.size() / 4);
}

Bytes PageService::make_get(int page) {
    HttpRequest request;
    request.method = "GET";
    request.path = "/page/" + std::to_string(page);
    request.headers["host"] = "replicated.example";
    return request.serialize();
}

Bytes PageService::make_post(int page, ByteView body) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/page/" + std::to_string(page);
    request.headers["host"] = "replicated.example";
    request.body.assign(body.begin(), body.end());
    return request.serialize();
}

}  // namespace troxy::http
