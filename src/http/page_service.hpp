// Replicated HTTP page service (§VI-D): "handles HTTP GET and POST
// requests and returns the queried or modified pages as responses."
//
// Pages live under /page/<n>. GET returns the page (response sizes in the
// paper range 4–18 KB); POST replaces it and returns the new content.
// classify() maps GET→read and POST→write keyed by the page path, which
// is what the Troxy's fast-read cache partitions on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hybster/service.hpp"
#include "troxy/enclave.hpp"

namespace troxy::http {

class PageService final : public hybster::Service {
  public:
    /// Preloads `page_count` pages with deterministic content whose sizes
    /// cycle through the paper's 4–18 KB range.
    explicit PageService(int page_count = 64);

    [[nodiscard]] hybster::RequestInfo classify(
        ByteView request) const override;
    Bytes execute(ByteView request) override;
    [[nodiscard]] Bytes checkpoint() const override;
    void restore(ByteView snapshot) override;
    [[nodiscard]] sim::Duration execution_cost(
        ByteView request) const override;

    /// The classifier to hand to a Troxy / Prophecy front end (same logic
    /// as classify(), as a standalone function object).
    [[nodiscard]] static troxy_core::Classifier classifier();

    static Bytes make_get(int page);
    static Bytes make_post(int page, ByteView body);

    /// Deterministic initial content of a page (for tests).
    static std::string initial_content(int page);
    static std::size_t initial_size(int page);

  private:
    std::map<std::string, std::string> pages_;
};

}  // namespace troxy::http
