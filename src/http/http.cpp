#include "http/http.hpp"

#include <algorithm>
#include <charconv>

namespace troxy::http {

namespace {

constexpr std::string_view kCrlf = "\r\n";

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

/// Splits head (start line + headers) from body at the blank line.
struct Split {
    std::string head;
    Bytes body;
};

std::optional<Split> split_message(ByteView data) {
    const std::string text(data.begin(), data.end());
    const std::size_t blank = text.find("\r\n\r\n");
    if (blank == std::string::npos) return std::nullopt;
    Split out;
    out.head = text.substr(0, blank);
    out.body.assign(data.begin() + static_cast<std::ptrdiff_t>(blank + 4),
                    data.end());
    return out;
}

std::optional<std::map<std::string, std::string>> parse_headers(
    std::string_view head, std::size_t first_line_end) {
    std::map<std::string, std::string> headers;
    std::size_t pos = first_line_end;
    while (pos < head.size()) {
        if (head.substr(pos, 2) == kCrlf) pos += 2;
        const std::size_t line_end = head.find(kCrlf, pos);
        const std::string_view line =
            head.substr(pos, line_end == std::string_view::npos
                                 ? std::string_view::npos
                                 : line_end - pos);
        if (line.empty()) break;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) return std::nullopt;
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        headers[to_lower(line.substr(0, colon))] = std::string(value);
        if (line_end == std::string_view::npos) break;
        pos = line_end;
    }
    return headers;
}

std::optional<std::size_t> content_length(
    const std::map<std::string, std::string>& headers) {
    const auto it = headers.find("content-length");
    if (it == headers.end()) return 0;
    std::size_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        it->second.data(), it->second.data() + it->second.size(), value);
    if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
        return std::nullopt;
    }
    return value;
}

}  // namespace

Bytes HttpRequest::serialize() const {
    std::string out = method + " " + path + " HTTP/1.1" + std::string(kCrlf);
    auto headers_copy = headers;
    headers_copy["content-length"] = std::to_string(body.size());
    for (const auto& [name, value] : headers_copy) {
        out += name + ": " + value + std::string(kCrlf);
    }
    out += kCrlf;
    Bytes bytes = to_bytes(out);
    bytes.insert(bytes.end(), body.begin(), body.end());
    return bytes;
}

Bytes HttpResponse::serialize() const {
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                      std::string(kCrlf);
    auto headers_copy = headers;
    headers_copy["content-length"] = std::to_string(body.size());
    for (const auto& [name, value] : headers_copy) {
        out += name + ": " + value + std::string(kCrlf);
    }
    out += kCrlf;
    Bytes bytes = to_bytes(out);
    bytes.insert(bytes.end(), body.begin(), body.end());
    return bytes;
}

std::optional<HttpRequest> parse_request(ByteView data) {
    auto split = split_message(data);
    if (!split) return std::nullopt;

    const std::size_t line_end = split->head.find(kCrlf);
    const std::string_view first_line =
        std::string_view(split->head)
            .substr(0, line_end == std::string::npos ? split->head.size()
                                                     : line_end);

    const std::size_t sp1 = first_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : first_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return std::nullopt;
    }
    const std::string_view version = first_line.substr(sp2 + 1);
    if (!version.starts_with("HTTP/1.")) return std::nullopt;

    HttpRequest request;
    request.method = std::string(first_line.substr(0, sp1));
    request.path = std::string(first_line.substr(sp1 + 1, sp2 - sp1 - 1));

    auto headers = parse_headers(
        split->head, line_end == std::string::npos ? split->head.size()
                                                   : line_end);
    if (!headers) return std::nullopt;
    request.headers = std::move(*headers);

    const auto length = content_length(request.headers);
    if (!length || *length != split->body.size()) return std::nullopt;
    request.body = std::move(split->body);
    return request;
}

std::optional<HttpResponse> parse_response(ByteView data) {
    auto split = split_message(data);
    if (!split) return std::nullopt;

    const std::size_t line_end = split->head.find(kCrlf);
    const std::string_view first_line =
        std::string_view(split->head)
            .substr(0, line_end == std::string::npos ? split->head.size()
                                                     : line_end);

    if (!first_line.starts_with("HTTP/1.")) return std::nullopt;
    const std::size_t sp1 = first_line.find(' ');
    if (sp1 == std::string_view::npos) return std::nullopt;
    const std::size_t sp2 = first_line.find(' ', sp1 + 1);

    HttpResponse response;
    const std::string_view status_text =
        first_line.substr(sp1 + 1, sp2 == std::string_view::npos
                                       ? std::string_view::npos
                                       : sp2 - sp1 - 1);
    int status = 0;
    const auto [ptr, ec] = std::from_chars(
        status_text.data(), status_text.data() + status_text.size(), status);
    if (ec != std::errc() || status < 100 || status > 599) {
        return std::nullopt;
    }
    (void)ptr;
    response.status = status;
    if (sp2 != std::string_view::npos) {
        response.reason = std::string(first_line.substr(sp2 + 1));
    }

    auto headers = parse_headers(
        split->head, line_end == std::string::npos ? split->head.size()
                                                   : line_end);
    if (!headers) return std::nullopt;
    response.headers = std::move(*headers);

    const auto length = content_length(response.headers);
    if (!length || *length != split->body.size()) return std::nullopt;
    response.body = std::move(split->body);
    return response;
}

}  // namespace troxy::http
