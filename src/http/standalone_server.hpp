// Standalone unreplicated server ("Jetty" in Fig. 11).
//
// A single machine terminating the clients' secure channels and executing
// the service directly — no replication, no fault tolerance. Serves as
// the latency floor the replicated configurations are compared against.
#pragma once

#include <map>
#include <memory>

#include "crypto/x25519.hpp"
#include "hybster/service.hpp"
#include "net/fabric.hpp"
#include "net/secure_channel.hpp"

namespace troxy::http {

class StandaloneServer {
  public:
    StandaloneServer(net::Fabric& fabric, sim::Node& node,
                     hybster::ServicePtr service,
                     crypto::X25519Keypair channel_identity,
                     const sim::CostProfile& profile);

    void attach();

    [[nodiscard]] hybster::Service& service() noexcept { return *service_; }

  private:
    void on_message(sim::NodeId from, Bytes message);

    net::Fabric& fabric_;
    sim::Node& node_;
    hybster::ServicePtr service_;
    crypto::X25519Keypair identity_;
    const sim::CostProfile& profile_;

    std::map<sim::NodeId, net::SecureChannelServer> channels_;
    std::uint64_t handshake_counter_ = 0;
};

}  // namespace troxy::http
