// Minimal HTTP/1.1 message handling.
//
// Enough of the protocol for the §VI-D web-service experiment: request
// line + headers + Content-Length body, response status line + headers +
// body. Messages carry their own length ("for many communication
// protocols, including HTTP, identifying message boundaries is
// straightforward", §III-E), which is exactly the property the Troxy
// relies on to treat requests as opaque records.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace troxy::http {

struct HttpRequest {
    std::string method;  // "GET", "POST", ...
    std::string path;    // "/page/7"
    std::map<std::string, std::string> headers;
    Bytes body;

    [[nodiscard]] Bytes serialize() const;
};

struct HttpResponse {
    int status = 200;
    std::string reason = "OK";
    std::map<std::string, std::string> headers;
    Bytes body;

    [[nodiscard]] Bytes serialize() const;
};

/// Parses a complete HTTP request; nullopt on malformed or incomplete
/// input (the secure channel delivers whole records, so incomplete means
/// malformed here).
std::optional<HttpRequest> parse_request(ByteView data);

/// Parses a complete HTTP response.
std::optional<HttpResponse> parse_response(ByteView data);

}  // namespace troxy::http
