#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/fastmode.hpp"

namespace troxy::crypto {

namespace {

Poly1305Key derive_poly_key(const ChaChaKey& key,
                            const ChaChaNonce& nonce) noexcept {
    const auto block = chacha20_block(key, 0, nonce);
    Poly1305Key poly_key;
    std::memcpy(poly_key.data(), block.data(), poly_key.size());
    return poly_key;
}

// mac_data = aad || pad16 || ciphertext || pad16 || len(aad) || len(ct)
Bytes build_mac_data(ByteView aad, ByteView ciphertext) {
    Bytes data(aad.begin(), aad.end());
    data.resize((data.size() + 15) / 16 * 16, 0);
    data.insert(data.end(), ciphertext.begin(), ciphertext.end());
    data.resize((data.size() + 15) / 16 * 16, 0);
    auto push_le64 = [&data](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            data.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    };
    push_le64(aad.size());
    push_le64(ciphertext.size());
    return data;
}

}  // namespace

namespace {

std::uint64_t fast_seed(const ChaChaKey& key, const ChaChaNonce& nonce,
                        ByteView aad) noexcept {
    std::uint8_t material[kChaChaKeySize + kChaChaNonceSize];
    std::memcpy(material, key.data(), kChaChaKeySize);
    std::memcpy(material + kChaChaKeySize, nonce.data(), kChaChaNonceSize);
    std::uint8_t seed_bytes[8];
    detail::fast_digest(material, sizeof material, 0x41454144, seed_bytes,
                        sizeof seed_bytes);
    std::uint64_t seed = 0;
    for (int i = 0; i < 8; ++i) {
        seed |= static_cast<std::uint64_t>(seed_bytes[i]) << (8 * i);
    }
    std::uint8_t aad_bytes[8];
    detail::fast_digest(aad.data(), aad.size(), seed, aad_bytes,
                        sizeof aad_bytes);
    std::uint64_t mixed = 0;
    for (int i = 0; i < 8; ++i) {
        mixed |= static_cast<std::uint64_t>(aad_bytes[i]) << (8 * i);
    }
    return mixed;
}

}  // namespace

Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView plaintext) {
    if (fast_crypto()) {
        // "Ciphertext" is the plaintext plus a keyed fast tag: sizes and
        // verification behaviour match the real AEAD, secrecy is not
        // modelled (nothing in a benchmark reads another node's buffers).
        Bytes out(plaintext.begin(), plaintext.end());
        std::uint8_t tag[kAeadTagSize];
        detail::fast_digest(plaintext.data(), plaintext.size(),
                            fast_seed(key, nonce, aad), tag, sizeof tag);
        out.insert(out.end(), tag, tag + sizeof tag);
        return out;
    }
    Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
    const Poly1305Key poly_key = derive_poly_key(key, nonce);
    const Poly1305Tag tag =
        poly1305(poly_key, build_mac_data(aad, ciphertext));
    ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
    return ciphertext;
}

void aead_seal_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                       ByteView aad, Bytes& buf, std::size_t offset) {
    const std::size_t len = buf.size() - offset;
    if (fast_crypto()) {
        std::uint8_t tag[kAeadTagSize];
        detail::fast_digest(buf.data() + offset, len,
                            fast_seed(key, nonce, aad), tag, sizeof tag);
        buf.insert(buf.end(), tag, tag + sizeof tag);
        return;
    }
    chacha20_xor_inplace(key, nonce, 1, buf.data() + offset, len);
    const Poly1305Key poly_key = derive_poly_key(key, nonce);
    const Poly1305Tag tag = poly1305(
        poly_key,
        build_mac_data(aad, ByteView(buf.data() + offset, len)));
    buf.insert(buf.end(), tag.begin(), tag.end());
}

std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               ByteView aad, ByteView sealed) {
    if (sealed.size() < kAeadTagSize) return std::nullopt;
    if (fast_crypto()) {
        const ByteView body = sealed.first(sealed.size() - kAeadTagSize);
        std::uint8_t expected[kAeadTagSize];
        detail::fast_digest(body.data(), body.size(),
                            fast_seed(key, nonce, aad), expected,
                            sizeof expected);
        if (!constant_time_equal(ByteView(expected, sizeof expected),
                                 sealed.last(kAeadTagSize))) {
            return std::nullopt;
        }
        return Bytes(body.begin(), body.end());
    }
    const ByteView ciphertext = sealed.first(sealed.size() - kAeadTagSize);
    const ByteView tag = sealed.last(kAeadTagSize);

    const Poly1305Key poly_key = derive_poly_key(key, nonce);
    const Poly1305Tag expected =
        poly1305(poly_key, build_mac_data(aad, ciphertext));
    if (!constant_time_equal(expected, tag)) return std::nullopt;

    return chacha20_xor(key, nonce, 1, ciphertext);
}

ChaChaNonce make_record_nonce(const ChaChaNonce& iv,
                              std::uint64_t sequence) noexcept {
    ChaChaNonce nonce = iv;
    for (int i = 0; i < 8; ++i) {
        nonce[kChaChaNonceSize - 1 - i] ^=
            static_cast<std::uint8_t>(sequence >> (8 * i));
    }
    return nonce;
}

}  // namespace troxy::crypto
