// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC is the message-certificate primitive used throughout the system:
// replica-to-replica authentication, Troxy reply authentication (§IV-A),
// and trusted-counter certificates. HKDF derives secure-channel session
// keys from the handshake secret.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace troxy::crypto {

using HmacTag = std::array<std::uint8_t, kSha256DigestSize>;

/// Computes HMAC-SHA256(key, data). Keys longer than the block size are
/// hashed first, per RFC 2104.
HmacTag hmac_sha256(ByteView key, ByteView data) noexcept;

/// Convenience returning a Bytes value.
Bytes hmac_sha256_bytes(ByteView key, ByteView data);

/// Verifies a tag in constant time.
bool hmac_verify(ByteView key, ByteView data, ByteView tag) noexcept;

/// HKDF-Extract: PRK = HMAC(salt, ikm).
HmacTag hkdf_extract(ByteView salt, ByteView ikm) noexcept;

/// HKDF-Expand: derives `length` bytes (≤ 255·32) from PRK and info.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand in one call.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace troxy::crypto
