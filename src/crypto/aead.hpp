// AEAD_CHACHA20_POLY1305 (RFC 8439 §2.8).
//
// This is the record protection of the client↔Troxy secure channel: each
// record is encrypted and authenticated under the session key with a
// strictly increasing nonce, which also provides the anti-replay guarantee
// the paper relies on ("each endpoint will never accept the same chunk of
// encrypted data twice", §III-D).
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace troxy::crypto {

inline constexpr std::size_t kAeadTagSize = kPoly1305TagSize;

/// Encrypts `plaintext`; returns ciphertext || 16-byte tag.
Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteView aad,
                ByteView plaintext);

/// Gather-style seal: the caller has already written the plaintext as
/// `buf[offset..]` (its final wire position); the region is encrypted in
/// place and the 16-byte tag appended. Byte-identical to aead_seal() on
/// the same plaintext, without the plaintext→ciphertext→record copies.
void aead_seal_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                       ByteView aad, Bytes& buf, std::size_t offset);

/// Verifies and decrypts; returns nullopt on authentication failure.
std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               ByteView aad, ByteView sealed);

/// Builds the RFC nonce from a 12-byte IV xor'ed with a 64-bit sequence
/// number in the trailing bytes (TLS 1.3 style).
ChaChaNonce make_record_nonce(const ChaChaNonce& iv,
                              std::uint64_t sequence) noexcept;

}  // namespace troxy::crypto
