// X25519 Diffie-Hellman (RFC 7748).
//
// Provides the key agreement under the secure-channel handshake. The paper
// provisions the Troxy's private key during SGX attestation; here the same
// role is played by an X25519 keypair whose private half lives only inside
// the simulated enclave.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace troxy::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Computes scalar multiplication scalar·point on Curve25519.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point) noexcept;

/// Derives the public key for a private scalar (scalar·basepoint).
X25519Key x25519_public(const X25519Key& private_key) noexcept;

/// Keypair helper; the private key is clamped per the RFC.
struct X25519Keypair {
    X25519Key private_key;
    X25519Key public_key;
};

/// Deterministically derives a keypair from seed bytes (the simulation has
/// no OS entropy source; seeds come from the experiment RNG).
X25519Keypair x25519_keypair_from_seed(ByteView seed) noexcept;

}  // namespace troxy::crypto
