#include "crypto/fastmode.hpp"

#include <cstddef>
#include <cstdint>

namespace troxy::crypto {

namespace {
bool g_fast = false;
}

bool fast_crypto() noexcept { return g_fast; }
void set_fast_crypto(bool enabled) noexcept { g_fast = enabled; }

namespace detail {

void fast_digest(const std::uint8_t* data, std::size_t len,
                 std::uint64_t seed, std::uint8_t* out,
                 std::size_t out_len) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    h ^= len;

    // Expand to the requested width with SplitMix64.
    std::size_t produced = 0;
    while (produced < out_len) {
        h += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = h;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        for (int b = 0; b < 8 && produced < out_len; ++b, ++produced) {
            out[produced] = static_cast<std::uint8_t>(z >> (8 * b));
        }
    }
}

}  // namespace detail

}  // namespace troxy::crypto
