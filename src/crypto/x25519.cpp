#include "crypto/x25519.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace troxy::crypto {

// Field arithmetic modulo p = 2^255 - 19 with five 51-bit limbs and
// 128-bit intermediate products (the "donna" representation).
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

struct Fe {
    u64 v[5];
};

constexpr u64 kMask51 = (u64{1} << 51) - 1;

Fe fe_zero() noexcept { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() noexcept { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_from_bytes(const std::uint8_t* s) noexcept {
    auto load64 = [](const std::uint8_t* p) {
        u64 v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
        return v;
    };
    Fe f;
    f.v[0] = load64(s) & kMask51;
    f.v[1] = (load64(s + 6) >> 3) & kMask51;
    f.v[2] = (load64(s + 12) >> 6) & kMask51;
    f.v[3] = (load64(s + 19) >> 1) & kMask51;
    f.v[4] = (load64(s + 24) >> 12) & kMask51;
    return f;
}

void fe_to_bytes(std::uint8_t* out, const Fe& f) noexcept {
    // Fully reduce mod p before serializing.
    u64 t[5] = {f.v[0], f.v[1], f.v[2], f.v[3], f.v[4]};

    for (int pass = 0; pass < 3; ++pass) {
        t[1] += t[0] >> 51;
        t[0] &= kMask51;
        t[2] += t[1] >> 51;
        t[1] &= kMask51;
        t[3] += t[2] >> 51;
        t[2] &= kMask51;
        t[4] += t[3] >> 51;
        t[3] &= kMask51;
        t[0] += 19 * (t[4] >> 51);
        t[4] &= kMask51;
    }

    // Conditional subtraction of p: compute t + 19, if that overflows
    // 2^255 then t >= p.
    u64 q = (t[0] + 19) >> 51;
    q = (t[1] + q) >> 51;
    q = (t[2] + q) >> 51;
    q = (t[3] + q) >> 51;
    q = (t[4] + q) >> 51;

    t[0] += 19 * q;
    t[1] += t[0] >> 51;
    t[0] &= kMask51;
    t[2] += t[1] >> 51;
    t[1] &= kMask51;
    t[3] += t[2] >> 51;
    t[2] &= kMask51;
    t[4] += t[3] >> 51;
    t[3] &= kMask51;
    t[4] &= kMask51;

    auto store64 = [](std::uint8_t* p, u64 v) {
        for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    store64(out, t[0] | (t[1] << 51));
    store64(out + 8, (t[1] >> 13) | (t[2] << 38));
    store64(out + 16, (t[2] >> 26) | (t[3] << 25));
    store64(out + 24, (t[3] >> 39) | (t[4] << 12));
}

Fe fe_add(const Fe& a, const Fe& b) noexcept {
    Fe out;
    for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
    return out;
}

// a - b with a bias of 2p to keep limbs positive.
Fe fe_sub(const Fe& a, const Fe& b) noexcept {
    static constexpr u64 kTwoP0 = 0xfffffffffffdaULL;
    static constexpr u64 kTwoP1234 = 0xffffffffffffeULL;
    Fe out;
    out.v[0] = a.v[0] + kTwoP0 - b.v[0];
    out.v[1] = a.v[1] + kTwoP1234 - b.v[1];
    out.v[2] = a.v[2] + kTwoP1234 - b.v[2];
    out.v[3] = a.v[3] + kTwoP1234 - b.v[3];
    out.v[4] = a.v[4] + kTwoP1234 - b.v[4];
    return out;
}

Fe fe_mul(const Fe& a, const Fe& b) noexcept {
    const u128 m0 = static_cast<u128>(a.v[0]) * b.v[0] +
                    static_cast<u128>(a.v[1]) * (b.v[4] * 19) +
                    static_cast<u128>(a.v[2]) * (b.v[3] * 19) +
                    static_cast<u128>(a.v[3]) * (b.v[2] * 19) +
                    static_cast<u128>(a.v[4]) * (b.v[1] * 19);
    const u128 m1 = static_cast<u128>(a.v[0]) * b.v[1] +
                    static_cast<u128>(a.v[1]) * b.v[0] +
                    static_cast<u128>(a.v[2]) * (b.v[4] * 19) +
                    static_cast<u128>(a.v[3]) * (b.v[3] * 19) +
                    static_cast<u128>(a.v[4]) * (b.v[2] * 19);
    const u128 m2 = static_cast<u128>(a.v[0]) * b.v[2] +
                    static_cast<u128>(a.v[1]) * b.v[1] +
                    static_cast<u128>(a.v[2]) * b.v[0] +
                    static_cast<u128>(a.v[3]) * (b.v[4] * 19) +
                    static_cast<u128>(a.v[4]) * (b.v[3] * 19);
    const u128 m3 = static_cast<u128>(a.v[0]) * b.v[3] +
                    static_cast<u128>(a.v[1]) * b.v[2] +
                    static_cast<u128>(a.v[2]) * b.v[1] +
                    static_cast<u128>(a.v[3]) * b.v[0] +
                    static_cast<u128>(a.v[4]) * (b.v[4] * 19);
    const u128 m4 = static_cast<u128>(a.v[0]) * b.v[4] +
                    static_cast<u128>(a.v[1]) * b.v[3] +
                    static_cast<u128>(a.v[2]) * b.v[2] +
                    static_cast<u128>(a.v[3]) * b.v[1] +
                    static_cast<u128>(a.v[4]) * b.v[0];

    Fe out;
    u64 carry;
    out.v[0] = static_cast<u64>(m0) & kMask51;
    carry = static_cast<u64>(m0 >> 51);
    u128 acc = m1 + carry;
    out.v[1] = static_cast<u64>(acc) & kMask51;
    carry = static_cast<u64>(acc >> 51);
    acc = m2 + carry;
    out.v[2] = static_cast<u64>(acc) & kMask51;
    carry = static_cast<u64>(acc >> 51);
    acc = m3 + carry;
    out.v[3] = static_cast<u64>(acc) & kMask51;
    carry = static_cast<u64>(acc >> 51);
    acc = m4 + carry;
    out.v[4] = static_cast<u64>(acc) & kMask51;
    carry = static_cast<u64>(acc >> 51);
    out.v[0] += carry * 19;
    out.v[1] += out.v[0] >> 51;
    out.v[0] &= kMask51;
    return out;
}

Fe fe_sq(const Fe& a) noexcept { return fe_mul(a, a); }

// Multiplies by a small scalar (121666 in the ladder).
Fe fe_mul_small(const Fe& a, u64 s) noexcept {
    Fe out;
    u128 acc = 0;
    for (int i = 0; i < 5; ++i) {
        acc += static_cast<u128>(a.v[i]) * s;
        out.v[i] = static_cast<u64>(acc) & kMask51;
        acc >>= 51;
    }
    out.v[0] += static_cast<u64>(acc) * 19;
    return out;
}

Fe fe_invert(const Fe& z) noexcept {
    // z^(p-2) via the standard addition chain.
    Fe z2 = fe_sq(z);                       // 2
    Fe z8 = fe_sq(fe_sq(z2));               // 8
    Fe z9 = fe_mul(z8, z);                  // 9
    Fe z11 = fe_mul(z9, z2);                // 11
    Fe z22 = fe_sq(z11);                    // 22
    Fe z_5_0 = fe_mul(z22, z9);             // 2^5 - 2^0
    Fe t = fe_sq(z_5_0);
    for (int i = 1; i < 5; ++i) t = fe_sq(t);
    Fe z_10_0 = fe_mul(t, z_5_0);           // 2^10 - 2^0
    t = fe_sq(z_10_0);
    for (int i = 1; i < 10; ++i) t = fe_sq(t);
    Fe z_20_0 = fe_mul(t, z_10_0);          // 2^20 - 2^0
    t = fe_sq(z_20_0);
    for (int i = 1; i < 20; ++i) t = fe_sq(t);
    Fe z_40_0 = fe_mul(t, z_20_0);          // 2^40 - 2^0
    t = fe_sq(z_40_0);
    for (int i = 1; i < 10; ++i) t = fe_sq(t);
    Fe z_50_0 = fe_mul(t, z_10_0);          // 2^50 - 2^0
    t = fe_sq(z_50_0);
    for (int i = 1; i < 50; ++i) t = fe_sq(t);
    Fe z_100_0 = fe_mul(t, z_50_0);         // 2^100 - 2^0
    t = fe_sq(z_100_0);
    for (int i = 1; i < 100; ++i) t = fe_sq(t);
    Fe z_200_0 = fe_mul(t, z_100_0);        // 2^200 - 2^0
    t = fe_sq(z_200_0);
    for (int i = 1; i < 50; ++i) t = fe_sq(t);
    Fe z_250_0 = fe_mul(t, z_50_0);         // 2^250 - 2^0
    t = fe_sq(z_250_0);
    for (int i = 1; i < 5; ++i) t = fe_sq(t);
    return fe_mul(t, z11);                  // 2^255 - 21 = p - 2
}

void fe_cswap(Fe& a, Fe& b, u64 swap) noexcept {
    const u64 mask = 0 - swap;  // all ones if swap == 1
    for (int i = 0; i < 5; ++i) {
        const u64 x = mask & (a.v[i] ^ b.v[i]);
        a.v[i] ^= x;
        b.v[i] ^= x;
    }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) noexcept {
    std::uint8_t e[32];
    std::memcpy(e, scalar.data(), 32);
    e[0] &= 248;
    e[31] &= 127;
    e[31] |= 64;

    // RFC 7748: mask the top bit of the u-coordinate.
    std::uint8_t u_bytes[32];
    std::memcpy(u_bytes, point.data(), 32);
    u_bytes[31] &= 127;

    const Fe x1 = fe_from_bytes(u_bytes);
    Fe x2 = fe_one(), z2 = fe_zero();
    Fe x3 = x1, z3 = fe_one();
    u64 swap = 0;

    for (int pos = 254; pos >= 0; --pos) {
        const u64 bit = (e[pos / 8] >> (pos & 7)) & 1;
        swap ^= bit;
        fe_cswap(x2, x3, swap);
        fe_cswap(z2, z3, swap);
        swap = bit;

        const Fe a = fe_add(x2, z2);
        const Fe aa = fe_sq(a);
        const Fe b = fe_sub(x2, z2);
        const Fe bb = fe_sq(b);
        const Fe ee = fe_sub(aa, bb);
        const Fe c = fe_add(x3, z3);
        const Fe d = fe_sub(x3, z3);
        const Fe da = fe_mul(d, a);
        const Fe cb = fe_mul(c, b);
        x3 = fe_sq(fe_add(da, cb));
        z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
        x2 = fe_mul(aa, bb);
        z2 = fe_mul(ee, fe_add(aa, fe_mul_small(ee, 121665)));
    }
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);

    const Fe result = fe_mul(x2, fe_invert(z2));
    X25519Key out;
    fe_to_bytes(out.data(), result);
    return out;
}

X25519Key x25519_public(const X25519Key& private_key) noexcept {
    X25519Key basepoint{};
    basepoint[0] = 9;
    return x25519(private_key, basepoint);
}

X25519Keypair x25519_keypair_from_seed(ByteView seed) noexcept {
    const Sha256Digest digest = sha256(seed);
    X25519Keypair pair;
    std::memcpy(pair.private_key.data(), digest.data(), kX25519KeySize);
    pair.private_key[0] &= 248;
    pair.private_key[31] &= 127;
    pair.private_key[31] |= 64;
    pair.public_key = x25519_public(pair.private_key);
    return pair;
}

}  // namespace troxy::crypto
