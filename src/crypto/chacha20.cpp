#include "crypto/chacha20.hpp"

#include <bit>

namespace troxy::crypto {

namespace {

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
    a += b;
    d = std::rotl(d ^ a, 16);
    c += d;
    b = std::rotl(b ^ c, 12);
    a += b;
    d = std::rotl(d ^ a, 8);
    c += d;
    b = std::rotl(b ^ c, 7);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(
    const ChaChaKey& key, std::uint32_t counter,
    const ChaChaNonce& nonce) noexcept {
    std::array<std::uint32_t, 16> state = {
        0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,  // "expand 32-byte k"
        load_le32(key.data()),      load_le32(key.data() + 4),
        load_le32(key.data() + 8),  load_le32(key.data() + 12),
        load_le32(key.data() + 16), load_le32(key.data() + 20),
        load_le32(key.data() + 24), load_le32(key.data() + 28),
        counter,
        load_le32(nonce.data()),    load_le32(nonce.data() + 4),
        load_le32(nonce.data() + 8)};

    std::array<std::uint32_t, 16> working = state;
    for (int i = 0; i < 10; ++i) {
        quarter_round(working[0], working[4], working[8], working[12]);
        quarter_round(working[1], working[5], working[9], working[13]);
        quarter_round(working[2], working[6], working[10], working[14]);
        quarter_round(working[3], working[7], working[11], working[15]);
        quarter_round(working[0], working[5], working[10], working[15]);
        quarter_round(working[1], working[6], working[11], working[12]);
        quarter_round(working[2], working[7], working[8], working[13]);
        quarter_round(working[3], working[4], working[9], working[14]);
    }

    std::array<std::uint8_t, 64> out;
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t word = working[i] + state[i];
        out[4 * i] = static_cast<std::uint8_t>(word);
        out[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
        out[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
        out[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
    }
    return out;
}

Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   std::uint32_t initial_counter, ByteView data) {
    Bytes out;
    out.reserve(data.size());
    std::uint32_t counter = initial_counter;
    std::size_t offset = 0;
    while (offset < data.size()) {
        const auto keystream = chacha20_block(key, counter++, nonce);
        const std::size_t n = std::min<std::size_t>(64, data.size() - offset);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(data[offset + i] ^ keystream[i]);
        }
        offset += n;
    }
    return out;
}

void chacha20_xor_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                          std::uint32_t initial_counter, std::uint8_t* data,
                          std::size_t size) noexcept {
    std::uint32_t counter = initial_counter;
    std::size_t offset = 0;
    while (offset < size) {
        const auto keystream = chacha20_block(key, counter++, nonce);
        const std::size_t n = std::min<std::size_t>(64, size - offset);
        for (std::size_t i = 0; i < n; ++i) {
            data[offset + i] ^= keystream[i];
        }
        offset += n;
    }
}

}  // namespace troxy::crypto
