// ChaCha20 stream cipher (RFC 8439 §2.4).
//
// The secure channel between legacy clients and the Troxy encrypts records
// with ChaCha20-Poly1305; the raw keystream interface here also backs the
// sealed-storage encryption of the simulated enclave.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace troxy::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// Runs the ChaCha20 block function for the given counter and returns the
/// 64-byte keystream block.
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            std::uint32_t counter,
                                            const ChaChaNonce& nonce) noexcept;

/// Encrypts (= decrypts) `data` with the keystream starting at block
/// `initial_counter`.
Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   std::uint32_t initial_counter, ByteView data);

/// In-place variant: XORs the keystream over `data` directly, for
/// gather-style encoders that assembled the plaintext in its final wire
/// buffer and must not pay a second allocation.
void chacha20_xor_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                          std::uint32_t initial_counter, std::uint8_t* data,
                          std::size_t size) noexcept;

}  // namespace troxy::crypto
