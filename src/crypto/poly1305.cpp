#include "crypto/poly1305.hpp"

#include <cstring>

namespace troxy::crypto {

// Implementation with 64-bit limbs using unsigned __int128 intermediates
// (the classic donna-style arrangement with 44/44/42-bit limbs would also
// work; 64-bit limbs with 128-bit products are simpler and fast enough).
Poly1305Tag poly1305(const Poly1305Key& key, ByteView data) noexcept {
    using u64 = std::uint64_t;
    using u128 = unsigned __int128;

    auto load_le64 = [](const std::uint8_t* p) noexcept {
        u64 v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
        return v;
    };

    // r is clamped per the RFC.
    u64 r0 = load_le64(key.data()) & 0x0ffffffc0fffffffULL;
    u64 r1 = load_le64(key.data() + 8) & 0x0ffffffc0ffffffcULL;
    const u64 s0 = load_le64(key.data() + 16);
    const u64 s1 = load_le64(key.data() + 24);

    // Accumulator h as three 44/44/42-ish limbs is avoided: we keep h as
    // h0,h1,h2 with h2 small (≤ 7) and reduce mod 2^130-5 after each block.
    u64 h0 = 0, h1 = 0, h2 = 0;

    std::size_t offset = 0;
    const std::size_t len = data.size();
    while (offset < len) {
        std::uint8_t block[17] = {0};
        const std::size_t n = std::min<std::size_t>(16, len - offset);
        std::memcpy(block, data.data() + offset, n);
        block[n] = 1;  // append the high bit
        offset += n;

        const u64 t0 = load_le64(block);
        const u64 t1 = load_le64(block + 8);
        const u64 t2 = block[16];

        // h += block
        u128 acc = static_cast<u128>(h0) + t0;
        h0 = static_cast<u64>(acc);
        acc = static_cast<u128>(h1) + t1 + static_cast<u64>(acc >> 64);
        h1 = static_cast<u64>(acc);
        h2 += t2 + static_cast<u64>(acc >> 64);

        // h *= r (mod 2^130 - 5)
        // Schoolbook multiply of (h2,h1,h0) by (r1,r0); h2 is small.
        const u128 m0 = static_cast<u128>(h0) * r0;
        const u128 m1 =
            static_cast<u128>(h0) * r1 + static_cast<u128>(h1) * r0;
        const u128 m2 =
            static_cast<u128>(h1) * r1 + static_cast<u128>(h2) * r0;
        const u128 m3 = static_cast<u128>(h2) * r1;

        u64 d0 = static_cast<u64>(m0);
        u128 carry = (m0 >> 64) + static_cast<u64>(m1);
        u64 d1 = static_cast<u64>(carry);
        carry = (carry >> 64) + (m1 >> 64) + static_cast<u64>(m2);
        u64 d2 = static_cast<u64>(carry);
        carry = (carry >> 64) + (m2 >> 64) + static_cast<u64>(m3);
        u64 d3 = static_cast<u64>(carry) + static_cast<u64>(m3 >> 64);

        // Reduce: the value is d3·2^192 + d2·2^128 + d1·2^64 + d0.
        // Fold everything above bit 130 back via 2^130 ≡ 5 (mod p).
        // Split d2 at bit 2 (since 130 = 128 + 2).
        const u64 high = (d2 >> 2) | (d3 << 62);  // bits ≥ 130, low part
        const u64 high2 = d3 >> 2;                // bits ≥ 194
        h0 = d0;
        h1 = d1;
        h2 = d2 & 3;

        // h += high * 5  (5·x = 4x + x)
        u128 fold = static_cast<u128>(high) * 5 + h0;
        h0 = static_cast<u64>(fold);
        fold = (fold >> 64) + static_cast<u128>(high2) * 5 + h1;
        h1 = static_cast<u64>(fold);
        h2 += static_cast<u64>(fold >> 64);

        // One more partial reduction to keep h2 small.
        const u64 extra = (h2 >> 2) * 5;
        h2 &= 3;
        u128 acc2 = static_cast<u128>(h0) + extra;
        h0 = static_cast<u64>(acc2);
        acc2 = static_cast<u128>(h1) + static_cast<u64>(acc2 >> 64);
        h1 = static_cast<u64>(acc2);
        h2 += static_cast<u64>(acc2 >> 64);
    }

    // Final reduction: compute h mod 2^130-5 exactly.
    // h may be slightly above p; compare h with p = 2^130 - 5.
    u64 g0, g1, g2;
    {
        u128 acc = static_cast<u128>(h0) + 5;
        g0 = static_cast<u64>(acc);
        acc = static_cast<u128>(h1) + static_cast<u64>(acc >> 64);
        g1 = static_cast<u64>(acc);
        g2 = h2 + static_cast<u64>(acc >> 64);
    }
    if (g2 >> 2) {  // h + 5 >= 2^130, so h >= p: use h - p = g mod 2^130
        h0 = g0;
        h1 = g1;
        h2 = g2 & 3;
    }

    // tag = (h + s) mod 2^128
    u128 acc = static_cast<u128>(h0) + s0;
    const u64 t0 = static_cast<u64>(acc);
    acc = static_cast<u128>(h1) + s1 + static_cast<u64>(acc >> 64);
    const u64 t1 = static_cast<u64>(acc);

    Poly1305Tag tag;
    for (int i = 0; i < 8; ++i) {
        tag[i] = static_cast<std::uint8_t>(t0 >> (8 * i));
        tag[8 + i] = static_cast<std::uint8_t>(t1 >> (8 * i));
    }
    return tag;
}

}  // namespace troxy::crypto
