#include "crypto/hmac.hpp"

#include <stdexcept>

#include "crypto/fastmode.hpp"

namespace troxy::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}

HmacTag hmac_sha256(ByteView key, ByteView data) noexcept {
    if (fast_crypto()) {
        // Key the FNV digest by hashing the key into the seed first.
        HmacTag tag;
        std::uint8_t seed_bytes[8];
        detail::fast_digest(key.data(), key.size(), 0x484d4143, seed_bytes,
                            sizeof seed_bytes);
        std::uint64_t seed = 0;
        for (int i = 0; i < 8; ++i) {
            seed |= static_cast<std::uint64_t>(seed_bytes[i]) << (8 * i);
        }
        detail::fast_digest(data.data(), data.size(), seed, tag.data(),
                            tag.size());
        return tag;
    }
    std::array<std::uint8_t, kBlockSize> key_block{};
    if (key.size() > kBlockSize) {
        const Sha256Digest hashed = sha256(key);
        std::copy(hashed.begin(), hashed.end(), key_block.begin());
    } else {
        std::copy(key.begin(), key.end(), key_block.begin());
    }

    std::array<std::uint8_t, kBlockSize> ipad, opad;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(data);
    const Sha256Digest inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad);
    outer.update(inner_digest);
    return outer.finish();
}

Bytes hmac_sha256_bytes(ByteView key, ByteView data) {
    const HmacTag t = hmac_sha256(key, data);
    return Bytes(t.begin(), t.end());
}

bool hmac_verify(ByteView key, ByteView data, ByteView tag) noexcept {
    const HmacTag expected = hmac_sha256(key, data);
    return constant_time_equal(expected, tag);
}

HmacTag hkdf_extract(ByteView salt, ByteView ikm) noexcept {
    return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
    if (length > 255 * kSha256DigestSize) {
        throw std::invalid_argument("hkdf_expand: length too large");
    }
    Bytes out;
    out.reserve(length);
    Bytes previous;
    std::uint8_t counter = 1;
    while (out.size() < length) {
        Bytes block = previous;
        block.insert(block.end(), info.begin(), info.end());
        block.push_back(counter++);
        const HmacTag t = hmac_sha256(prk, block);
        previous.assign(t.begin(), t.end());
        const std::size_t take =
            std::min(previous.size(), length - out.size());
        out.insert(out.end(), previous.begin(),
                   previous.begin() + static_cast<std::ptrdiff_t>(take));
    }
    return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
    const HmacTag prk = hkdf_extract(salt, ikm);
    return hkdf_expand(prk, info, length);
}

}  // namespace troxy::crypto
