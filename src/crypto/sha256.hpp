// SHA-256 (FIPS 180-4).
//
// Used for request identifiers (the fast-read cache keys replies by a hash
// of the original request, §IV-A), enclave measurements, and as the
// compression function under HMAC/HKDF.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace troxy::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256. `update` may be called any number of times;
/// `finish` finalizes and invalidates the instance.
class Sha256 {
  public:
    Sha256() noexcept;

    void update(ByteView data) noexcept;
    Sha256Digest finish() noexcept;

  private:
    void process_block(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Sha256Digest sha256(ByteView data) noexcept;

/// One-shot returning a Bytes value (handy for serialization).
Bytes sha256_bytes(ByteView data);

}  // namespace troxy::crypto
