// Poly1305 one-time authenticator (RFC 8439 §2.5).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace troxy::crypto {

inline constexpr std::size_t kPoly1305KeySize = 32;
inline constexpr std::size_t kPoly1305TagSize = 16;

using Poly1305Key = std::array<std::uint8_t, kPoly1305KeySize>;
using Poly1305Tag = std::array<std::uint8_t, kPoly1305TagSize>;

/// Computes the Poly1305 tag of `data` under a one-time key. The key must
/// never be reused for two different messages; the AEAD construction
/// derives a fresh key per nonce.
Poly1305Tag poly1305(const Poly1305Key& key, ByteView data) noexcept;

}  // namespace troxy::crypto
