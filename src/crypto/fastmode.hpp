// Fast-crypto mode for large simulations.
//
// Benchmark runs push millions of simulated messages; computing real
// SHA-256/Poly1305 over every one would dominate wall-clock time without
// affecting results, because *modelled* costs (sim::CostProfile), not
// host-CPU costs, determine simulated performance. In fast mode the
// one-shot primitives switch to a keyed 64-bit FNV construction that keeps
// identical sizes and verification semantics (a tampered message still
// fails to verify) but runs an order of magnitude faster.
//
// Tests and examples leave fast mode off and exercise the real,
// RFC-vector-checked implementations. Each benchmark binary opts in at
// the top of main(). The flag is process-global by design: simulation
// runs are single-threaded and benchmarks are separate binaries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace troxy::crypto {

[[nodiscard]] bool fast_crypto() noexcept;
void set_fast_crypto(bool enabled) noexcept;

namespace detail {
/// 64-bit FNV-1a, expanded to n output bytes via SplitMix64.
void fast_digest(const std::uint8_t* data, std::size_t len,
                 std::uint64_t seed, std::uint8_t* out,
                 std::size_t out_len) noexcept;
}  // namespace detail

}  // namespace troxy::crypto
