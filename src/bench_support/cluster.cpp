#include "bench_support/cluster.hpp"

#include <stdexcept>

#include "common/serialize.hpp"
#include "hybster/keys.hpp"
#include "net/fragment.hpp"

namespace troxy::bench {

namespace {

/// Trusted-subsystem provisioning output: the per-replica counters plus
/// the deployment authority and expected measurement, kept around so
/// proactive enclave recovery can run the same attestation re-handshake
/// the initial setup did.
struct Provisioned {
    std::vector<std::shared_ptr<enclave::TrinX>> trinx;
    std::shared_ptr<enclave::AttestationAuthority> authority;
    enclave::Measurement measurement{};
};

/// Establishes the trusted subsystems' shared group key the way the real
/// system does: each enclave attests to the deployment authority, which
/// releases the secret only against a valid report (§V-A).
Provisioned provision_trinx(int count, std::uint64_t seed) {
    Writer platform_seed;
    platform_seed.u64(seed);
    platform_seed.str("platform-key");
    const Bytes platform_key =
        crypto::hkdf({}, platform_seed.data(), to_bytes("platform"), 32);

    Provisioned out;
    out.authority =
        std::make_shared<enclave::AttestationAuthority>(platform_key);
    out.measurement = enclave::measure("troxy-enclave-v1");

    Writer group_seed;
    group_seed.u64(seed);
    group_seed.str("troxy-group-key");
    const Bytes group_key =
        crypto::hkdf({}, group_seed.data(), to_bytes("group"), 32);

    for (int replica = 0; replica < count; ++replica) {
        const std::uint64_t nonce = seed * 1000 + static_cast<std::uint64_t>(replica);
        const enclave::AttestationReport report =
            out.authority->issue(out.measurement, nonce);
        const auto secret = out.authority->provision(report, out.measurement,
                                                     nonce, group_key);
        TROXY_ASSERT(secret.has_value(), "attestation must succeed at setup");
        out.trinx.push_back(std::make_shared<enclave::TrinX>(
            static_cast<std::uint32_t>(replica), *secret));
    }
    return out;
}

crypto::X25519Keypair identity_for(std::uint64_t seed, int index) {
    Writer w;
    w.u64(seed);
    w.u32(static_cast<std::uint32_t>(index));
    w.str("channel-identity");
    return crypto::x25519_keypair_from_seed(w.data());
}

/// Client-side receive dispatch for legacy clients. A coalescing host
/// may ship several client frames as one Bundle; the dispatch unpacks
/// them like a socket read loop. The wire buffer is consumed in place
/// and recycled for the next sender. Scatter-gather bursts arriving as
/// fragment chains are consumed message by message without flattening
/// the frame; foreign chain shapes fall back to the flat path.
void attach_legacy_dispatch(net::Fabric& fabric, sim::Node& node,
                            troxy_core::LegacyClient* client) {
    auto deliver_flat = [client, network = &fabric.network()](
                            sim::NodeId from, Bytes message) {
        auto unwrapped = net::unwrap_view(message);
        if (unwrapped) {
            if (unwrapped->first == net::Channel::Bundle) {
                auto inner = net::unbundle(unwrapped->second);
                if (inner) {
                    for (const Bytes& m : *inner) {
                        auto u = net::unwrap_view(m);
                        if (u && u->first == net::Channel::Client) {
                            client->on_message(from, u->second);
                        }
                    }
                }
            } else if (unwrapped->first == net::Channel::Client) {
                client->on_message(from, unwrapped->second);
            }
        }
        network->recycle(std::move(message));
    };
    fabric.attach(node.id(), deliver_flat);
    fabric.attach_chain(
        node.id(), [client, network = &fabric.network(), deliver_flat](
                       sim::NodeId from, sim::FragmentChain chain) {
            auto inner = net::take_bundle_messages(std::move(chain));
            if (inner) {
                network->recycle_chain(std::move(chain));
                for (Bytes& m : *inner) {
                    auto u = net::unwrap_view(m);
                    if (u && u->first == net::Channel::Client) {
                        client->on_message(from, u->second);
                    }
                    network->recycle(std::move(m));
                }
                return;
            }
            network->count_materialization();
            Bytes flat = chain.materialize(&network->pool());
            network->recycle_chain(std::move(chain));
            deliver_flat(from, std::move(flat));
        });
}

}  // namespace

// ------------------------------------------------------------ ClusterBase

ClusterBase::ClusterBase(const ClusterOptions& options)
    : options_(options),
      sim_(options.seed, options.scheduler),
      network_(sim_),
      fabric_(sim_, network_),
      java_(sim::CostProfile::java()),
      native_(sim::CostProfile::native()) {
    sim::LinkSpec lan = sim::LinkSpec::lan();
    if (options.lan_jitter > 0) {
        lan.latency = sim::LatencyModel::normal(
            sim::microseconds(50) + options.lan_jitter / 4,
            options.lan_jitter, sim::microseconds(5));
    }
    network_.set_default_link(lan);
    if (options.transport.credit_window > 0) {
        network_.set_credit_window(options.transport.credit_window);
    }
}

sim::Node& ClusterBase::make_server_node(const std::string& name) {
    const sim::NodeId id = next_server_id_++;
    nodes_.push_back(std::make_unique<sim::Node>(sim_, id, name,
                                                 options_.replica_cores));
    // Each server is its own machine with four bonded NICs.
    network_.set_nic_group(id, static_cast<int>(id),
                           options_.replica_machine_bandwidth);
    // Loopback for co-located components (replica → its own Troxy voter).
    network_.set_link(id, id,
                      sim::LinkSpec{sim::LatencyModel::constant(
                                        sim::microseconds(1)),
                                    40e9});
    server_nodes_.push_back(id);
    return *nodes_.back();
}

sim::Node& ClusterBase::make_client_node(const std::string& name) {
    const sim::NodeId id = next_client_id_++;
    nodes_.push_back(
        std::make_unique<sim::Node>(sim_, id, name, options_.client_cores));

    // Pack clients onto the configured number of client machines.
    const int machine = 10'000 + (next_client_machine_++ %
                                  std::max(1, options_.client_machines));
    network_.set_nic_group(id, machine, options_.client_machine_bandwidth);

    if (options_.wan_clients) {
        for (const sim::NodeId server : server_nodes_) {
            network_.set_link_bidirectional(id, server, sim::LinkSpec::wan());
        }
    }
    return *nodes_.back();
}

// ----------------------------------------------------------- TroxyCluster

TroxyCluster::TroxyCluster(Params params) : ClusterBase(params.base) {
    service_factory_ = params.service;
    client_options_ = params.client;
    config_.f = options_.f;
    config_.checkpoint_interval = options_.checkpoint_interval;
    config_.batch_size_max = options_.batch_size_max;
    config_.batch_delay = options_.batch_delay;
    config_.coalesce_wire = options_.coalesce_wire;
    config_.wire_zero_copy = options_.wire_zero_copy;
    config_.transport = options_.transport;
    config_.adaptive_batching = options_.adaptive_batching;
    config_.execution_lanes = options_.execution_lanes;
    config_.state_chunk_size = options_.state_chunk_size;
    config_.state_chunks_per_message = options_.state_chunks_per_message;
    config_.state_transfer_retry = options_.state_transfer_retry;
    const int n = 2 * options_.f + 1;
    for (int i = 0; i < n; ++i) {
        config_.replicas.push_back(
            make_server_node("replica" + std::to_string(i)).id());
    }
    config_.validate();

    auto provisioned = provision_trinx(n, options_.seed);
    troxy_core::TroxyReplicaHost::Options host_options = params.host;
    host_options.troxy.inside_enclave = !params.ctroxy;
    host_options.authority = provisioned.authority;
    host_options.measurement = provisioned.measurement;
    host_options.wire_zero_copy =
        host_options.wire_zero_copy || options_.wire_zero_copy;
    if (options_.transport.tx_base_ns > 0.0 ||
        options_.transport.credit_window > 0) {
        host_options.transport = options_.transport;
    }

    for (int i = 0; i < n; ++i) {
        identities_.push_back(identity_for(options_.seed, i));
        if (host_options.enclave_recovery_period > 0) {
            // Stagger the fleet: recover one enclave at a time instead of
            // tearing all of them down in lockstep.
            host_options.enclave_recovery_offset =
                params.host.enclave_recovery_offset +
                host_options.enclave_recovery_period *
                    static_cast<std::uint64_t>(i) /
                    static_cast<std::uint64_t>(n);
        }
        hosts_.push_back(std::make_unique<troxy_core::TroxyReplicaHost>(
            fabric_, *nodes_[static_cast<std::size_t>(i)], config_,
            static_cast<std::uint32_t>(i), params.service(),
            provisioned.trinx[static_cast<std::size_t>(i)],
            identities_.back(), params.classifier, java_, native_,
            host_options, options_.seed + static_cast<std::uint64_t>(i)));
        hosts_.back()->attach();
    }
}

troxy_core::LegacyClient& TroxyCluster::add_client(int contact) {
    if (contact < 0) {
        contact = next_contact_;
        next_contact_ = (next_contact_ + 1) % config_.n();
    }
    sim::Node& node = make_client_node(
        "client" + std::to_string(clients_.size()));

    // Failover list starting at the chosen contact replica.
    std::vector<sim::NodeId> servers;
    std::vector<crypto::X25519Key> keys;
    for (int i = 0; i < config_.n(); ++i) {
        const int replica = (contact + i) % config_.n();
        servers.push_back(config_.node_of(static_cast<std::uint32_t>(replica)));
        keys.push_back(
            identities_[static_cast<std::size_t>(replica)].public_key);
    }

    clients_.push_back(std::make_unique<troxy_core::LegacyClient>(
        fabric_, node, std::move(servers), std::move(keys), java_,
        client_options_));
    auto* client = clients_.back().get();
    attach_legacy_dispatch(fabric_, node, client);
    return *client;
}

void TroxyCluster::crash_host(int replica) {
    hosts_.at(static_cast<std::size_t>(replica))->crash();
}

void TroxyCluster::restart_host(int replica) {
    hosts_.at(static_cast<std::size_t>(replica))->restart(service_factory_());
}

bool TroxyCluster::recover_enclave(int replica) {
    return hosts_.at(static_cast<std::size_t>(replica))->recover_enclave();
}

// --------------------------------------------------- ShardedTroxyCluster

ShardedTroxyCluster::ShardedTroxyCluster(Params params)
    : ClusterBase(params.base) {
    service_factory_ = params.service;
    client_options_ = params.client;
    const int shards = options_.shard_count;
    const int n = 2 * options_.f + 1;
    if (shards < 1) {
        throw std::invalid_argument(
            "ShardedTroxyCluster: shard_count must be at least 1, got " +
            std::to_string(shards));
    }
    if (options_.front_count < 1) {
        throw std::invalid_argument(
            "ShardedTroxyCluster: front_count must be at least 1, got " +
            std::to_string(options_.front_count));
    }
    if (options_.front_count > 1 && shards == 1) {
        throw std::invalid_argument(
            "ShardedTroxyCluster: front_count > 1 needs a sharded "
            "deployment (shard_count > 1) — unsharded clients contact "
            "the replicas directly");
    }
    if (options_.replica_budget > 0 &&
        shards * n > options_.replica_budget) {
        throw std::invalid_argument(
            "ShardedTroxyCluster: " + std::to_string(shards) +
            " shards x " + std::to_string(n) + " replicas (f=" +
            std::to_string(options_.f) + ") = " +
            std::to_string(shards * n) +
            " replicas exceed the replica budget of " +
            std::to_string(options_.replica_budget));
    }
    if (shards > 1) {
        if (params.map.shard_count() != shards) {
            throw std::invalid_argument(
                "ShardedTroxyCluster: shard map describes " +
                std::to_string(params.map.shard_count()) +
                " shards but shard_count is " + std::to_string(shards));
        }
        params.map.validate();
    } else {
        // Single shard: the whole key space, whatever map was passed.
        params.map = troxy_core::ShardMap();
    }
    map_ = std::move(params.map);

    groups_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
        build_group(s, params);
    }

    if (shards > 1) {
        const int fronts = options_.front_count;
        front_map_ = troxy_core::FrontMap(fronts);
        for (int f = 0; f < fronts; ++f) {
            // A single-front deployment keeps the pre-multi-front node
            // name and identity seed so it replays bit-identically.
            const std::string name =
                fronts == 1 ? "front" : "front" + std::to_string(f);
            sim::Node& front_node = make_server_node(name);
            front_identities_.push_back(
                identity_for(options_.seed, 9000 + f));
            std::vector<troxy_core::ShardFrontHost::Backend> backends;
            backends.reserve(groups_.size());
            for (Group& group : groups_) {
                troxy_core::ShardFrontHost::Backend backend;
                for (int i = 0; i < n; ++i) {
                    backend.servers.push_back(
                        group.config.node_of(
                            static_cast<std::uint32_t>(i)));
                    backend.pinned_keys.push_back(
                        group.identities[static_cast<std::size_t>(i)]
                            .public_key);
                }
                backends.push_back(std::move(backend));
            }
            fronts_.push_back(
                std::make_unique<troxy_core::ShardFrontHost>(
                    fabric_, front_node, map_, std::move(backends),
                    front_identities_.back(), params.classifier, native_,
                    params.front));
            fronts_.back()->attach();
            fronts_.back()->start();
        }
    }
}

void ShardedTroxyCluster::build_group(int shard, const Params& params) {
    const int n = 2 * options_.f + 1;
    // Shard 0 runs on the base seed so an S=1 deployment replays the
    // unsharded TroxyCluster bit-identically; further shards derive
    // disjoint key material from a fixed stride.
    const std::uint64_t group_seed =
        options_.seed + static_cast<std::uint64_t>(shard) * 1000003;
    Group group;
    group.config.f = options_.f;
    group.config.checkpoint_interval = options_.checkpoint_interval;
    group.config.batch_size_max = options_.batch_size_max;
    group.config.batch_delay = options_.batch_delay;
    group.config.coalesce_wire = options_.coalesce_wire;
    group.config.wire_zero_copy = options_.wire_zero_copy;
    group.config.transport = options_.transport;
    group.config.adaptive_batching = options_.adaptive_batching;
    group.config.execution_lanes = options_.execution_lanes;
    group.config.state_chunk_size = options_.state_chunk_size;
    group.config.state_chunks_per_message =
        options_.state_chunks_per_message;
    group.config.state_transfer_retry = options_.state_transfer_retry;
    group.config.shard_id = shard;
    group.config.shard_count = options_.shard_count;
    const std::size_t node_base = nodes_.size();
    for (int i = 0; i < n; ++i) {
        const std::string name =
            options_.shard_count == 1
                ? "replica" + std::to_string(i)
                : "s" + std::to_string(shard) + "r" + std::to_string(i);
        group.config.replicas.push_back(make_server_node(name).id());
    }
    group.config.validate();

    auto provisioned = provision_trinx(n, group_seed);
    troxy_core::TroxyReplicaHost::Options host_options = params.host;
    host_options.troxy.inside_enclave = !params.ctroxy;
    host_options.authority = provisioned.authority;
    host_options.measurement = provisioned.measurement;
    host_options.wire_zero_copy =
        host_options.wire_zero_copy || options_.wire_zero_copy;
    if (options_.transport.tx_base_ns > 0.0 ||
        options_.transport.credit_window > 0) {
        host_options.transport = options_.transport;
    }

    for (int i = 0; i < n; ++i) {
        group.identities.push_back(identity_for(group_seed, i));
        if (host_options.enclave_recovery_period > 0) {
            host_options.enclave_recovery_offset =
                params.host.enclave_recovery_offset +
                host_options.enclave_recovery_period *
                    static_cast<std::uint64_t>(i) /
                    static_cast<std::uint64_t>(n);
        }
        group.hosts.push_back(
            std::make_unique<troxy_core::TroxyReplicaHost>(
                fabric_, *nodes_[node_base + static_cast<std::size_t>(i)],
                group.config, static_cast<std::uint32_t>(i),
                params.service(),
                provisioned.trinx[static_cast<std::size_t>(i)],
                group.identities.back(), params.classifier, java_,
                native_, host_options,
                group_seed + static_cast<std::uint64_t>(i)));
        group.hosts.back()->attach();
    }
    groups_.push_back(std::move(group));
}

troxy_core::LegacyClient& ShardedTroxyCluster::add_client() {
    sim::Node& node = make_client_node(
        "client" + std::to_string(clients_.size()));

    std::vector<sim::NodeId> servers;
    std::vector<crypto::X25519Key> keys;
    if (!fronts_.empty()) {
        // Sharded: the front tier is the transparent endpoint. The
        // consistent-hash ring picks this client's home front; the rest
        // of the ring walk is its failover list, so a dead front sends
        // the client to the next one (fronts are stateless, any front
        // serves any client).
        for (const int f : front_map_.failover_order(node.id())) {
            servers.push_back(
                fronts_[static_cast<std::size_t>(f)]->node().id());
            keys.push_back(
                front_identities_[static_cast<std::size_t>(f)]
                    .public_key);
        }
    } else {
        // Unsharded: round-robin contact with full failover list,
        // exactly like TroxyCluster::add_client.
        const Group& group = groups_.front();
        const int contact = next_contact_;
        next_contact_ = (next_contact_ + 1) % group.config.n();
        for (int i = 0; i < group.config.n(); ++i) {
            const int replica = (contact + i) % group.config.n();
            servers.push_back(
                group.config.node_of(static_cast<std::uint32_t>(replica)));
            keys.push_back(
                group.identities[static_cast<std::size_t>(replica)]
                    .public_key);
        }
    }

    clients_.push_back(std::make_unique<troxy_core::LegacyClient>(
        fabric_, node, std::move(servers), std::move(keys), java_,
        client_options_));
    auto* client = clients_.back().get();
    attach_legacy_dispatch(fabric_, node, client);
    return *client;
}

void ShardedTroxyCluster::crash_host(int shard, int replica) {
    groups_.at(static_cast<std::size_t>(shard))
        .hosts.at(static_cast<std::size_t>(replica))
        ->crash();
}

void ShardedTroxyCluster::restart_host(int shard, int replica) {
    groups_.at(static_cast<std::size_t>(shard))
        .hosts.at(static_cast<std::size_t>(replica))
        ->restart(service_factory_());
}

void ShardedTroxyCluster::crash_front(int front) {
    fronts_.at(static_cast<std::size_t>(front))->crash();
}

void ShardedTroxyCluster::restart_front(int front) {
    fronts_.at(static_cast<std::size_t>(front))->restart();
}

// -------------------------------------------------------- BaselineCluster

BaselineCluster::BaselineCluster(Params params)
    : ClusterBase(params.base),
      optimistic_reads_(params.optimistic_reads),
      client_retransmit_(params.client_retransmit) {
    config_.f = options_.f;
    config_.checkpoint_interval = options_.checkpoint_interval;
    config_.batch_size_max = options_.batch_size_max;
    config_.batch_delay = options_.batch_delay;
    config_.execution_lanes = options_.execution_lanes;
    config_.state_chunk_size = options_.state_chunk_size;
    config_.state_chunks_per_message = options_.state_chunks_per_message;
    config_.state_transfer_retry = options_.state_transfer_retry;
    const int n = 2 * options_.f + 1;
    for (int i = 0; i < n; ++i) {
        config_.replicas.push_back(
            make_server_node("replica" + std::to_string(i)).id());
    }
    config_.validate();

    Writer master_seed;
    master_seed.u64(options_.seed);
    master_seed.str("client-master");
    client_master_ = crypto::hkdf({}, master_seed.data(),
                                  to_bytes("clients"), 32);

    auto provisioned = provision_trinx(n, options_.seed);
    for (int i = 0; i < n; ++i) {
        identities_.push_back(identity_for(options_.seed, i));
        const Bytes master = client_master_;
        const auto replica_id = static_cast<std::uint32_t>(i);
        hosts_.push_back(std::make_unique<baselines::BaselineReplicaHost>(
            fabric_, *nodes_[static_cast<std::size_t>(i)], config_,
            replica_id, params.service(),
            provisioned.trinx[static_cast<std::size_t>(i)],
            identities_.back(),
            [master, replica_id](sim::NodeId client) {
                return hybster::client_replica_key(master, client,
                                                   replica_id);
            },
            java_));
        hosts_.back()->attach();
    }
}

hybster::Client& BaselineCluster::add_client() {
    sim::Node& node = make_client_node(
        "client" + std::to_string(clients_.size()));

    std::vector<crypto::X25519Key> pinned;
    std::vector<Bytes> keys;
    for (int i = 0; i < config_.n(); ++i) {
        pinned.push_back(
            identities_[static_cast<std::size_t>(i)].public_key);
        keys.push_back(hybster::client_replica_key(
            client_master_, node.id(), static_cast<std::uint32_t>(i)));
    }

    hybster::Client::Options client_options;
    client_options.optimistic_reads = optimistic_reads_;
    client_options.retransmit_timeout = client_retransmit_;
    clients_.push_back(std::make_unique<hybster::Client>(
        fabric_, node, config_, std::move(pinned), std::move(keys), java_,
        client_options));
    auto* client = clients_.back().get();
    fabric_.attach(node.id(), [client, network = &fabric_.network()](
                                  sim::NodeId from, Bytes message) {
        auto unwrapped = net::unwrap_view(message);
        if (unwrapped && unwrapped->first == net::Channel::Client) {
            client->on_message(from, unwrapped->second);
        }
        network->recycle(std::move(message));
    });
    return *client;
}

// -------------------------------------------------------- ProphecyCluster

ProphecyCluster::ProphecyCluster(Params params) : ClusterBase(params.base) {
    config_.f = options_.f;
    config_.checkpoint_interval = options_.checkpoint_interval;
    const int n = 3 * options_.f + 1;
    for (int i = 0; i < n; ++i) {
        config_.replicas.push_back(
            make_server_node("pbft" + std::to_string(i)).id());
    }
    config_.validate();

    // The middlebox machine sits next to the replicas (LAN links).
    sim::Node& mb_node = make_server_node("middlebox");
    middlebox_node_ = mb_node.id();

    // Pairwise MACs for all PBFT parties including the middlebox client.
    Writer mac_seed;
    mac_seed.u64(options_.seed);
    mac_seed.str("pbft-macs");
    std::vector<sim::NodeId> group = config_.replicas;
    group.push_back(middlebox_node_);
    auto macs = std::make_shared<net::MacTable>(net::MacTable::for_group(
        crypto::hkdf({}, mac_seed.data(), to_bytes("pbft"), 32), group));

    for (int i = 0; i < n; ++i) {
        replicas_.push_back(std::make_unique<baselines::pbft::PbftReplica>(
            fabric_, *nodes_[static_cast<std::size_t>(i)], config_,
            static_cast<std::uint32_t>(i), params.service(), macs, java_));
        auto* replica = replicas_.back().get();
        fabric_.attach(config_.replicas[static_cast<std::size_t>(i)],
                       [replica, network = &fabric_.network()](
                           sim::NodeId from, Bytes message) {
                           auto unwrapped = net::unwrap_view(message);
                           if (unwrapped &&
                               unwrapped->first == net::Channel::Pbft) {
                               replica->on_message(from, unwrapped->second);
                           }
                           network->recycle(std::move(message));
                       });
    }

    middlebox_identity_ = identity_for(options_.seed, 1000);
    middlebox_ = std::make_unique<baselines::ProphecyMiddlebox>(
        fabric_, mb_node, config_, macs, middlebox_identity_,
        params.classifier, native_, params.middlebox, options_.seed);
    middlebox_->attach();
}

troxy_core::LegacyClient& ProphecyCluster::add_client() {
    sim::Node& node = make_client_node(
        "client" + std::to_string(clients_.size()));
    clients_.push_back(std::make_unique<troxy_core::LegacyClient>(
        fabric_, node, std::vector<sim::NodeId>{middlebox_node_},
        std::vector<crypto::X25519Key>{middlebox_identity_.public_key},
        java_, troxy_core::LegacyClient::Options{}));
    auto* client = clients_.back().get();
    fabric_.attach(node.id(), [client, network = &fabric_.network()](
                                  sim::NodeId from, Bytes message) {
        auto unwrapped = net::unwrap_view(message);
        if (unwrapped && unwrapped->first == net::Channel::Client) {
            client->on_message(from, unwrapped->second);
        }
        network->recycle(std::move(message));
    });
    return *client;
}

// ------------------------------------------------------ StandaloneCluster

StandaloneCluster::StandaloneCluster(Params params)
    : ClusterBase(params.base) {
    sim::Node& node = make_server_node("server");
    server_node_ = node.id();
    identity_ = identity_for(options_.seed, 0);
    server_ = std::make_unique<http::StandaloneServer>(
        fabric_, node, params.service(), identity_, native_);
    server_->attach();
}

troxy_core::LegacyClient& StandaloneCluster::add_client() {
    sim::Node& node = make_client_node(
        "client" + std::to_string(clients_.size()));
    clients_.push_back(std::make_unique<troxy_core::LegacyClient>(
        fabric_, node, std::vector<sim::NodeId>{server_node_},
        std::vector<crypto::X25519Key>{identity_.public_key}, java_,
        troxy_core::LegacyClient::Options{}));
    auto* client = clients_.back().get();
    fabric_.attach(node.id(), [client, network = &fabric_.network()](
                                  sim::NodeId from, Bytes message) {
        auto unwrapped = net::unwrap_view(message);
        if (unwrapped && unwrapped->first == net::Channel::Client) {
            client->on_message(from, unwrapped->second);
        }
        network->recycle(std::move(message));
    });
    return *client;
}

}  // namespace troxy::bench
