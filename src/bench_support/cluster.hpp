// Deployment builders: one call constructs a full simulated cluster
// matching the paper's testbed (§VI-A) — replicas on quad-core machines
// with four 1 Gbps NICs, clients packed onto two client machines, LAN
// links inside the cluster and optionally 100±20 ms WAN links towards the
// clients.
//
// Four deployments, one per evaluated system:
//   TroxyCluster       — Troxy-backed Hybster (etroxy / ctroxy)
//   BaselineCluster    — original Hybster with the client-side library (BL)
//   ProphecyCluster    — PBFT (3f+1) behind a Prophecy middlebox
//   StandaloneCluster  — single unreplicated server (the "Jetty" floor)
#pragma once

#include <memory>
#include <vector>

#include "baselines/baseline_host.hpp"
#include "baselines/prophecy.hpp"
#include "enclave/attestation.hpp"
#include "hybster/client.hpp"
#include "http/standalone_server.hpp"
#include "net/fabric.hpp"
#include "troxy/host.hpp"
#include "troxy/legacy_client.hpp"
#include "troxy/shard_front.hpp"
#include "troxy/shard_router.hpp"

namespace troxy::bench {

struct ClusterOptions {
    int f = 1;
    int replica_cores = 8;  // i7-6700: 4 cores + hyper-threading
    int client_cores = 8;
    bool wan_clients = false;  // add 100±20 ms on client links
    int client_machines = 2;   // paper: two client machines
    double client_machine_bandwidth = 4e9;   // four 1 Gbps NICs each
    double replica_machine_bandwidth = 4e9;  // four 1 Gbps NICs
    std::uint64_t seed = 1;
    hybster::SequenceNumber checkpoint_interval = 512;
    /// Leader batching knobs, forwarded into hybster::Config: requests
    /// per Prepare (1 = unbatched) and max hold time before an
    /// incomplete batch is cut.
    std::size_t batch_size_max = 1;
    sim::Duration batch_delay = 0;
    /// Coalesce replica flush bursts into one Bundle frame per
    /// destination (hybster::Config::coalesce_wire).
    bool coalesce_wire = false;
    /// Ship coalesced bursts as scatter-gather fragment chains instead of
    /// flattened Bundle buffers (replica and Troxy-host senders). Wire
    /// bytes identical; off by default for bit-identical seed replay.
    bool wire_zero_copy = false;
    /// Transport profile every sender charges per emitted record
    /// (kernel_nic syscall+copy, bypass doorbell+credits); its
    /// credit_window also arms the network's in-flight bound. The default
    /// none() keeps the seed's free-transport model.
    sim::TransportProfile transport = sim::TransportProfile::none();
    /// Load-adaptive effective batch boundary on the leader
    /// (hybster::Config::adaptive_batching).
    bool adaptive_batching = false;
    /// Modeled execution lanes per replica
    /// (hybster::Config::execution_lanes); 1 = serial execution.
    std::size_t execution_lanes = 1;
    /// Merkle-incremental state-transfer knobs, forwarded into
    /// hybster::Config: chunk granularity, stream window, and the retry
    /// that resumes a half-finished transfer.
    std::size_t state_chunk_size = 4096;
    std::size_t state_chunks_per_message = 64;
    sim::Duration state_transfer_retry = sim::milliseconds(250);
    /// Standard deviation added to intra-cluster link latency. The
    /// deterministic simulator lacks the execution-time variance of a
    /// real testbed (JVM GC pauses, interrupt coalescing, switch
    /// queueing); experiments whose phenomena depend on replica
    /// de-synchronization (read/write conflicts, Fig. 10) opt into it.
    sim::Duration lan_jitter = 0;
    /// Event-scheduler engine: Calendar is the production O(1) wheel,
    /// BinaryHeap the simple reference used for determinism A/B checks.
    sim::Simulator::Scheduler scheduler =
        sim::Simulator::Scheduler::Calendar;
    /// Number of independent replica groups the service state is
    /// partitioned over (ShardedTroxyCluster). 1 = the classic unsharded
    /// deployment, byte-identical to TroxyCluster.
    int shard_count = 1;
    /// Upper bound on total replicas across all shards (testbed machine
    /// budget); 0 = unlimited. shard_count * (2f+1) must fit inside it.
    int replica_budget = 0;
    /// Independent routing fronts over the sharded deployment (fronts
    /// share no state; clients are assigned by consistent hashing).
    /// Only meaningful when shard_count > 1; front_count == 1 keeps the
    /// single-front deployment bit-identical to the pre-multi-front
    /// builds.
    int front_count = 1;
};

/// Owns the simulator, network, fabric and nodes shared by a deployment.
class ClusterBase {
  public:
    explicit ClusterBase(const ClusterOptions& options);
    virtual ~ClusterBase() = default;

    [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
    [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
    [[nodiscard]] sim::Network& network() noexcept { return network_; }
    [[nodiscard]] const ClusterOptions& options() const noexcept {
        return options_;
    }
    [[nodiscard]] const sim::CostProfile& java_profile() const noexcept {
        return java_;
    }
    [[nodiscard]] const sim::CostProfile& native_profile() const noexcept {
        return native_;
    }

  protected:
    /// Creates a server node on its own machine (own NIC group).
    sim::Node& make_server_node(const std::string& name);

    /// Creates a client node packed onto one of the client machines; if
    /// WAN mode is on, its links to all existing server nodes get the
    /// 100±20 ms latency.
    sim::Node& make_client_node(const std::string& name);

    ClusterOptions options_;
    sim::Simulator sim_;
    sim::Network network_;
    net::Fabric fabric_;
    sim::CostProfile java_;
    sim::CostProfile native_;
    std::vector<std::unique_ptr<sim::Node>> nodes_;
    std::vector<sim::NodeId> server_nodes_;
    sim::NodeId next_server_id_ = 1;
    sim::NodeId next_client_id_ = 1000;
    int next_client_machine_ = 0;
};

// ---------------------------------------------------------------- Troxy

class TroxyCluster : public ClusterBase {
  public:
    struct Params {
        ClusterOptions base;
        hybster::ServiceFactory service;
        troxy_core::Classifier classifier;
        troxy_core::TroxyReplicaHost::Options host;
        troxy_core::LegacyClient::Options client;
        bool ctroxy = false;  // run the Troxy outside the enclave
    };

    explicit TroxyCluster(Params params);

    [[nodiscard]] int n() const noexcept { return config_.n(); }
    [[nodiscard]] const hybster::Config& config() const noexcept {
        return config_;
    }
    [[nodiscard]] troxy_core::TroxyReplicaHost& host(int replica) {
        return *hosts_.at(static_cast<std::size_t>(replica));
    }

    /// Adds a legacy client whose first contact is `contact` (or
    /// round-robin when negative); failover list covers all replicas.
    troxy_core::LegacyClient& add_client(int contact = -1);

    /// Whole-host crash/restart; restart hands the host a fresh service
    /// instance from the cluster's factory, after which the replica
    /// rejoins via checkpoint state transfer.
    void crash_host(int replica);
    void restart_host(int replica);

    /// Proactive enclave recovery on one host (attestation re-handshake,
    /// session-key rotation, certified counter handover). Returns false
    /// if recovery could not start (host crashed, one in flight).
    bool recover_enclave(int replica);

    [[nodiscard]] std::vector<troxy_core::LegacyClient*> clients() {
        std::vector<troxy_core::LegacyClient*> out;
        for (auto& c : clients_) out.push_back(c.get());
        return out;
    }

  private:
    hybster::Config config_;
    hybster::ServiceFactory service_factory_;
    troxy_core::LegacyClient::Options client_options_;
    std::vector<crypto::X25519Keypair> identities_;
    std::vector<std::unique_ptr<troxy_core::TroxyReplicaHost>> hosts_;
    std::vector<std::unique_ptr<troxy_core::LegacyClient>> clients_;
    int next_contact_ = 0;
};

// --------------------------------------------------------- Sharded Troxy

/// S independent Troxy-backed Hybster groups behind a transparent front
/// tier. Each shard is a full 2f+1 replica group with its own log,
/// leader, checkpoints and Troxy cache slice; a front terminates legacy
/// client channels, routes by the ShardMap and merges replies so clients
/// observe a single endpoint. The front holds no protocol state, so the
/// tier scales out: front_count > 1 runs F independent fronts over the
/// same shards with consistent-hash client assignment (FrontMap); a
/// client's failover list walks the ring, so a front crash sends its
/// clients to the next front. With shard_count == 1 the deployment is
/// byte-identical to TroxyCluster: same node names, same seeds, no
/// front node, clients contact the replicas directly.
class ShardedTroxyCluster : public ClusterBase {
  public:
    struct Params {
        ClusterOptions base;  // base.shard_count selects S
        hybster::ServiceFactory service;
        troxy_core::Classifier classifier;
        troxy_core::TroxyReplicaHost::Options host;
        troxy_core::LegacyClient::Options client;
        bool ctroxy = false;
        /// Key-range partition; must describe exactly base.shard_count
        /// shards (ignored when shard_count == 1). Build with
        /// ShardMap::split_evenly over the workload's key universe.
        troxy_core::ShardMap map;
        /// Front knobs (upstream session options).
        troxy_core::ShardFrontHost::Options front;
    };

    /// Throws std::invalid_argument when the shard knobs are inconsistent
    /// (shard count < 1, replica budget exceeded, map/shard mismatch,
    /// malformed boundaries).
    explicit ShardedTroxyCluster(Params params);

    [[nodiscard]] int shards() const noexcept {
        return static_cast<int>(groups_.size());
    }
    [[nodiscard]] const hybster::Config& config(int shard = 0) const {
        return groups_.at(static_cast<std::size_t>(shard)).config;
    }
    [[nodiscard]] troxy_core::TroxyReplicaHost& host(int shard,
                                                     int replica) {
        return *groups_.at(static_cast<std::size_t>(shard))
                    .hosts.at(static_cast<std::size_t>(replica));
    }
    /// The first routing front; only present when shards() > 1.
    [[nodiscard]] troxy_core::ShardFrontHost* front() noexcept {
        return fronts_.empty() ? nullptr : fronts_.front().get();
    }
    [[nodiscard]] troxy_core::ShardFrontHost& front(int f) {
        return *fronts_.at(static_cast<std::size_t>(f));
    }
    [[nodiscard]] int front_count() const noexcept {
        return static_cast<int>(fronts_.size());
    }
    /// The consistent-hash ring assigning clients to fronts.
    [[nodiscard]] const troxy_core::FrontMap& front_map() const noexcept {
        return front_map_;
    }

    /// Adds a legacy client. Sharded: contacts its consistent-hash front
    /// first, with the remaining fronts as failover targets in ring
    /// order. Unsharded: identical to TroxyCluster::add_client with
    /// round-robin contact over the replicas.
    troxy_core::LegacyClient& add_client();

    void crash_host(int shard, int replica);
    void restart_host(int shard, int replica);

    /// Front-tier crash/restart. A crashed front drops its connections
    /// and in-flight forwards; its clients time out and fail over to the
    /// next front on the ring (the shards never notice).
    void crash_front(int front);
    void restart_front(int front);

    [[nodiscard]] std::vector<troxy_core::LegacyClient*> clients() {
        std::vector<troxy_core::LegacyClient*> out;
        for (auto& c : clients_) out.push_back(c.get());
        return out;
    }

  private:
    struct Group {
        hybster::Config config;
        std::vector<crypto::X25519Keypair> identities;
        std::vector<std::unique_ptr<troxy_core::TroxyReplicaHost>> hosts;
    };

    void build_group(int shard, const Params& params);

    hybster::ServiceFactory service_factory_;
    troxy_core::LegacyClient::Options client_options_;
    troxy_core::ShardMap map_;
    troxy_core::FrontMap front_map_;
    std::vector<Group> groups_;
    std::vector<std::unique_ptr<troxy_core::ShardFrontHost>> fronts_;
    std::vector<crypto::X25519Keypair> front_identities_;
    std::vector<std::unique_ptr<troxy_core::LegacyClient>> clients_;
    int next_contact_ = 0;
};

// -------------------------------------------------------------- Baseline

class BaselineCluster : public ClusterBase {
  public:
    struct Params {
        ClusterOptions base;
        hybster::ServiceFactory service;
        bool optimistic_reads = false;  // PBFT-like read optimization
        sim::Duration client_retransmit = sim::milliseconds(2000);
    };

    explicit BaselineCluster(Params params);

    [[nodiscard]] const hybster::Config& config() const noexcept {
        return config_;
    }
    [[nodiscard]] baselines::BaselineReplicaHost& host(int replica) {
        return *hosts_.at(static_cast<std::size_t>(replica));
    }

    hybster::Client& add_client();

    [[nodiscard]] std::vector<hybster::Client*> clients() {
        std::vector<hybster::Client*> out;
        for (auto& c : clients_) out.push_back(c.get());
        return out;
    }

  private:
    hybster::Config config_;
    Bytes client_master_;
    bool optimistic_reads_;
    sim::Duration client_retransmit_;
    std::vector<crypto::X25519Keypair> identities_;
    std::vector<std::unique_ptr<baselines::BaselineReplicaHost>> hosts_;
    std::vector<std::unique_ptr<hybster::Client>> clients_;
};

// -------------------------------------------------------------- Prophecy

class ProphecyCluster : public ClusterBase {
  public:
    struct Params {
        ClusterOptions base;
        hybster::ServiceFactory service;
        troxy_core::Classifier classifier;
        baselines::ProphecyMiddlebox::Options middlebox;
    };

    explicit ProphecyCluster(Params params);

    [[nodiscard]] baselines::ProphecyMiddlebox& middlebox() noexcept {
        return *middlebox_;
    }
    [[nodiscard]] baselines::pbft::PbftReplica& replica(int i) {
        return *replicas_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] const baselines::pbft::Config& config() const noexcept {
        return config_;
    }

    troxy_core::LegacyClient& add_client();

  private:
    baselines::pbft::Config config_;
    crypto::X25519Keypair middlebox_identity_;
    sim::NodeId middlebox_node_ = 0;
    std::vector<std::unique_ptr<baselines::pbft::PbftReplica>> replicas_;
    std::unique_ptr<baselines::ProphecyMiddlebox> middlebox_;
    std::vector<std::unique_ptr<troxy_core::LegacyClient>> clients_;
};

// ------------------------------------------------------------ Standalone

class StandaloneCluster : public ClusterBase {
  public:
    struct Params {
        ClusterOptions base;
        hybster::ServiceFactory service;
    };

    explicit StandaloneCluster(Params params);

    [[nodiscard]] http::StandaloneServer& server() noexcept {
        return *server_;
    }

    troxy_core::LegacyClient& add_client();

  private:
    crypto::X25519Keypair identity_;
    sim::NodeId server_node_ = 0;
    std::unique_ptr<http::StandaloneServer> server_;
    std::vector<std::unique_ptr<troxy_core::LegacyClient>> clients_;
};

}  // namespace troxy::bench
