// Measurement collection for experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace troxy::bench {

/// Collects per-request latencies inside a measurement window and derives
/// throughput and percentile statistics.
class Recorder {
  public:
    /// Measurement only counts requests completing in
    /// [warmup, warmup + window).
    Recorder(sim::SimTime warmup, sim::Duration window)
        : warmup_(warmup), window_(window) {}

    void record(sim::SimTime completed_at, sim::Duration latency);

    [[nodiscard]] std::uint64_t completed() const noexcept {
        return latencies_.size();
    }
    [[nodiscard]] double throughput_per_sec() const;
    [[nodiscard]] double mean_latency_ms() const;
    [[nodiscard]] double percentile_latency_ms(double p) const;

    [[nodiscard]] sim::SimTime window_end() const noexcept {
        return warmup_ + window_;
    }

  private:
    sim::SimTime warmup_;
    sim::Duration window_;
    mutable std::vector<sim::Duration> latencies_;
    mutable bool sorted_ = false;
};

/// One row of a results table.
struct Row {
    std::string label;
    double throughput = 0.0;  // req/s
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

/// Prints rows in the paper's table style, plus optional ratio column
/// against the first row.
void print_table(const std::string& title, const std::vector<Row>& rows,
                 bool ratio_vs_first = true);

}  // namespace troxy::bench
