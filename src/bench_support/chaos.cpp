#include "bench_support/chaos.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>

#include "apps/echo_service.hpp"
#include "bench_support/cluster.hpp"
#include "common/serialize.hpp"

namespace troxy::bench {

namespace {

using apps::EchoService;

/// Linearizability checking state for the echo service: a per-key
/// low-water mark of versions the clients have collectively observed as
/// committed. Any later reply must be at or above the mark that held when
/// its request was issued — a write must install a strictly newer
/// version, a read must return one at least as new.
struct Checker {
    std::map<std::uint64_t, std::uint64_t> committed;  // key → version
    std::map<std::uint64_t, std::uint64_t> writes_issued;
};

struct PendingOp {
    bool is_write = false;
    bool multi = false;        // two-key multiwrite (cross-shard path)
    std::uint64_t key = 0;
    std::uint64_t partner = 0; // second key of a multiwrite
    std::uint64_t floor = 0;   // committed[key] at invocation
};

struct ClientDriver {
    troxy_core::LegacyClient* client = nullptr;
    Rng rng{0};
    int remaining = 0;
    PendingOp pending;
};

}  // namespace

ChaosReport run_chaos(const ChaosOptions& options) {
    ChaosReport report;

    TroxyCluster::Params params;
    params.base.seed = options.seed;
    params.base.scheduler = options.scheduler;
    params.base.checkpoint_interval = options.checkpoint_interval;
    params.base.batch_size_max = options.batch_size_max;
    params.base.batch_delay = options.batch_delay;
    params.base.coalesce_wire = options.coalesce_wire;
    params.base.wire_zero_copy = options.wire_zero_copy;
    params.base.transport = options.transport;
    params.host.voter_batch_max = options.voter_batch_max;
    params.host.coalesce_wire = options.coalesce_wire;
    params.host.fastread_batch_max = options.fastread_batch_max;
    params.host.batch_reply_auth = options.batch_reply_auth;
    params.base.execution_lanes = options.execution_lanes;
    params.base.state_chunk_size = options.state_chunk_size;
    params.base.state_chunks_per_message = options.state_chunks_per_message;
    params.base.state_transfer_retry = options.state_transfer_retry;
    params.host.enclave_recovery_period = options.enclave_recovery_period;
    params.service = []() { return std::make_unique<EchoService>(); };
    params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    // Fast recovery timeouts so crash/partition windows of a few seconds
    // are survivable well inside the horizon.
    params.host.vote_timeout = sim::milliseconds(300);
    params.host.fast_read_timeout = sim::milliseconds(30);
    params.client.connection_timeout = sim::milliseconds(500);
    params.client.backoff_cap = sim::milliseconds(2000);

    // Build the deployment: the classic unsharded TroxyCluster (the
    // pre-shard chaos path, bit-identical replay) or a sharded one driven
    // through the routing front. Everything below speaks through the
    // adapter handles so both paths share one workload and checker.
    std::unique_ptr<TroxyCluster> flat;
    std::unique_ptr<ShardedTroxyCluster> sharded;
    ClusterBase* base = nullptr;
    int hosts_per_shard = 0;
    int total_hosts = 0;
    const hybster::Config* config0 = nullptr;

    if (options.shards <= 1) {
        flat = std::make_unique<TroxyCluster>(params);
        base = flat.get();
        hosts_per_shard = flat->n();
        total_hosts = flat->n();
        config0 = &flat->config();
    } else {
        ShardedTroxyCluster::Params sparams;
        sparams.base = params.base;
        sparams.base.shard_count = options.shards;
        sparams.base.front_count = options.fronts;
        sparams.service = params.service;
        sparams.classifier = params.classifier;
        sparams.host = params.host;
        sparams.client = params.client;
        sparams.front.upstream = params.client;
        sparams.front.cross_pipeline_depth = options.cross_pipeline_depth;
        std::vector<std::string> universe;
        for (int k = 0; k < std::max(options.keys, 1); ++k) {
            universe.push_back("k" + std::to_string(k));
        }
        sparams.map = troxy_core::ShardMap::split_evenly(
            std::move(universe), options.shards);
        sharded = std::make_unique<ShardedTroxyCluster>(std::move(sparams));
        base = sharded.get();
        hosts_per_shard = 2 * sharded->options().f + 1;
        total_hosts = hosts_per_shard * sharded->shards();
        config0 = &sharded->config(0);
    }

    auto host_at = [&](int h) -> troxy_core::TroxyReplicaHost& {
        if (flat) return flat->host(h);
        return sharded->host(h / hosts_per_shard, h % hosts_per_shard);
    };
    auto crash_at = [&](int h) {
        if (flat) {
            flat->crash_host(h);
        } else {
            sharded->crash_host(h / hosts_per_shard, h % hosts_per_shard);
        }
    };
    auto restart_at = [&](int h) {
        if (flat) {
            flat->restart_host(h);
        } else {
            sharded->restart_host(h / hosts_per_shard,
                                  h % hosts_per_shard);
        }
    };

    // Fault schedule: explicit plan, a rolling restart, or a seeded
    // random one.
    sim::FaultPlan plan = options.plan;
    if (plan.empty() && options.rolling_restart) {
        // Rolling upgrade: every host crash/restarts once, one at a time,
        // evenly spread across the fault window. The downtime is clamped
        // below the per-host gap so at most one replica (≤ f, in any
        // shard) is ever down, keeping the run live throughout.
        const int n = total_hosts;
        const sim::Duration gap =
            (options.heal_by - options.fault_start) /
            static_cast<sim::Duration>(n);
        const sim::Duration down =
            std::min<sim::Duration>(options.rolling_downtime,
                                    gap > 1 ? gap - 1 : 1);
        for (int i = 0; i < n; ++i) {
            const sim::SimTime at =
                options.fault_start +
                gap * static_cast<sim::Duration>(i);
            plan.crash(at, i);
            plan.restart(at + down, i);
        }
    }
    if (plan.empty()) {
        Rng plan_rng = Rng(options.seed).fork(0x63686173);
        sim::FaultPlan::RandomOptions random;
        random.start = options.fault_start;
        random.heal_by = options.heal_by;
        random.hosts = total_hosts;
        random.max_concurrent_crashes = config0->f;
        if (flat) {
            random.nodes = config0->replicas;
        } else {
            for (int s = 0; s < sharded->shards(); ++s) {
                const auto& replicas = sharded->config(s).replicas;
                random.nodes.insert(random.nodes.end(), replicas.begin(),
                                    replicas.end());
            }
        }
        random.crash_events = options.crash_events;
        random.partition_events = options.partition_events;
        random.link_flap_events = options.link_flap_events;
        random.loss_events = options.loss_events;
        random.max_loss = options.max_loss;
        plan = sim::FaultPlan::random(plan_rng, random);
    }
    report.plan_trace = plan.describe();
    plan.schedule(base->simulator(), base->network(),
                  [&crash_at](int host) { crash_at(host); },
                  [&restart_at](int host) { restart_at(host); });

    // Front-tier fault injection rides alongside the replica plan.
    if (sharded && options.front_crash >= 0 &&
        options.front_crash < sharded->front_count()) {
        const int victim = options.front_crash;
        base->simulator().after(options.front_crash_at, [&, victim]() {
            sharded->crash_front(victim);
        });
        if (options.front_restart_at > options.front_crash_at) {
            base->simulator().after(options.front_restart_at,
                                    [&, victim]() {
                                        sharded->restart_front(victim);
                                    });
        }
    }

    // Closed-loop workload: each client keeps one request in flight.
    Checker checker;
    Rng workload_rng = Rng(options.seed).fork(0x776f726b);
    std::vector<std::unique_ptr<ClientDriver>> drivers;
    report.issued = static_cast<std::uint64_t>(options.clients) *
                    static_cast<std::uint64_t>(options.requests_per_client);

    std::function<void(ClientDriver*)> issue = [&](ClientDriver* driver) {
        if (driver->remaining == 0) return;
        --driver->remaining;

        PendingOp op;
        op.key = driver->rng.next_below(
            static_cast<std::uint64_t>(std::max(options.keys, 1)));
        op.is_write =
            driver->rng.next_double() < options.write_fraction;
        // The extra draw only happens when cross-shard traffic is
        // requested, so pre-shard seeds replay with an untouched stream.
        if (op.is_write && options.cross_shard_fraction > 0.0 &&
            driver->rng.next_double() < options.cross_shard_fraction) {
            op.multi = true;
            op.partner =
                (op.key +
                 static_cast<std::uint64_t>(std::max(options.keys, 2)) /
                     2) %
                static_cast<std::uint64_t>(std::max(options.keys, 2));
        }
        op.floor = checker.committed[op.key];
        driver->pending = op;
        if (op.is_write) ++checker.writes_issued[op.key];
        if (op.multi && op.partner != op.key) {
            ++checker.writes_issued[op.partner];
            ++report.multiwrites_issued;
        }

        Bytes request =
            op.multi ? EchoService::make_multi_write(op.key, op.partner, 64)
            : op.is_write
                ? EchoService::make_write(op.key, 64)
                : EchoService::make_read(op.key, 32, options.reply_size);
        driver->client->send(std::move(request), [&, driver](Bytes reply) {
            const PendingOp done = driver->pending;
            ++report.completed;

            if (done.is_write) {
                // Ack: u8(1) || u64(version) || padding to 10 bytes. A
                // multiwrite acks the primary key's version; the partner
                // key's commit is observed through later reads.
                bool valid = reply.size() == 10 && reply[0] == 1;
                std::uint64_t version = 0;
                if (valid) {
                    Reader r(ByteView(reply.data() + 1, 8));
                    version = r.u64();
                    valid = version > done.floor;
                }
                if (!valid) {
                    ++report.violations;
                    report.errors.push_back(
                        "write to key " + std::to_string(done.key) +
                        " acked version " + std::to_string(version) +
                        " but " + std::to_string(done.floor) +
                        " was already committed at invocation");
                } else {
                    auto& low = checker.committed[done.key];
                    low = std::max(low, version);
                }
            } else {
                // A read must reflect some version between the committed
                // floor at invocation and the newest version any
                // re-execution could have installed (each issued write can
                // run more than once under failover retries, hence the
                // generous upper bound).
                const std::uint64_t ceiling =
                    done.floor + 2 * checker.writes_issued[done.key] + 64;
                bool valid = false;
                for (std::uint64_t v = done.floor; v <= ceiling; ++v) {
                    if (reply == EchoService::expected_read_reply(
                                     done.key, v, options.reply_size)) {
                        valid = true;
                        auto& low = checker.committed[done.key];
                        low = std::max(low, v);
                        break;
                    }
                }
                if (!valid) {
                    ++report.violations;
                    report.errors.push_back(
                        "read of key " + std::to_string(done.key) +
                        " returned a stale or unknown version (floor " +
                        std::to_string(done.floor) + ")");
                }
            }
            const auto think = std::max<sim::Duration>(
                static_cast<sim::Duration>(driver->rng.next_exponential(
                    static_cast<double>(options.think_time))),
                1);
            base->simulator().after(think,
                                    [&issue, driver]() { issue(driver); });
        });
    };

    for (int c = 0; c < options.clients; ++c) {
        auto driver = std::make_unique<ClientDriver>();
        driver->rng = workload_rng.fork(static_cast<std::uint64_t>(c) + 1);
        driver->remaining = options.requests_per_client;
        driver->client = flat ? &flat->add_client(c % flat->n())
                              : &sharded->add_client();
        drivers.push_back(std::move(driver));
    }
    for (auto& driver : drivers) {
        ClientDriver* raw = driver.get();
        raw->client->start([&issue, raw]() { issue(raw); });
    }

    base->simulator().run_until(options.horizon);

    // Convergence: after the drain window a quorum must agree on one
    // service state at the highest executed sequence number — per
    // replica group, since each shard orders its own log.
    const int shard_count = flat ? 1 : sharded->shards();
    for (int s = 0; s < shard_count; ++s) {
        hybster::SequenceNumber max_executed = 0;
        for (int i = 0; i < hosts_per_shard; ++i) {
            max_executed = std::max(
                max_executed,
                host_at(s * hosts_per_shard + i).replica().last_executed());
        }
        int at_tip = 0;
        Bytes tip_state;
        bool tip_diverged = false;
        for (int i = 0; i < hosts_per_shard; ++i) {
            auto& replica = host_at(s * hosts_per_shard + i).replica();
            if (replica.last_executed() != max_executed) continue;
            const Bytes state = replica.service().checkpoint();
            if (at_tip == 0) {
                tip_state = state;
            } else if (state != tip_state) {
                tip_diverged = true;
            }
            ++at_tip;
        }
        const std::string where =
            shard_count == 1 ? "" : " in shard " + std::to_string(s);
        if (at_tip < config0->quorum()) {
            ++report.violations;
            report.errors.push_back(
                "only " + std::to_string(at_tip) +
                " replicas reached sequence " +
                std::to_string(max_executed) + where + " (quorum is " +
                std::to_string(config0->quorum()) + ")");
        }
        if (tip_diverged) {
            ++report.violations;
            report.errors.push_back(
                "replicas at sequence " + std::to_string(max_executed) +
                where + " disagree on the service state");
        }
    }

    for (auto& driver : drivers) {
        report.failovers += driver->client->failovers();
    }
    for (int i = 0; i < total_hosts; ++i) {
        auto& host = host_at(i);
        report.view_changes =
            std::max(report.view_changes, host.replica().view_changes());
        report.state_transfers += host.replica().state_transfers();
        report.restarts += host.restarts();
        const auto status = host.status();
        report.enclave_recoveries += status.enclave_recoveries;
        report.fast_read_hits += status.troxy.fast_read_hits;
        report.fast_read_misses += status.troxy.fast_read_misses;
        report.fast_read_conflicts += status.troxy.fast_read_conflicts;
        report.st_bytes_sent += status.state.bytes_sent;
        report.st_bytes_full += status.state.bytes_full;
        report.st_chunks_sent += status.state.chunks_sent;
        report.st_chunks_skipped += status.state.chunks_skipped;
        report.st_chunks_reused += status.state.chunks_reused;
        report.st_transfers_resumed += status.state.transfers_resumed;
    }
    const std::uint64_t fast_reads = report.fast_read_hits +
                                     report.fast_read_misses +
                                     report.fast_read_conflicts;
    report.fast_read_hit_rate =
        fast_reads == 0 ? 0.0
                        : static_cast<double>(report.fast_read_hits) /
                              static_cast<double>(fast_reads);
    if (options.fastread_hitrate_floor > 0.0 &&
        report.fast_read_hit_rate < options.fastread_hitrate_floor) {
        ++report.violations;
        report.errors.push_back(
            "fast-read hit rate " +
            std::to_string(report.fast_read_hit_rate) +
            " fell below the floor " +
            std::to_string(options.fastread_hitrate_floor));
    }

    if (sharded) {
        // Aggregate over the front tier: counters sum (fronts are
        // independent), peaks take the max, latency percentiles merge
        // every front's raw samples.
        std::vector<troxy_core::ShardFrontHost::Status> front_statuses;
        std::vector<sim::Duration> merged_latencies;
        report.front_count = sharded->front_count();
        for (int f = 0; f < sharded->front_count(); ++f) {
            auto& front = sharded->front(f);
            front_statuses.push_back(front.status());
            const auto& status = front_statuses.back();
            report.cross_shard_commits += status.cross_shard_commits;
            report.front_requests += status.requests;
            report.front_released += status.released;
            report.front_failovers += status.upstream_failovers;
            report.router_fanout = status.router_fanout;
            report.front_restarts += front.restarts();
            report.cross_lock_waits += status.cross_lock_waits;
            report.cross_inflight_peak = std::max(
                report.cross_inflight_peak, status.cross_inflight_peak);
            merged_latencies.insert(merged_latencies.end(),
                                    front.cross_latencies().begin(),
                                    front.cross_latencies().end());
        }
        if (!merged_latencies.empty()) {
            std::sort(merged_latencies.begin(), merged_latencies.end());
            auto at = [&](double p) {
                const double rank =
                    p * static_cast<double>(merged_latencies.size() - 1);
                const auto index = std::min(
                    static_cast<std::size_t>(rank + 0.5),
                    merged_latencies.size() - 1);
                return sim::to_millis(merged_latencies[index]);
            };
            report.cross_p50_ms = at(0.50);
            report.cross_p99_ms = at(0.99);
        }
        for (int s = 0; s < shard_count; ++s) {
            ShardChaosReport shard;
            for (const auto& status : front_statuses) {
                const auto& front_shard =
                    status.shards[static_cast<std::size_t>(s)];
                shard.forwarded += front_shard.forwarded;
                shard.replies += front_shard.replies;
                shard.reads += front_shard.reads;
                shard.writes += front_shard.writes;
                shard.cross_participations +=
                    front_shard.cross_participations;
            }
            for (int i = 0; i < hosts_per_shard; ++i) {
                auto& host = host_at(s * hosts_per_shard + i);
                const auto status = host.status();
                shard.fast_read_hits += status.troxy.fast_read_hits;
                shard.fast_read_misses += status.troxy.fast_read_misses;
                shard.fast_read_conflicts +=
                    status.troxy.fast_read_conflicts;
                shard.view_changes = std::max(
                    shard.view_changes, host.replica().view_changes());
                shard.state_transfers += host.replica().state_transfers();
            }
            const std::uint64_t shard_reads = shard.fast_read_hits +
                                              shard.fast_read_misses +
                                              shard.fast_read_conflicts;
            shard.fast_read_hit_rate =
                shard_reads == 0
                    ? 0.0
                    : static_cast<double>(shard.fast_read_hits) /
                          static_cast<double>(shard_reads);
            report.shards.push_back(shard);
        }
    }

    report.messages_sent = base->network().messages_sent();
    report.bytes_sent = base->network().bytes_sent();
    report.drops = base->network().drops();
    report.pool = base->network().pool().stats();
    const std::uint64_t pool_lookups = report.pool.hits + report.pool.misses;
    report.pool_hit_rate =
        pool_lookups == 0 ? 0.0
                          : static_cast<double>(report.pool.hits) /
                                static_cast<double>(pool_lookups);
    report.wire = base->network().wire_stats();
    return report;
}

}  // namespace troxy::bench
