// Workload drivers.
//
// Closed-loop: each client keeps `pipeline` asynchronous requests
// outstanding ("clients ... constantly issue asynchronous requests",
// §VI-C) and issues a new one whenever a reply arrives. Open-loop: the
// driver issues requests at a fixed aggregate rate regardless of replies
// (the JMeter configuration of §VI-D: 100 clients, 500 req/s total,
// deliberately below saturation).
#pragma once

#include <functional>

#include "bench_support/stats.hpp"
#include "common/rng.hpp"
#include "hybster/client.hpp"
#include "troxy/legacy_client.hpp"

namespace troxy::bench {

struct GeneratedRequest {
    Bytes payload;
    bool is_read = false;
};

using Generator = std::function<GeneratedRequest(Rng&)>;

class Workload {
  public:
    Workload(sim::Simulator& simulator, Recorder& recorder,
             Generator generator, std::uint64_t seed);

    /// Closed loop over a legacy client (Troxy / Prophecy / standalone).
    void drive_legacy(troxy_core::LegacyClient& client, int pipeline);

    /// Closed loop over a traditional BFT client (baseline).
    void drive_bft(hybster::Client& client, int pipeline);

    /// Open loop: this client issues requests at `rate_per_sec` with
    /// exponential inter-arrival times.
    void drive_legacy_open(troxy_core::LegacyClient& client,
                           double rate_per_sec);

    /// Open loop over a traditional BFT client.
    void drive_bft_open(hybster::Client& client, double rate_per_sec);

    [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

  private:
    void issue_legacy(troxy_core::LegacyClient& client);
    void issue_bft(hybster::Client& client);
    void schedule_open(troxy_core::LegacyClient& client, double rate);
    void schedule_bft_open(hybster::Client& client, double rate);

    sim::Simulator& sim_;
    Recorder& recorder_;
    Generator generator_;
    Rng rng_;
    std::uint64_t issued_ = 0;
};

}  // namespace troxy::bench
