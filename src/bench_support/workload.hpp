// Workload drivers.
//
// Closed-loop: each client keeps `pipeline` asynchronous requests
// outstanding ("clients ... constantly issue asynchronous requests",
// §VI-C) and issues a new one whenever a reply arrives. Open-loop: the
// driver issues requests at a fixed aggregate rate regardless of replies
// (the JMeter configuration of §VI-D: 100 clients, 500 req/s total,
// deliberately below saturation).
//
// The OpenLoopSuite scales the open-loop model to population sizes the
// per-client drivers cannot: ONE Poisson arrival chain runs at the
// aggregate rate and each arrival samples a virtual-client identity and a
// (possibly Zipf-skewed) key, so a million-client workload costs O(rate)
// pending timers instead of O(clients). Virtual clients fan out over a
// bounded set of physical connections; optional churn tears sessions
// down and re-handshakes them, exercising the Troxy's accept path and
// cache warmup at a configurable rate.
#pragma once

#include <functional>
#include <vector>

#include "bench_support/stats.hpp"
#include "common/rng.hpp"
#include "hybster/client.hpp"
#include "troxy/legacy_client.hpp"

namespace troxy::bench {

struct GeneratedRequest {
    Bytes payload;
    bool is_read = false;
};

using Generator = std::function<GeneratedRequest(Rng&)>;

class Workload {
  public:
    Workload(sim::Simulator& simulator, Recorder& recorder,
             Generator generator, std::uint64_t seed);

    /// Closed loop over a legacy client (Troxy / Prophecy / standalone).
    void drive_legacy(troxy_core::LegacyClient& client, int pipeline);

    /// Closed loop over a traditional BFT client (baseline).
    void drive_bft(hybster::Client& client, int pipeline);

    /// Open loop: this client issues requests at `rate_per_sec` with
    /// exponential inter-arrival times.
    void drive_legacy_open(troxy_core::LegacyClient& client,
                           double rate_per_sec);

    /// Open loop over a traditional BFT client.
    void drive_bft_open(hybster::Client& client, double rate_per_sec);

    [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

  private:
    void issue_legacy(troxy_core::LegacyClient& client);
    void issue_bft(hybster::Client& client);
    void schedule_open(troxy_core::LegacyClient& client, double rate);
    void schedule_bft_open(hybster::Client& client, double rate);

    sim::Simulator& sim_;
    Recorder& recorder_;
    Generator generator_;
    Rng rng_;
    std::uint64_t issued_ = 0;
};

/// Deterministic Zipfian rank sampler over {0, …, n-1} with
/// P(rank k) ∝ 1/(k+1)^s — rank 0 is the hottest key. Inverts the exact
/// tabulated CDF (O(n) setup, O(log n) per sample) rather than the
/// approximate YCSB closed form, so the empirical distribution matches
/// probability() to chi-squared precision. Every draw consumes exactly
/// one uniform variate so skewed runs replay deterministically. Valid
/// for s in [0, 1); s <= 0 degrades to a uniform draw.
class ZipfianSampler {
  public:
    ZipfianSampler(std::uint64_t n, double s);

    [[nodiscard]] std::uint64_t sample(Rng& rng) const noexcept;

    /// Exact P(rank) under the sampler's distribution (for χ² tests).
    [[nodiscard]] double probability(std::uint64_t rank) const noexcept;

    [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
    [[nodiscard]] double s() const noexcept { return theta_; }

  private:
    std::uint64_t n_ = 1;
    double theta_ = 0.0;  // skew exponent (0 = uniform)
    double zetan_ = 1.0;  // generalized harmonic H_{n,theta}
    std::vector<double> cdf_;  // cumulative unnormalized weights
};

/// One sampled open-loop arrival, handed to the request builder.
struct OpenLoopArrival {
    std::uint64_t vclient = 0;  // virtual client identity
    std::uint64_t key = 0;      // Zipf rank (0 = hottest)
    bool is_read = false;
};

/// Builds the application payload for one arrival.
using OpenLoopBuilder = std::function<Bytes(Rng&, const OpenLoopArrival&)>;

struct OpenLoopOptions {
    /// Aggregate Poisson arrival rate across the whole population.
    double rate_per_sec = 1000.0;
    /// Virtual-client identity space fanned over the attached
    /// connections (vclient % connections picks the physical session).
    std::uint64_t virtual_clients = 1;
    /// Key space size (Zipf ranks).
    std::uint64_t keys = 1;
    /// Zipf skew; 0 = uniform keys.
    double zipf_s = 0.0;
    /// Fraction of arrivals flagged as reads.
    double read_fraction = 0.0;
    /// Mean session teardown+re-handshake events per second across the
    /// connection set (0 = no churn). Each churn event reconnects one
    /// uniformly chosen connection: fresh handshake, cold session.
    double churn_per_sec = 0.0;
};

/// Aggregate-rate open-loop generator: one arrival chain, N virtual
/// clients, optional key skew and connection churn.
class OpenLoopSuite {
  public:
    OpenLoopSuite(sim::Simulator& simulator, Recorder& recorder,
                  OpenLoopOptions options, OpenLoopBuilder builder,
                  std::uint64_t seed);

    /// Registers a physical connection; call before start().
    void add_connection(troxy_core::LegacyClient& client);

    /// Handshakes every connection, then starts the arrival chain (and
    /// the churn chain, if configured). Both run until the recorder's
    /// measurement window closes.
    void start();

    [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
    [[nodiscard]] std::uint64_t completed() const noexcept {
        return completed_;
    }
    [[nodiscard]] std::uint64_t churned_sessions() const noexcept {
        return churned_;
    }
    /// Timestamp of the first generated arrival (for rate accounting).
    [[nodiscard]] sim::SimTime first_arrival() const noexcept {
        return first_arrival_;
    }
    [[nodiscard]] sim::SimTime last_arrival() const noexcept {
        return last_arrival_;
    }

  private:
    void schedule_arrival();
    void schedule_churn();

    sim::Simulator& sim_;
    Recorder& recorder_;
    OpenLoopOptions options_;
    OpenLoopBuilder builder_;
    ZipfianSampler zipf_;
    Rng rng_;
    Rng churn_rng_;
    std::vector<troxy_core::LegacyClient*> connections_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t churned_ = 0;
    sim::SimTime first_arrival_ = 0;
    sim::SimTime last_arrival_ = 0;
};

}  // namespace troxy::bench
