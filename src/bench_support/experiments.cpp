#include "bench_support/experiments.hpp"

#include "apps/echo_service.hpp"
#include "http/http.hpp"
#include "http/page_service.hpp"

namespace troxy::bench {

using apps::EchoService;

std::string system_name(SystemKind kind) {
    switch (kind) {
        case SystemKind::Baseline: return "BL";
        case SystemKind::CTroxy: return "ctroxy";
        case SystemKind::ETroxy: return "etroxy";
    }
    return "?";
}

double MicroResult::conflict_rate() const {
    if (optimistic_attempts > 0) {  // baseline read optimization
        return static_cast<double>(read_conflicts) /
               static_cast<double>(optimistic_attempts);
    }
    // Per all reads that entered the fast-read logic: hits, conservative
    // misses (ordered without conflict), and actual conflicts.
    const std::uint64_t reads =
        fast_read_hits + fast_read_misses + fast_read_conflicts;
    if (reads == 0) return 0.0;
    return static_cast<double>(fast_read_conflicts) /
           static_cast<double>(reads);
}

namespace {

Generator make_generator(const MicroParams& params) {
    return [params](Rng& rng) {
        GeneratedRequest request;
        const std::uint64_t key = rng.next_below(
            static_cast<std::uint64_t>(params.key_count));
        const bool is_write =
            !params.read_workload ||
            rng.next_double() < params.write_fraction;
        if (is_write) {
            request.is_read = false;
            request.payload =
                EchoService::make_write(key, params.request_size);
        } else {
            request.is_read = true;
            request.payload = EchoService::make_read(
                key, params.read_workload ? 10 : params.request_size,
                params.reply_size);
        }
        return request;
    };
}

ClusterOptions base_options(const MicroParams& params) {
    ClusterOptions options;
    options.seed = params.seed;
    options.wan_clients = params.wan;
    options.lan_jitter = params.lan_jitter;
    options.batch_size_max = params.batch_size_max;
    options.batch_delay = params.batch_delay;
    options.coalesce_wire = params.coalesce_wire;
    options.adaptive_batching = params.adaptive_batching;
    options.execution_lanes = params.execution_lanes;
    return options;
}

MicroResult run_baseline(const MicroParams& params) {
    BaselineCluster::Params cluster_params;
    cluster_params.base = base_options(params);
    cluster_params.service = []() {
        return std::make_unique<EchoService>();
    };
    cluster_params.optimistic_reads = params.baseline_optimistic_reads;
    BaselineCluster cluster(cluster_params);

    Recorder recorder(params.warmup, params.window);
    Workload workload(cluster.simulator(), recorder, make_generator(params),
                      params.seed);
    // Stagger client ramp-up across the warmup so measurement starts from
    // steady state instead of a connection/cold-cache stampede.
    const sim::Duration stagger =
        params.warmup / (2 * static_cast<unsigned>(params.clients) + 2);
    for (int i = 0; i < params.clients; ++i) {
        auto& client = cluster.add_client();
        cluster.simulator().after(
            stagger * static_cast<unsigned>(i),
            [&workload, &client, pipeline = params.pipeline]() {
                workload.drive_bft(client, pipeline);
            });
    }
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(2));

    MicroResult result;
    result.row.label = "BL";
    result.row.throughput = recorder.throughput_per_sec();
    result.row.mean_ms = recorder.mean_latency_ms();
    result.row.p50_ms = recorder.percentile_latency_ms(50);
    result.row.p99_ms = recorder.percentile_latency_ms(99);
    for (auto* client : cluster.clients()) {
        result.optimistic_attempts += client->optimistic_attempts();
        result.read_conflicts += client->read_conflicts();
    }
    return result;
}

MicroResult run_troxy(SystemKind kind, const MicroParams& params) {
    TroxyCluster::Params cluster_params;
    cluster_params.base = base_options(params);
    cluster_params.service = []() {
        return std::make_unique<EchoService>();
    };
    cluster_params.classifier = [](ByteView request) {
        return EchoService().classify(request);
    };
    cluster_params.ctroxy = (kind == SystemKind::CTroxy);
    cluster_params.host.troxy.fast_reads = params.fast_reads;
    cluster_params.host.troxy.monitor.adaptive = params.adaptive_monitor;
    cluster_params.host.troxy.monitor.miss_threshold =
        params.monitor_threshold;
    cluster_params.host.troxy.enclave_costs = params.enclave_costs;
    cluster_params.host.voter_batch_max = params.voter_batch_max;
    cluster_params.host.voter_batch_delay = params.voter_batch_delay;
    cluster_params.host.coalesce_wire = params.coalesce_wire;
    cluster_params.host.adaptive_voting = params.adaptive_voting;
    cluster_params.host.batch_reply_auth = params.batch_reply_auth;
    cluster_params.host.fastread_batch_max = params.fastread_batch_max;
    cluster_params.host.fastread_batch_delay = params.fastread_batch_delay;
    cluster_params.host.adaptive_fastread = params.adaptive_fastread;
    cluster_params.host.fastread_latency_target =
        params.fastread_latency_target;
    cluster_params.client.coalesce_sends = params.coalesce_client_sends;
    // Remote cache queries cross the replica LAN, but under heavy load
    // their processing queues behind the enclave's thread budget; the
    // timeout is a liveness backstop, not a performance path, so it is
    // set well above worst-case queueing.
    cluster_params.host.fast_read_timeout =
        params.wan ? sim::milliseconds(500) : sim::milliseconds(100);
    TroxyCluster cluster(std::move(cluster_params));

    Recorder recorder(params.warmup, params.window);
    Workload workload(cluster.simulator(), recorder, make_generator(params),
                      params.seed);
    const sim::Duration stagger =
        params.warmup / (2 * static_cast<unsigned>(params.clients) + 2);
    for (int i = 0; i < params.clients; ++i) {
        auto& client = cluster.add_client();
        cluster.simulator().after(
            stagger * static_cast<unsigned>(i),
            [&workload, &client, pipeline = params.pipeline]() {
                workload.drive_legacy(client, pipeline);
            });
    }
    cluster.simulator().run_until(recorder.window_end() + sim::seconds(2));

    MicroResult result;
    result.row.label = system_name(kind);
    result.row.throughput = recorder.throughput_per_sec();
    result.row.mean_ms = recorder.mean_latency_ms();
    result.row.p50_ms = recorder.percentile_latency_ms(50);
    result.row.p99_ms = recorder.percentile_latency_ms(99);
    for (int r = 0; r < cluster.n(); ++r) {
        const auto host_status = cluster.host(r).status();
        const auto& status = host_status.troxy;
        result.fast_read_hits += status.fast_read_hits;
        result.fast_read_misses += status.fast_read_misses;
        result.fast_read_conflicts += status.fast_read_conflicts;
        result.ordered_requests += status.ordered_requests;
        result.mode_switches += status.mode_switches;
        result.enclave_transitions += status.enclave_transitions;
        result.reply_batches += status.reply_batches;
        result.batched_replies += status.batched_replies;
        result.reply_auth_batches += status.reply_auth_batches;
        result.batch_authenticated_replies +=
            status.batch_authenticated_replies;
        result.cache_query_batches += status.cache_query_batches;
        result.batched_cache_queries += status.batched_cache_queries;
        result.cache_response_batches += status.cache_response_batches;
        result.batched_cache_responses += status.batched_cache_responses;
        result.voter_ewma_x100 += host_status.voter_ewma_x100;
        result.fastread_ewma_x100 += host_status.fastread_ewma_x100;
        result.batch_ewma_x100 += host_status.batch_ewma_x100;
        result.exec_scheduled_batches += host_status.exec.scheduled_batches;
        result.exec_scheduled_requests +=
            host_status.exec.scheduled_requests;
        result.exec_conflict_stalls += host_status.exec.conflict_stalls;
        result.exec_lanes_used_sum += host_status.exec.lanes_used_sum;
        result.exec_serial_ns +=
            static_cast<std::uint64_t>(host_status.exec.serial_cost);
        result.exec_charged_ns +=
            static_cast<std::uint64_t>(host_status.exec.charged_cost);
        result.cache_invalidations += status.cache_invalidations;
        result.invalidations_saved += status.invalidations_saved;
        result.fallback_prebatches += status.fallback_prebatches;
        result.prebatched_fallbacks += status.prebatched_fallbacks;
    }
    result.wire_messages = cluster.network().messages_sent();
    result.wire_bytes = cluster.network().bytes_sent();
    return result;
}

}  // namespace

MicroResult run_micro(SystemKind system, const MicroParams& params) {
    if (system == SystemKind::Baseline) return run_baseline(params);
    return run_troxy(system, params);
}

// --------------------------------------------------------------- HTTP

std::string http_system_name(HttpSystem system) {
    switch (system) {
        case HttpSystem::Standalone: return "Jetty (standalone)";
        case HttpSystem::Baseline: return "BL";
        case HttpSystem::Prophecy: return "Prophecy";
        case HttpSystem::Troxy: return "Troxy";
    }
    return "?";
}

namespace {

Generator http_generator(const HttpParams& params) {
    return [params](Rng& rng) {
        GeneratedRequest request;
        const int page = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(params.page_count)));
        if (rng.next_double() < params.post_fraction) {
            request.is_read = false;
            // ~200 B POST payload (§VI-D).
            Bytes body(200, 0);
            for (std::size_t i = 0; i < body.size(); ++i) {
                body[i] = static_cast<std::uint8_t>('a' + (i + rng.next_below(26)) % 26);
            }
            request.payload = http::PageService::make_post(page, body);
        } else {
            request.is_read = true;
            request.payload = http::PageService::make_get(page);
        }
        return request;
    };
}

Row finish_row(HttpSystem system, const Recorder& recorder) {
    Row row;
    row.label = http_system_name(system);
    row.throughput = recorder.throughput_per_sec();
    row.mean_ms = recorder.mean_latency_ms();
    row.p50_ms = recorder.percentile_latency_ms(50);
    row.p99_ms = recorder.percentile_latency_ms(99);
    return row;
}

}  // namespace

Row run_http(HttpSystem system, const HttpParams& params) {
    ClusterOptions base;
    base.seed = params.seed;
    base.wan_clients = params.wan;

    const double per_client_rate =
        params.total_rate_per_sec / params.clients;
    const int pages = params.page_count;
    auto service = [pages]() {
        return std::make_unique<http::PageService>(pages);
    };

    Recorder recorder(params.warmup, params.window);

    switch (system) {
        case HttpSystem::Standalone: {
            StandaloneCluster::Params cluster_params;
            cluster_params.base = base;
            cluster_params.service = service;
            StandaloneCluster cluster(cluster_params);
            Workload workload(cluster.simulator(), recorder,
                              http_generator(params), params.seed);
            for (int i = 0; i < params.clients; ++i) {
                workload.drive_legacy_open(cluster.add_client(),
                                           per_client_rate);
            }
            cluster.simulator().run_until(recorder.window_end() +
                                          sim::seconds(2));
            return finish_row(system, recorder);
        }
        case HttpSystem::Baseline: {
            BaselineCluster::Params cluster_params;
            cluster_params.base = base;
            cluster_params.service = service;
            // Same read optimization as in the microbenchmarks: GETs are
            // executed optimistically and the client-side voter needs all
            // 2f+1 replies to match — under WAN jitter the client waits
            // for the slowest reply (§V-B), which is what separates BL
            // from the server-side voters here.
            cluster_params.optimistic_reads = true;
            BaselineCluster cluster(cluster_params);
            Workload workload(cluster.simulator(), recorder,
                              http_generator(params), params.seed);
            for (int i = 0; i < params.clients; ++i) {
                workload.drive_bft_open(cluster.add_client(),
                                        per_client_rate);
            }
            cluster.simulator().run_until(recorder.window_end() +
                                          sim::seconds(2));
            return finish_row(system, recorder);
        }
        case HttpSystem::Prophecy: {
            ProphecyCluster::Params cluster_params;
            cluster_params.base = base;
            cluster_params.service = service;
            cluster_params.classifier = http::PageService::classifier();
            ProphecyCluster cluster(cluster_params);
            Workload workload(cluster.simulator(), recorder,
                              http_generator(params), params.seed);
            for (int i = 0; i < params.clients; ++i) {
                workload.drive_legacy_open(cluster.add_client(),
                                           per_client_rate);
            }
            cluster.simulator().run_until(recorder.window_end() +
                                          sim::seconds(2));
            return finish_row(system, recorder);
        }
        case HttpSystem::Troxy: {
            TroxyCluster::Params cluster_params;
            cluster_params.base = base;
            cluster_params.service = service;
            cluster_params.classifier = http::PageService::classifier();
            TroxyCluster cluster(std::move(cluster_params));
            Workload workload(cluster.simulator(), recorder,
                              http_generator(params), params.seed);
            for (int i = 0; i < params.clients; ++i) {
                workload.drive_legacy_open(cluster.add_client(),
                                           per_client_rate);
            }
            cluster.simulator().run_until(recorder.window_end() +
                                          sim::seconds(2));
            return finish_row(system, recorder);
        }
    }
    return Row{};
}

}  // namespace troxy::bench
