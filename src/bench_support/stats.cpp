#include "bench_support/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace troxy::bench {

void Recorder::record(sim::SimTime completed_at, sim::Duration latency) {
    if (completed_at < warmup_ || completed_at >= warmup_ + window_) return;
    latencies_.push_back(latency);
    sorted_ = false;
}

double Recorder::throughput_per_sec() const {
    return static_cast<double>(latencies_.size()) / sim::to_seconds(window_);
}

double Recorder::mean_latency_ms() const {
    if (latencies_.empty()) return 0.0;
    double total = 0.0;
    for (const sim::Duration d : latencies_) total += sim::to_millis(d);
    return total / static_cast<double>(latencies_.size());
}

double Recorder::percentile_latency_ms(double p) const {
    if (latencies_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(latencies_.begin(), latencies_.end());
        sorted_ = true;
    }
    const auto index = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(latencies_.size() - 1) + 0.5);
    return sim::to_millis(latencies_[std::min(index, latencies_.size() - 1)]);
}

void print_table(const std::string& title, const std::vector<Row>& rows,
                 bool ratio_vs_first) {
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-28s %12s %10s %10s %10s", "configuration", "req/s",
                "mean ms", "p50 ms", "p99 ms");
    if (ratio_vs_first) std::printf(" %10s", "vs first");
    std::printf("\n");
    for (const Row& row : rows) {
        std::printf("%-28s %12.0f %10.3f %10.3f %10.3f", row.label.c_str(),
                    row.throughput, row.mean_ms, row.p50_ms, row.p99_ms);
        if (ratio_vs_first && !rows.empty() && rows.front().throughput > 0) {
            std::printf(" %9.2fx",
                        row.throughput / rows.front().throughput);
        }
        std::printf("\n");
    }
}

}  // namespace troxy::bench
