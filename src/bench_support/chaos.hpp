// Chaos harness: seeded random fault schedules against a Troxy cluster
// with safety and liveness checking.
//
// One run builds a TroxyCluster over the EchoService, drives a closed-loop
// workload from several legacy clients, executes a FaultPlan (explicit or
// generated from the seed: host crash/restart, partitions, link flaps,
// loss windows) and checks two invariants:
//
//   Safety   — every voted reply is consistent with a linearizable history
//              of the echo service. EchoService makes this checkable
//              without instrumenting the replicas: write acks carry the
//              version they installed and read replies are deterministic
//              functions of (key, version), so the checker only needs a
//              monotonic per-key low-water mark of committed versions.
//              (Client failover can re-execute a write under a new request
//              id — ordinary at-least-once retry semantics — so upper
//              bounds are deliberately not asserted.)
//   Liveness — once every fault heals, all client requests complete within
//              the horizon and a quorum of replicas converges to an
//              identical service state.
//
// Everything derives from ChaosOptions::seed: the same seed replays the
// same fault schedule, the same message interleaving and the same
// network counters, bit for bit.
#pragma once

#include <string>
#include <vector>

#include "hybster/config.hpp"
#include "sim/cost.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace troxy::bench {

struct ChaosOptions {
    std::uint64_t seed = 1;
    /// Scheduler engine under test (ClusterOptions::scheduler). The A/B
    /// determinism test runs the same seed under both engines and demands
    /// identical verdicts, traces and counters.
    sim::Simulator::Scheduler scheduler =
        sim::Simulator::Scheduler::Calendar;

    // Workload.
    int clients = 3;
    int requests_per_client = 40;
    int keys = 4;
    double write_fraction = 0.5;
    std::size_t reply_size = 128;
    /// Mean exponential think time between a reply and the next request,
    /// pacing each client so the workload overlaps the fault window
    /// instead of draining before the first fault fires.
    sim::Duration think_time = sim::milliseconds(150);

    // Cluster. A small checkpoint interval makes state transfer exercised
    // by short runs.
    hybster::SequenceNumber checkpoint_interval = 8;
    /// Ordering batch knobs (see hybster::Config). Defaults keep chaos
    /// runs on the unbatched flow; batching scenarios opt in.
    std::size_t batch_size_max = 1;
    sim::Duration batch_delay = 0;
    /// Voter batching and wire coalescing (TroxyReplicaHost::Options /
    /// ClusterOptions::coalesce_wire); defaults reproduce the per-reply
    /// ecall, per-message record flow.
    std::size_t voter_batch_max = 1;
    bool coalesce_wire = false;
    /// Ship coalesced bursts as scatter-gather fragment chains
    /// (ClusterOptions::wire_zero_copy); the default keeps the flattened
    /// Bundle flow. Only meaningful with coalesce_wire.
    bool wire_zero_copy = false;
    /// Transport send-cost profile (ClusterOptions::transport); none()
    /// keeps the seed's free-transport model. A bypass profile also arms
    /// the network's per-peer credit window under the fault schedule.
    sim::TransportProfile transport = sim::TransportProfile::none();
    /// Fast-read query batching and batched reply certification
    /// (TroxyReplicaHost::Options); defaults keep the per-query,
    /// per-reply ecall flow.
    std::size_t fastread_batch_max = 1;
    bool batch_reply_auth = false;
    /// Modeled execution lanes per replica (hybster::Config); the default
    /// keeps chaos runs on the serial execution flow.
    std::size_t execution_lanes = 1;
    /// Merkle-incremental state-transfer knobs: chunk granularity and the
    /// retry that resumes half-finished transfers. Independently
    /// schedulable from checkpoint_interval so recovery scenarios can
    /// tune checkpoint cadence and transfer granularity separately.
    std::size_t state_chunk_size = 4096;
    std::size_t state_chunks_per_message = 64;
    sim::Duration state_transfer_retry = sim::milliseconds(250);
    /// Proactive enclave recovery period (TroxyReplicaHost::Options);
    /// 0 disables the schedule. The cluster staggers the fleet so one
    /// enclave recovers at a time.
    sim::Duration enclave_recovery_period = 0;

    // Rolling-restart mode: instead of a random plan, crash and restart
    // every host in sequence inside [fault_start, heal_by] — a rolling
    // upgrade under load. Combine with enclave_recovery_period to also
    // recover every enclave during the run.
    bool rolling_restart = false;
    /// How long each host stays down during its rolling slot (must stay
    /// below the per-host gap so at most one host is ever down).
    sim::Duration rolling_downtime = sim::milliseconds(400);

    /// Minimum acceptable aggregate fast-read hit rate
    /// (hits / (hits + misses + conflicts)) after the run; 0 disables the
    /// check. Counts a violation, not an assert, when breached.
    double fastread_hitrate_floor = 0.0;

    /// Shard count: 1 runs the classic unsharded TroxyCluster path
    /// (bit-identical to pre-shard chaos runs); >1 builds a
    /// ShardedTroxyCluster whose key-range map splits the workload's
    /// "k<i>" key universe evenly and drives everything through the
    /// routing front.
    int shards = 1;
    /// Fraction of writes issued as two-key multiwrites (EchoService
    /// op 2) whose partner key usually lives on another shard, forcing
    /// the front's ordered cross-shard commit lane. 0 keeps the
    /// workload's rng stream untouched so unsharded seeds replay
    /// bit-identically.
    double cross_shard_fraction = 0.0;
    /// Routing fronts over the sharded deployment
    /// (ClusterOptions::front_count); clients hash across them. Only
    /// meaningful with shards > 1.
    int fronts = 1;
    /// Cross-shard commits allowed in flight per front
    /// (ShardFrontHost::Options::cross_pipeline_depth): 0 = unbounded
    /// pipelining through the per-key lock table, 1 = the serialized
    /// single-commit lane.
    std::size_t cross_pipeline_depth = 0;
    /// Front-tier fault injection: crash front index `front_crash` at
    /// `front_crash_at` and restart it at `front_restart_at` (0 = never).
    /// front_crash < 0 disables. A front crash mid cross-shard commit
    /// kills connection state and in-flight forwards; the front's
    /// clients fail over to the next front on the ring and retransmit.
    int front_crash = -1;
    sim::SimTime front_crash_at = 0;
    sim::SimTime front_restart_at = 0;

    // Fault schedule: faults are injected inside [fault_start, heal_by];
    // the run ends at `horizon`, leaving time to recover and drain.
    sim::SimTime fault_start = sim::seconds(1);
    sim::SimTime heal_by = sim::seconds(8);
    sim::SimTime horizon = sim::seconds(30);

    /// Explicit schedule; when empty, a random plan is generated from the
    /// seed with the event counts below.
    sim::FaultPlan plan;
    int crash_events = 1;
    int partition_events = 1;
    int link_flap_events = 1;
    int loss_events = 1;
    double max_loss = 0.3;
};

/// Per-shard observability for sharded chaos runs: the front's routing
/// counters merged with the shard's replica-group recovery counters.
struct ShardChaosReport {
    std::uint64_t forwarded = 0;  // requests the front routed here
    std::uint64_t replies = 0;    // shard-local replies released
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t cross_participations = 0;
    std::uint64_t fast_read_hits = 0;
    std::uint64_t fast_read_misses = 0;
    std::uint64_t fast_read_conflicts = 0;
    double fast_read_hit_rate = 0.0;
    std::uint64_t view_changes = 0;     // max over the shard's replicas
    std::uint64_t state_transfers = 0;  // sum over the shard's replicas
};

struct ChaosReport {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t violations = 0;
    std::vector<std::string> errors;  // one line per violation

    // Observability.
    std::uint64_t failovers = 0;
    std::uint64_t view_changes = 0;    // max over replicas
    std::uint64_t state_transfers = 0; // sum over replicas
    std::uint64_t restarts = 0;        // sum over hosts
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    sim::DropCounters drops;
    /// Wire-path observability: payload-buffer pool hit rate and the
    /// scatter-gather counters (zero when wire_zero_copy is off).
    sim::BufferPool::Stats pool;
    double pool_hit_rate = 0.0;  // hits / (hits + misses)
    sim::WireStats wire;
    std::string plan_trace;  // reproduction trace (describe() of the plan)

    // Recovery observability (sums over hosts unless noted).
    std::uint64_t enclave_recoveries = 0;
    std::uint64_t fast_read_hits = 0;
    std::uint64_t fast_read_misses = 0;
    std::uint64_t fast_read_conflicts = 0;
    double fast_read_hit_rate = 0.0;  // hits / (hits+misses+conflicts)
    std::uint64_t st_bytes_sent = 0;      // state-transfer bytes shipped
    std::uint64_t st_bytes_full = 0;      // what full snapshots would cost
    std::uint64_t st_chunks_sent = 0;
    std::uint64_t st_chunks_skipped = 0;  // already held by the rejoiner
    std::uint64_t st_chunks_reused = 0;   // verified from the local store
    std::uint64_t st_transfers_resumed = 0;

    // Sharded-run observability (empty/zero in unsharded runs; counters
    // are sums over the front tier unless noted).
    std::uint64_t cross_shard_commits = 0;  // completed two-shard commits
    std::uint64_t multiwrites_issued = 0;   // two-key ops the workload sent
    std::uint64_t front_requests = 0;       // classified + routed
    std::uint64_t front_released = 0;       // replies sent downstream
    std::uint64_t front_failovers = 0;      // upstream session failovers
    int router_fanout = 0;                  // upstream sessions (== S)
    int front_count = 0;                    // fronts in the tier
    std::uint64_t front_restarts = 0;       // front crash recoveries
    /// Pipelined commit-engine observability: lock-table waits, peak
    /// concurrent commits (max over fronts), and cross-commit latency
    /// percentiles merged over every front's samples.
    std::uint64_t cross_lock_waits = 0;
    std::uint64_t cross_inflight_peak = 0;
    double cross_p50_ms = 0.0;
    double cross_p99_ms = 0.0;
    std::vector<ShardChaosReport> shards;

    /// Safety held and every request completed.
    [[nodiscard]] bool ok() const noexcept {
        return violations == 0 && completed == issued && issued > 0;
    }
};

/// Runs one seeded chaos scenario to completion and reports.
ChaosReport run_chaos(const ChaosOptions& options);

}  // namespace troxy::bench
