#include "bench_support/workload.hpp"

namespace troxy::bench {

Workload::Workload(sim::Simulator& simulator, Recorder& recorder,
                   Generator generator, std::uint64_t seed)
    : sim_(simulator),
      recorder_(recorder),
      generator_(std::move(generator)),
      rng_(seed ^ 0x776f726bULL) {}

void Workload::issue_legacy(troxy_core::LegacyClient& client) {
    if (sim_.now() >= recorder_.window_end()) return;  // measurement over
    GeneratedRequest request = generator_(rng_);
    const sim::SimTime started = sim_.now();
    ++issued_;
    client.send(std::move(request.payload), [this, &client,
                                             started](Bytes /*reply*/) {
        recorder_.record(sim_.now(), sim_.now() - started);
        issue_legacy(client);
    });
}

void Workload::drive_legacy(troxy_core::LegacyClient& client, int pipeline) {
    client.start([this, &client, pipeline]() {
        for (int i = 0; i < pipeline; ++i) issue_legacy(client);
    });
}

void Workload::issue_bft(hybster::Client& client) {
    if (sim_.now() >= recorder_.window_end()) return;
    GeneratedRequest request = generator_(rng_);
    const sim::SimTime started = sim_.now();
    ++issued_;
    client.invoke(std::move(request.payload), request.is_read,
                  [this, &client, started](Bytes /*reply*/) {
                      recorder_.record(sim_.now(), sim_.now() - started);
                      issue_bft(client);
                  });
}

void Workload::drive_bft(hybster::Client& client, int pipeline) {
    client.start([this, &client, pipeline]() {
        for (int i = 0; i < pipeline; ++i) issue_bft(client);
    });
}

void Workload::schedule_open(troxy_core::LegacyClient& client, double rate) {
    if (sim_.now() >= recorder_.window_end()) return;
    const double gap_s = rng_.next_exponential(1.0 / rate);
    sim_.after(static_cast<sim::Duration>(gap_s * 1e9), [this, &client,
                                                         rate]() {
        if (sim_.now() >= recorder_.window_end()) return;
        GeneratedRequest request = generator_(rng_);
        const sim::SimTime started = sim_.now();
        ++issued_;
        client.send(std::move(request.payload),
                    [this, started](Bytes /*reply*/) {
                        recorder_.record(sim_.now(), sim_.now() - started);
                    });
        schedule_open(client, rate);
    });
}

void Workload::drive_legacy_open(troxy_core::LegacyClient& client,
                                 double rate_per_sec) {
    client.start([this, &client, rate_per_sec]() {
        schedule_open(client, rate_per_sec);
    });
}

void Workload::schedule_bft_open(hybster::Client& client, double rate) {
    if (sim_.now() >= recorder_.window_end()) return;
    const double gap_s = rng_.next_exponential(1.0 / rate);
    sim_.after(static_cast<sim::Duration>(gap_s * 1e9), [this, &client,
                                                         rate]() {
        if (sim_.now() >= recorder_.window_end()) return;
        GeneratedRequest request = generator_(rng_);
        const sim::SimTime started = sim_.now();
        ++issued_;
        client.invoke(std::move(request.payload), request.is_read,
                      [this, started](Bytes /*reply*/) {
                          recorder_.record(sim_.now(), sim_.now() - started);
                      });
        schedule_bft_open(client, rate);
    });
}

void Workload::drive_bft_open(hybster::Client& client, double rate_per_sec) {
    client.start([this, &client, rate_per_sec]() {
        schedule_bft_open(client, rate_per_sec);
    });
}

}  // namespace troxy::bench
