#include "bench_support/workload.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/assert.hpp"

namespace troxy::bench {

Workload::Workload(sim::Simulator& simulator, Recorder& recorder,
                   Generator generator, std::uint64_t seed)
    : sim_(simulator),
      recorder_(recorder),
      generator_(std::move(generator)),
      rng_(seed ^ 0x776f726bULL) {}

void Workload::issue_legacy(troxy_core::LegacyClient& client) {
    if (sim_.now() >= recorder_.window_end()) return;  // measurement over
    GeneratedRequest request = generator_(rng_);
    const sim::SimTime started = sim_.now();
    ++issued_;
    client.send(std::move(request.payload), [this, &client,
                                             started](Bytes /*reply*/) {
        recorder_.record(sim_.now(), sim_.now() - started);
        issue_legacy(client);
    });
}

void Workload::drive_legacy(troxy_core::LegacyClient& client, int pipeline) {
    client.start([this, &client, pipeline]() {
        for (int i = 0; i < pipeline; ++i) issue_legacy(client);
    });
}

void Workload::issue_bft(hybster::Client& client) {
    if (sim_.now() >= recorder_.window_end()) return;
    GeneratedRequest request = generator_(rng_);
    const sim::SimTime started = sim_.now();
    ++issued_;
    client.invoke(std::move(request.payload), request.is_read,
                  [this, &client, started](Bytes /*reply*/) {
                      recorder_.record(sim_.now(), sim_.now() - started);
                      issue_bft(client);
                  });
}

void Workload::drive_bft(hybster::Client& client, int pipeline) {
    client.start([this, &client, pipeline]() {
        for (int i = 0; i < pipeline; ++i) issue_bft(client);
    });
}

void Workload::schedule_open(troxy_core::LegacyClient& client, double rate) {
    if (sim_.now() >= recorder_.window_end()) return;
    const double gap_s = rng_.next_exponential(1.0 / rate);
    sim_.after(static_cast<sim::Duration>(gap_s * 1e9), [this, &client,
                                                         rate]() {
        if (sim_.now() >= recorder_.window_end()) return;
        GeneratedRequest request = generator_(rng_);
        const sim::SimTime started = sim_.now();
        ++issued_;
        client.send(std::move(request.payload),
                    [this, started](Bytes /*reply*/) {
                        recorder_.record(sim_.now(), sim_.now() - started);
                    });
        schedule_open(client, rate);
    });
}

void Workload::drive_legacy_open(troxy_core::LegacyClient& client,
                                 double rate_per_sec) {
    client.start([this, &client, rate_per_sec]() {
        schedule_open(client, rate_per_sec);
    });
}

void Workload::schedule_bft_open(hybster::Client& client, double rate) {
    if (sim_.now() >= recorder_.window_end()) return;
    const double gap_s = rng_.next_exponential(1.0 / rate);
    sim_.after(static_cast<sim::Duration>(gap_s * 1e9), [this, &client,
                                                         rate]() {
        if (sim_.now() >= recorder_.window_end()) return;
        GeneratedRequest request = generator_(rng_);
        const sim::SimTime started = sim_.now();
        ++issued_;
        client.invoke(std::move(request.payload), request.is_read,
                      [this, started](Bytes /*reply*/) {
                          recorder_.record(sim_.now(), sim_.now() - started);
                      });
        schedule_bft_open(client, rate);
    });
}

void Workload::drive_bft_open(hybster::Client& client, double rate_per_sec) {
    client.start([this, &client, rate_per_sec]() {
        schedule_bft_open(client, rate_per_sec);
    });
}

// --------------------------------------------------------- ZipfianSampler

ZipfianSampler::ZipfianSampler(std::uint64_t n, double s)
    : n_(n > 0 ? n : 1), theta_(s > 0.0 ? s : 0.0) {
    TROXY_ASSERT(theta_ < 1.0, "Zipf inversion requires s < 1");
    if (theta_ <= 0.0) return;  // uniform: no tables needed
    // Exact CDF inversion. The YCSB/Gray et al. closed-form inversion is
    // O(1) per sample but only approximates the pmf for ranks >= 2 (a
    // chi-squared test against the true distribution rejects it), so the
    // sampler tabulates the exact cumulative weights instead: O(n) setup,
    // O(log n) per draw, and probability() is honest.
    cdf_.resize(n_);
    double total = 0.0;
    for (std::uint64_t i = 0; i < n_; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
        cdf_[i] = total;
    }
    zetan_ = total;
}

std::uint64_t ZipfianSampler::sample(Rng& rng) const noexcept {
    // Exactly one uniform draw per sample, on every branch, so a skewed
    // workload consumes the RNG stream identically to a uniform one.
    const double u = rng.next_double();
    if (theta_ <= 0.0) {
        auto rank = static_cast<std::uint64_t>(u * static_cast<double>(n_));
        return rank < n_ ? rank : n_ - 1;
    }
    const double target = u * zetan_;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
    const auto rank =
        static_cast<std::uint64_t>(std::distance(cdf_.begin(), it));
    return rank < n_ ? rank : n_ - 1;
}

double ZipfianSampler::probability(std::uint64_t rank) const noexcept {
    if (rank >= n_) return 0.0;
    if (theta_ <= 0.0) return 1.0 / static_cast<double>(n_);
    return 1.0 / std::pow(static_cast<double>(rank + 1), theta_) / zetan_;
}

// ---------------------------------------------------------- OpenLoopSuite

OpenLoopSuite::OpenLoopSuite(sim::Simulator& simulator, Recorder& recorder,
                             OpenLoopOptions options, OpenLoopBuilder builder,
                             std::uint64_t seed)
    : sim_(simulator),
      recorder_(recorder),
      options_(options),
      builder_(std::move(builder)),
      zipf_(options.keys, options.zipf_s),
      rng_(seed ^ 0x6f70656eULL),
      churn_rng_(seed ^ 0x63687572ULL) {}

void OpenLoopSuite::add_connection(troxy_core::LegacyClient& client) {
    connections_.push_back(&client);
}

void OpenLoopSuite::start() {
    TROXY_ASSERT(!connections_.empty(), "open loop needs a connection");
    // Handshake every physical session; the arrival chain starts once all
    // are up, so warmup measures steady-state traffic, not connect storms.
    auto remaining = std::make_shared<std::size_t>(connections_.size());
    for (troxy_core::LegacyClient* client : connections_) {
        client->start([this, remaining]() {
            if (--*remaining > 0) return;
            schedule_arrival();
            if (options_.churn_per_sec > 0.0) schedule_churn();
        });
    }
}

void OpenLoopSuite::schedule_arrival() {
    if (sim_.now() >= recorder_.window_end()) return;
    const double gap_s =
        rng_.next_exponential(1.0 / options_.rate_per_sec);
    sim_.after(static_cast<sim::Duration>(gap_s * 1e9), [this]() {
        if (sim_.now() >= recorder_.window_end()) return;
        // Sample the arrival's identity: who sent it, what it touches.
        // The virtual-client space can be orders of magnitude larger than
        // the physical connection set — identity is data in the request,
        // not a timer.
        OpenLoopArrival arrival;
        arrival.vclient = rng_.next_below(options_.virtual_clients);
        arrival.key = zipf_.sample(rng_);
        arrival.is_read = options_.read_fraction > 0.0 &&
                          rng_.next_double() < options_.read_fraction;
        troxy_core::LegacyClient& conn = *connections_[static_cast<std::size_t>(
            arrival.vclient % connections_.size())];
        const sim::SimTime started = sim_.now();
        if (issued_ == 0) first_arrival_ = started;
        last_arrival_ = started;
        ++issued_;
        conn.send(builder_(rng_, arrival), [this, started](Bytes /*reply*/) {
            ++completed_;
            recorder_.record(sim_.now(), sim_.now() - started);
        });
        schedule_arrival();
    });
}

void OpenLoopSuite::schedule_churn() {
    if (sim_.now() >= recorder_.window_end()) return;
    const double gap_s =
        churn_rng_.next_exponential(1.0 / options_.churn_per_sec);
    sim_.after(static_cast<sim::Duration>(gap_s * 1e9), [this]() {
        if (sim_.now() >= recorder_.window_end()) return;
        // One session departs, a new one arrives in its place: full
        // handshake, new session keys, cold Troxy connection state.
        const std::size_t victim = static_cast<std::size_t>(
            churn_rng_.next_below(connections_.size()));
        connections_[victim]->reconnect();
        ++churned_;
        schedule_churn();
    });
}

}  // namespace troxy::bench
