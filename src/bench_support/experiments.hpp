// Experiment runner shared by the figure benchmarks.
//
// Each paper experiment is a (system, workload, network) triple; this
// module builds the matching cluster, drives the workload for a warmup
// plus measurement window, and returns throughput/latency/behaviour
// counters. Benchmarks stay thin: they sweep parameters and print the
// paper's rows.
#pragma once

#include <string>

#include "bench_support/cluster.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/workload.hpp"

namespace troxy::bench {

enum class SystemKind {
    Baseline,  // original Hybster + client-side library ("BL")
    CTroxy,    // Troxy outside the enclave (JNI-only costs)
    ETroxy,    // Troxy inside the simulated enclave
};

[[nodiscard]] std::string system_name(SystemKind kind);

struct MicroParams {
    // --- workload ---
    bool read_workload = false;  // reads (10 B req / reply_size) instead of
                                 // writes (request_size / 10 B ack)
    std::size_t request_size = 256;
    std::size_t reply_size = 10;
    double write_fraction = 0.0;  // mixed workload share of writes
    int key_count = 16;

    // --- load ---
    int clients = 40;
    int pipeline = 4;
    sim::SimTime warmup = sim::milliseconds(300);
    sim::Duration window = sim::seconds(1);

    // --- environment ---
    bool wan = false;
    sim::Duration lan_jitter = 0;  // see ClusterOptions::lan_jitter
    std::uint64_t seed = 42;

    // --- system knobs ---
    bool baseline_optimistic_reads = false;  // PBFT-like read optimization
    bool fast_reads = true;                  // Troxy fast-read cache
    bool adaptive_monitor = true;            // total-order fallback switch
    double monitor_threshold = 0.5;          // miss rate that disables fast reads
    sim::EnclaveCosts enclave_costs = sim::EnclaveCosts::sgx_v1();
    /// Ordering batch knobs (see hybster::Config): requests per Prepare
    /// and max hold time before an incomplete batch is cut.
    std::size_t batch_size_max = 1;
    sim::Duration batch_delay = 0;
    /// Voter batch knobs (TroxyReplicaHost::Options): replies per
    /// handle_replies ecall (1 = per-reply handle_reply, the seed flow)
    /// and max hold time before a partial batch enters the enclave.
    std::size_t voter_batch_max = 1;
    sim::Duration voter_batch_delay = sim::microseconds(100);
    /// Coalesce replica flush bursts into one Bundle frame / one AEAD
    /// record per destination.
    bool coalesce_wire = false;
    /// Clients seal same-instant send bursts into one channel record.
    bool coalesce_client_sends = false;
    /// Served-load EWMA controllers on the leader batch boundary and the
    /// voter flush boundary.
    bool adaptive_batching = false;
    bool adaptive_voting = false;
    /// Certify a whole executed batch's replies in one
    /// authenticate_replies ecall (1 transition per executed batch).
    bool batch_reply_auth = false;
    /// Fast-read batch knobs (TroxyReplicaHost::Options): buffered cache
    /// queries per CacheQueryBatch burst (1 = one wire message and one
    /// remote ecall per query, the seed flow) and max hold time.
    std::size_t fastread_batch_max = 1;
    sim::Duration fastread_batch_delay = sim::microseconds(100);
    bool adaptive_fastread = false;
    /// Hold the fast-read flush delay only while the served-load EWMA
    /// predicts the batch will fill (batch-1 latency at low load).
    bool fastread_latency_target = false;
    /// Modeled execution lanes per replica (hybster::Config);
    /// 1 = serial execution, the seed flow.
    std::size_t execution_lanes = 1;
};

struct MicroResult {
    Row row;
    // Troxy-side behaviour counters (zero for the baseline).
    std::uint64_t fast_read_hits = 0;
    std::uint64_t fast_read_misses = 0;
    std::uint64_t fast_read_conflicts = 0;
    std::uint64_t ordered_requests = 0;
    std::uint64_t mode_switches = 0;
    // Baseline read-optimization counters.
    std::uint64_t optimistic_attempts = 0;
    std::uint64_t read_conflicts = 0;
    // Hot-path cost counters (Troxy systems only): total enclave ecall
    // transitions, the voter's batched-ecall split, and the simulated
    // wire totals (records after coalescing).
    std::uint64_t enclave_transitions = 0;
    std::uint64_t reply_batches = 0;
    std::uint64_t batched_replies = 0;
    std::uint64_t reply_auth_batches = 0;
    std::uint64_t batch_authenticated_replies = 0;
    std::uint64_t cache_query_batches = 0;
    std::uint64_t batched_cache_queries = 0;
    std::uint64_t cache_response_batches = 0;
    std::uint64_t batched_cache_responses = 0;
    std::uint64_t wire_messages = 0;
    std::uint64_t wire_bytes = 0;
    // Smoothed served-load estimates of the adaptive controllers (summed
    // over replicas, ×100); zero when the matching controller is off.
    std::uint64_t voter_ewma_x100 = 0;
    std::uint64_t fastread_ewma_x100 = 0;
    std::uint64_t batch_ewma_x100 = 0;
    // Execution-lane counters (summed over replicas; zero with one lane).
    std::uint64_t exec_scheduled_batches = 0;
    std::uint64_t exec_scheduled_requests = 0;
    std::uint64_t exec_conflict_stalls = 0;
    std::uint64_t exec_lanes_used_sum = 0;
    std::uint64_t exec_serial_ns = 0;   // serial cost of scheduled batches
    std::uint64_t exec_charged_ns = 0;  // makespan actually charged
    // Enclave batch-invalidation split and fallback pre-batching.
    std::uint64_t cache_invalidations = 0;
    std::uint64_t invalidations_saved = 0;
    std::uint64_t fallback_prebatches = 0;
    std::uint64_t prebatched_fallbacks = 0;

    /// Fraction of read attempts that ended in a *conflict*: for BL,
    /// optimistic reads whose replies disagreed and had to be re-ordered;
    /// for Troxy, fast reads whose remote cache comparison failed. Local
    /// cache misses are not conflicts — they are the conservative
    /// invalidation at work (the read is simply ordered).
    [[nodiscard]] double conflict_rate() const;
};

/// Runs one microbenchmark configuration (§VI-C).
MicroResult run_micro(SystemKind system, const MicroParams& params);

// ----------------------------------------------------------- HTTP service

enum class HttpSystem { Standalone, Baseline, Prophecy, Troxy };

[[nodiscard]] std::string http_system_name(HttpSystem system);

struct HttpParams {
    int clients = 100;
    double total_rate_per_sec = 500.0;  // across all clients (§VI-D)
    double post_fraction = 0.1;
    int page_count = 32;
    bool wan = false;
    sim::SimTime warmup = sim::milliseconds(500);
    sim::Duration window = sim::seconds(4);
    std::uint64_t seed = 7;
};

/// Runs the §VI-D HTTP latency experiment for one system.
Row run_http(HttpSystem system, const HttpParams& params);

}  // namespace troxy::bench
