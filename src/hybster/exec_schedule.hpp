// Conflict-aware execution planning for a committed batch.
//
// The service's classify() exposes the state partition a request
// touches (§IV-A uses the same information to keep the fast-read cache
// coherent). plan_execution() partitions a batch's members into
// conflict classes — members sharing a RequestInfo::state_key — and
// greedily assigns whole classes to N modeled execution lanes. Members
// of one class keep their batch order on one lane; disjoint classes run
// in parallel, so the batch's modeled CPU time is the makespan of the
// schedule instead of the serial sum. (RequestInfo::extra_keys are the
// write-set closure for cache invalidation and do not create execution
// conflicts; see exec_schedule.cpp.)
//
// The plan is a pure function of the batch contents, the service's
// deterministic classify()/execution_cost(), and the lane count, so all
// correct replicas with the same configuration compute identical plans.
// Execution itself still calls Service::execute() in strict batch order
// regardless of the lane count — the lanes only change *time*, never
// results — which keeps replies and checkpoints byte-identical across
// lane counts. With lanes = 1 the makespan equals the serial sum.
#pragma once

#include <cstddef>
#include <vector>

#include "hybster/messages.hpp"
#include "hybster/service.hpp"
#include "sim/time.hpp"

namespace troxy::hybster {

struct ExecPlan {
    /// Serial sum of all member execution costs (what one lane charges).
    sim::Duration serial{0};
    /// Modeled cost of the batch under the greedy lane schedule.
    sim::Duration makespan{0};
    /// Distinct conflict classes among the scheduled (non-noop) members.
    std::size_t conflict_classes = 0;
    /// Lanes that received at least one member.
    std::size_t lanes_used = 0;
    /// Members that had to queue behind an earlier same-class member
    /// instead of starting on a free lane.
    std::size_t conflict_stalls = 0;
    /// Conflict class per member, indexed like batch.requests; classes
    /// are numbered by first appearance. kNoClass for noop members.
    std::vector<std::size_t> class_of;

    static constexpr std::size_t kNoClass = static_cast<std::size_t>(-1);
};

/// Plans the execution of `batch` on `lanes` modeled lanes. Deterministic
/// given (batch contents, service, lanes).
[[nodiscard]] ExecPlan plan_execution(const Batch& batch,
                                      const Service& service,
                                      std::size_t lanes);

}  // namespace troxy::hybster
