#include "hybster/client.hpp"

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "net/client_framing.hpp"
#include "net/envelope.hpp"

namespace troxy::hybster {

Client::Client(net::Fabric& fabric, sim::Node& node, Config config,
               std::vector<crypto::X25519Key> pinned_keys,
               std::vector<Bytes> replica_keys,
               const sim::CostProfile& profile, Options options)
    : fabric_(fabric),
      node_(node),
      config_(std::move(config)),
      pinned_keys_(std::move(pinned_keys)),
      replica_keys_(std::move(replica_keys)),
      profile_(profile),
      options_(options) {
    config_.validate();
    TROXY_ASSERT(pinned_keys_.size() == static_cast<std::size_t>(config_.n()),
                 "one pinned channel key per replica");
    TROXY_ASSERT(
        replica_keys_.size() == static_cast<std::size_t>(config_.n()),
        "one pairwise secret per replica");
    channels_.resize(pinned_keys_.size());
    handshake_seed_ = node_.id() * 0x10001ULL + 7;
}

void Client::start(std::function<void()> ready) {
    ready_ = std::move(ready);
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);

    for (std::uint32_t r = 0; r < channels_.size(); ++r) {
        Writer seed;
        seed.u64(handshake_seed_ + r);
        seed.u32(node_.id());
        channels_[r].emplace(pinned_keys_[r], seed.data());
        crypto.charge_dh();
        outbox.send(config_.node_of(r),
                    net::wrap(net::Channel::Client,
                              net::frame_client(
                                  net::ClientFrame::Hello,
                                  channels_[r]->client_hello())));
    }
    outbox.flush(meter);
}

Request Client::build_request(enclave::CostedCrypto& crypto,
                              std::uint64_t number, const Bytes& payload,
                              std::uint8_t flags) const {
    Request request;
    request.id.client = node_.id();
    request.id.number = number;
    request.flags = flags;
    request.payload = payload;
    const Bytes view = request.signed_view();
    request.auth.reserve(replica_keys_.size());
    for (const Bytes& key : replica_keys_) {
        request.auth.push_back(crypto.mac(key, view));
    }
    return request;
}

void Client::invoke(Bytes payload, bool is_read, Callback callback) {
    const std::uint64_t number = next_number_++;
    auto& pending = pending_[number];
    pending.payload = std::move(payload);
    pending.callback = std::move(callback);
    pending.flags = 0;
    if (is_read) {
        pending.flags |= Request::kFlagRead;
        if (options_.optimistic_reads) {
            pending.flags |= Request::kFlagOptimistic;
            ++optimistic_attempts_;
        }
    }

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    send_request(crypto, outbox, number, /*broadcast=*/false);
    outbox.flush(meter);
    arm_retransmit(number);
}

void Client::send_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                          std::uint64_t number, bool broadcast) {
    const auto it = pending_.find(number);
    if (it == pending_.end() || it->second.done) return;
    Pending& pending = it->second;

    const Request request =
        build_request(crypto, number, pending.payload, pending.flags);
    const Bytes encoded = encode_message(Message(request));

    const bool to_all = broadcast || request.is_optimistic();
    for (std::uint32_t r = 0; r < channels_.size(); ++r) {
        if (!to_all && r != believed_leader_) continue;
        if (!channels_[r] || !channels_[r]->established()) continue;
        crypto.charge(profile_.aead(encoded.size()));
        outbox.send(config_.node_of(r),
                    net::wrap(net::Channel::Client,
                              net::frame_client(net::ClientFrame::Record,
                                                channels_[r]->protect(
                                                    encoded))));
    }
}

void Client::arm_retransmit(std::uint64_t number) {
    fabric_.simulator().after(options_.retransmit_timeout, [this, number]() {
        const auto it = pending_.find(number);
        if (it == pending_.end() || it->second.done) return;
        ++it->second.retransmits;

        enclave::CostMeter meter;
        enclave::CostedCrypto crypto(profile_, meter);
        net::Outbox outbox(fabric_, node_);
        // Broadcast so followers learn about the request and can suspect
        // an unresponsive leader.
        send_request(crypto, outbox, number, /*broadcast=*/true);
        outbox.flush(meter);
        arm_retransmit(number);
    });
}

void Client::on_message(sim::NodeId from, ByteView payload) {
    const int replica = config_.replica_of(from);
    if (replica < 0) return;
    const auto r = static_cast<std::uint32_t>(replica);
    if (!channels_[r]) return;

    auto frame = net::unframe_client(payload);
    if (!frame) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    crypto.charge_dispatch();

    switch (frame->first) {
        case net::ClientFrame::ServerHello: {
            crypto.charge_dh();
            if (channels_[r]->finish(frame->second)) {
                ++established_;
                if (connected() && ready_) {
                    auto ready = std::move(ready_);
                    ready_ = nullptr;
                    node_.exec(meter.take(), std::move(ready));
                    return;
                }
            }
            break;
        }
        case net::ClientFrame::Record: {
            crypto.charge(profile_.aead(frame->second.size()));
            for (Bytes& plaintext : channels_[r]->unprotect(frame->second)) {
                auto message = decode_message(plaintext);
                if (!message) continue;
                if (auto* reply = std::get_if<Reply>(&*message)) {
                    if (reply->replica == r) {
                        handle_reply(crypto, std::move(*reply));
                    }
                }
            }
            break;
        }
        case net::ClientFrame::Hello:
            break;  // clients never receive hellos
    }
    node_.charge(meter.take());
}

void Client::handle_reply(enclave::CostedCrypto& crypto, Reply&& reply) {
    const auto it = pending_.find(reply.request_id.number);
    if (it == pending_.end() || it->second.done) return;
    if (reply.request_id.client != node_.id()) return;
    Pending& pending = it->second;

    // Verify the pairwise reply certificate; unauthenticated replies are
    // discarded (a faulty replica cannot impersonate others).
    if (reply.replica >= replica_keys_.size()) return;
    if (!crypto.mac_verify(replica_keys_[reply.replica],
                           reply.certified_view(), reply.cert)) {
        return;
    }

    believed_leader_ = config_.leader_of(reply.view);

    // One vote per replica; a replica re-sending a different result only
    // replaces its previous vote (cannot double-count).
    Writer key;
    key.raw(reply.request_digest);
    key.bytes(reply.result);
    Bytes vote = std::move(key).take();

    auto& votes = pending.votes;
    const auto previous = votes.find(reply.replica);
    if (previous != votes.end()) {
        if (previous->second == vote) return;
        --pending.tally[previous->second];
    }
    votes[reply.replica] = vote;
    const int count = ++pending.tally[vote];

    // Ordered requests need f+1 matching replies; the PBFT-like read
    // optimization needs *all* 2f+1 to match (§V-B: the client waits for
    // the "2f+1 slowest matching reply"), since a non-ordered read is
    // only safe when every queried replica agrees.
    const int required = (pending.flags & Request::kFlagOptimistic)
                             ? config_.n()
                             : config_.quorum();
    if (count >= required) {
        finish(reply.request_id.number, pending, std::move(reply.result));
        return;
    }

    // Optimistic read conflict: all replicas answered but they disagree —
    // retry as an ordered request (§VI-C2).
    if ((pending.flags & Request::kFlagOptimistic) &&
        votes.size() == static_cast<std::size_t>(config_.n()) &&
        pending.tally.size() > 1) {
        ++read_conflicts_;
        retry_ordered(reply.request_id.number, std::move(pending));
    }
}

void Client::finish(std::uint64_t number, Pending& pending, Bytes result) {
    pending.done = true;
    Callback callback = std::move(pending.callback);
    pending_.erase(number);
    if (callback) callback(std::move(result));
}

void Client::retry_ordered(std::uint64_t number, Pending failed) {
    pending_.erase(number);
    const std::uint64_t fresh = next_number_++;
    auto& pending = pending_[fresh];
    pending.payload = std::move(failed.payload);
    pending.callback = std::move(failed.callback);
    pending.flags = Request::kFlagRead;  // ordered read this time

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox(fabric_, node_);
    send_request(crypto, outbox, fresh, /*broadcast=*/false);
    outbox.flush(meter);
    arm_retransmit(fresh);
}

}  // namespace troxy::hybster
