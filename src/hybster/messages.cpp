#include "hybster/messages.hpp"

namespace troxy::hybster {

namespace {

void put_tag(Writer& w, const Certificate& cert) { w.raw(cert); }

Certificate get_tag(Reader& r) {
    const Bytes raw = r.raw(sizeof(Certificate));
    Certificate cert;
    std::copy(raw.begin(), raw.end(), cert.begin());
    return cert;
}

void put_digest(Writer& w, const crypto::Sha256Digest& d) { w.raw(d); }

crypto::Sha256Digest get_digest(Reader& r) {
    const Bytes raw = r.raw(crypto::kSha256DigestSize);
    crypto::Sha256Digest d;
    std::copy(raw.begin(), raw.end(), d.begin());
    return d;
}

}  // namespace

// ---------------------------------------------------------------- Request

Bytes Request::signed_view() const {
    Writer w;
    w.reserve(17 + payload.size());
    w.u32(id.client);
    w.u64(id.number);
    w.u8(flags);
    w.bytes(payload);
    return std::move(w).take();
}

void Request::encode(Writer& w) const {
    w.reserve(18 + payload.size() + auth.size() * sizeof(Certificate));
    w.u32(id.client);
    w.u64(id.number);
    w.u8(flags);
    w.bytes(payload);
    w.u8(static_cast<std::uint8_t>(auth.size()));
    for (const Certificate& cert : auth) put_tag(w, cert);
}

Request Request::decode(Reader& r) {
    Request req;
    req.id.client = r.u32();
    req.id.number = r.u64();
    req.flags = r.u8();
    req.payload = r.bytes();
    const std::uint8_t count = r.u8();
    req.auth.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) req.auth.push_back(get_tag(r));
    return req;
}

const crypto::Sha256Digest& Request::digest() const {
    if (!digest_cache_) digest_cache_ = crypto::sha256(signed_view());
    return *digest_cache_;
}

const crypto::Sha256Digest& Request::digest_with(
    enclave::CostedCrypto& crypto) const {
    if (!digest_cache_) digest_cache_ = crypto.hash(signed_view());
    return *digest_cache_;
}

// ------------------------------------------------------------------ Batch

const crypto::Sha256Digest& Batch::digest() const {
    if (digest_cache_) return *digest_cache_;
    if (requests.size() == 1) {
        digest_cache_ = requests.front().digest();
        return *digest_cache_;
    }
    Writer w;
    w.reserve(requests.size() * crypto::kSha256DigestSize);
    for (const Request& request : requests) w.raw(request.digest());
    digest_cache_ = crypto::sha256(w.data());
    return *digest_cache_;
}

const crypto::Sha256Digest& Batch::digest_with(
    enclave::CostedCrypto& crypto) const {
    if (digest_cache_) return *digest_cache_;
    for (const Request& request : requests) (void)request.digest_with(crypto);
    if (requests.size() == 1) {
        digest_cache_ = requests.front().digest();
        return *digest_cache_;
    }
    Writer w;
    w.reserve(requests.size() * crypto::kSha256DigestSize);
    for (const Request& request : requests) w.raw(request.digest());
    digest_cache_ = crypto.hash(w.data());
    return *digest_cache_;
}

void Batch::encode(Writer& w) const {
    w.u32(static_cast<std::uint32_t>(requests.size()));
    for (const Request& request : requests) request.encode(w);
}

Batch Batch::decode(Reader& r) {
    Batch b;
    const std::uint32_t count = r.u32();
    if (count > 1u << 16) throw DecodeError("unreasonable batch size");
    b.requests.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        b.requests.push_back(Request::decode(r));
    }
    return b;
}

// ---------------------------------------------------------------- Prepare

Bytes Prepare::certified_view() const {
    // The counter certifies the batch *digest*, not the serialized batch:
    // the digest binds every member, and certification cost stays constant
    // in the batch size. Callers charge the digest via digest_with() before
    // certifying; here the memoized value is free.
    //
    // The member count is certified alongside the digest. Without it, one
    // certificate could cover two structurally different batches: a
    // single-member batch digests to the raw request digest, and a request
    // whose signed bytes were ground to equal the concatenated member
    // digests of a k-member batch would share its combining hash. Binding
    // (count, digest) makes those certified views distinct, so a Byzantine
    // leader cannot equivocate between them under one counter value.
    Writer w;
    w.reserve(24 + crypto::kSha256DigestSize);
    w.u64(view);
    w.u64(seq);
    w.u32(replica);
    w.u32(static_cast<std::uint32_t>(batch.size()));
    put_digest(w, batch.digest());
    return std::move(w).take();
}

void Prepare::encode(Writer& w) const {
    w.u64(view);
    w.u64(seq);
    w.u32(replica);
    w.u64(counter_value);
    batch.encode(w);
    put_tag(w, cert);
}

Prepare Prepare::decode(Reader& r) {
    Prepare p;
    p.view = r.u64();
    p.seq = r.u64();
    p.replica = r.u32();
    p.counter_value = r.u64();
    p.batch = Batch::decode(r);
    p.cert = get_tag(r);
    return p;
}

// ----------------------------------------------------------------- Commit

Bytes Commit::certified_view() const {
    // (batch_size, batch_digest) pins the batch structure — mirror of
    // Prepare::certified_view(), see the rationale there.
    Writer w;
    w.reserve(24 + crypto::kSha256DigestSize);
    w.u64(view);
    w.u64(seq);
    w.u32(replica);
    w.u32(batch_size);
    put_digest(w, batch_digest);
    return std::move(w).take();
}

void Commit::encode(Writer& w) const {
    w.u64(view);
    w.u64(seq);
    w.u32(replica);
    w.u64(counter_value);
    w.u32(batch_size);
    put_digest(w, batch_digest);
    put_tag(w, cert);
}

Commit Commit::decode(Reader& r) {
    Commit c;
    c.view = r.u64();
    c.seq = r.u64();
    c.replica = r.u32();
    c.counter_value = r.u64();
    c.batch_size = r.u32();
    c.batch_digest = get_digest(r);
    c.cert = get_tag(r);
    return c;
}

// ------------------------------------------------------------------ Reply

Bytes Reply::certified_view() const {
    Writer w;
    w.reserve(37 + crypto::kSha256DigestSize + result.size());
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(view);
    w.u64(seq);
    w.u32(request_id.client);
    w.u64(request_id.number);
    put_digest(w, request_digest);
    w.bytes(result);
    w.u32(replica);
    return std::move(w).take();
}

void Reply::encode(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(view);
    w.u64(seq);
    w.u32(request_id.client);
    w.u64(request_id.number);
    put_digest(w, request_digest);
    w.bytes(result);
    w.u32(replica);
    put_tag(w, cert);
}

Reply Reply::decode(Reader& r) {
    Reply rep;
    rep.kind = static_cast<Kind>(r.u8());
    if (rep.kind != Kind::Ordered && rep.kind != Kind::Optimistic) {
        throw DecodeError("invalid reply kind");
    }
    rep.view = r.u64();
    rep.seq = r.u64();
    rep.request_id.client = r.u32();
    rep.request_id.number = r.u64();
    rep.request_digest = get_digest(r);
    rep.result = r.bytes();
    rep.replica = r.u32();
    rep.cert = get_tag(r);
    return rep;
}

// ------------------------------------------------------------- Checkpoint

Bytes CheckpointMsg::certified_view() const {
    Writer w;
    w.u64(seq);
    put_digest(w, state_digest);
    w.u32(replica);
    return std::move(w).take();
}

void CheckpointMsg::encode(Writer& w) const {
    w.u64(seq);
    put_digest(w, state_digest);
    w.u32(replica);
    put_tag(w, cert);
}

CheckpointMsg CheckpointMsg::decode(Reader& r) {
    CheckpointMsg c;
    c.seq = r.u64();
    c.state_digest = get_digest(r);
    c.replica = r.u32();
    c.cert = get_tag(r);
    return c;
}

// ------------------------------------------------------------- ViewChange

Bytes ViewChange::certified_view() const {
    Writer w;
    w.u64(new_view);
    w.u32(replica);
    w.u64(last_stable);
    w.u32(static_cast<std::uint32_t>(prepared.size()));
    for (const Prepare& p : prepared) p.encode(w);
    return std::move(w).take();
}

void ViewChange::encode(Writer& w) const {
    w.u64(new_view);
    w.u32(replica);
    w.u64(last_stable);
    w.u32(static_cast<std::uint32_t>(prepared.size()));
    for (const Prepare& p : prepared) p.encode(w);
    put_tag(w, cert);
}

ViewChange ViewChange::decode(Reader& r) {
    ViewChange vc;
    vc.new_view = r.u64();
    vc.replica = r.u32();
    vc.last_stable = r.u64();
    const std::uint32_t count = r.u32();
    if (count > 1u << 20) throw DecodeError("unreasonable prepare count");
    vc.prepared.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        vc.prepared.push_back(Prepare::decode(r));
    }
    vc.cert = get_tag(r);
    return vc;
}

// ---------------------------------------------------------------- NewView

Bytes NewView::certified_view() const {
    Writer w;
    w.u64(view);
    w.u32(replica);
    w.u64(start_seq);
    w.u32(static_cast<std::uint32_t>(proofs.size()));
    for (const ViewChange& vc : proofs) vc.encode(w);
    w.u32(static_cast<std::uint32_t>(reproposed.size()));
    for (const Prepare& p : reproposed) p.encode(w);
    return std::move(w).take();
}

void NewView::encode(Writer& w) const {
    w.u64(view);
    w.u32(replica);
    w.u64(start_seq);
    w.u32(static_cast<std::uint32_t>(proofs.size()));
    for (const ViewChange& vc : proofs) vc.encode(w);
    w.u32(static_cast<std::uint32_t>(reproposed.size()));
    for (const Prepare& p : reproposed) p.encode(w);
    put_tag(w, cert);
}

NewView NewView::decode(Reader& r) {
    NewView nv;
    nv.view = r.u64();
    nv.replica = r.u32();
    nv.start_seq = r.u64();
    const std::uint32_t proof_count = r.u32();
    if (proof_count > 1024) throw DecodeError("unreasonable proof count");
    nv.proofs.reserve(proof_count);
    for (std::uint32_t i = 0; i < proof_count; ++i) {
        nv.proofs.push_back(ViewChange::decode(r));
    }
    const std::uint32_t prep_count = r.u32();
    if (prep_count > 1u << 20) throw DecodeError("unreasonable prepare count");
    nv.reproposed.reserve(prep_count);
    for (std::uint32_t i = 0; i < prep_count; ++i) {
        nv.reproposed.push_back(Prepare::decode(r));
    }
    nv.cert = get_tag(r);
    return nv;
}

// ----------------------------------------------------------- StateRequest

Bytes StateRequest::certified_view() const {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::StateRequest));
    w.u32(replica);
    w.u64(have);
    w.u32(static_cast<std::uint32_t>(have_chunks.size()));
    for (const crypto::Sha256Digest& d : have_chunks) put_digest(w, d);
    return std::move(w).take();
}

void StateRequest::encode(Writer& w) const {
    w.reserve(16 + have_chunks.size() * crypto::kSha256DigestSize);
    w.u32(replica);
    w.u64(have);
    w.u32(static_cast<std::uint32_t>(have_chunks.size()));
    for (const crypto::Sha256Digest& d : have_chunks) put_digest(w, d);
    put_tag(w, cert);
}

StateRequest StateRequest::decode(Reader& r) {
    StateRequest sr;
    sr.replica = r.u32();
    sr.have = r.u64();
    const std::uint32_t chunk_count = r.u32();
    if (chunk_count > 1u << 20) throw DecodeError("unreasonable have list");
    sr.have_chunks.reserve(chunk_count);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
        sr.have_chunks.push_back(get_digest(r));
    }
    sr.cert = get_tag(r);
    return sr;
}

// ---------------------------------------------------------- StateResponse

Bytes StateResponse::certified_view() const {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::StateResponse));
    w.u32(replica);
    w.u64(view);
    w.u64(view_start);
    w.u64(last_stable);
    put_digest(w, root);
    return std::move(w).take();
}

void StateResponse::encode_head(Writer& w, std::size_t chunk_count) const {
    w.u32(replica);
    w.u64(view);
    w.u64(view_start);
    w.u64(last_stable);
    put_digest(w, root);
    w.u32(static_cast<std::uint32_t>(manifest.size()));
    for (const crypto::Sha256Digest& d : manifest) put_digest(w, d);
    w.u32(static_cast<std::uint32_t>(chunk_count));
}

void StateResponse::encode_tail(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(proof.size()));
    for (const CheckpointMsg& vote : proof) vote.encode(w);
    put_tag(w, cert);
}

void StateResponse::encode(Writer& w) const {
    std::size_t chunk_bytes = 0;
    for (const Bytes& chunk : chunks) chunk_bytes += chunk.size();
    w.reserve(73 + manifest.size() * crypto::kSha256DigestSize +
              chunks.size() * 8 + chunk_bytes +
              proof.size() * sizeof(CheckpointMsg));
    encode_head(w, chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        w.u32(chunk_index[i]);
        w.bytes(chunks[i]);
    }
    encode_tail(w);
}

StateResponse StateResponse::decode(Reader& r) {
    StateResponse sr;
    sr.replica = r.u32();
    sr.view = r.u64();
    sr.view_start = r.u64();
    sr.last_stable = r.u64();
    sr.root = get_digest(r);
    const std::uint32_t manifest_count = r.u32();
    if (manifest_count > 1u << 20) throw DecodeError("unreasonable manifest");
    sr.manifest.reserve(manifest_count);
    for (std::uint32_t i = 0; i < manifest_count; ++i) {
        sr.manifest.push_back(get_digest(r));
    }
    const std::uint32_t chunk_count = r.u32();
    if (chunk_count > 1u << 16) throw DecodeError("unreasonable chunk count");
    sr.chunk_index.reserve(chunk_count);
    sr.chunks.reserve(chunk_count);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
        sr.chunk_index.push_back(r.u32());
        sr.chunks.push_back(r.bytes());
    }
    const std::uint8_t count = r.u8();
    if (count > 64) throw DecodeError("unreasonable proof count");
    sr.proof.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
        sr.proof.push_back(CheckpointMsg::decode(r));
    }
    sr.cert = get_tag(r);
    return sr;
}

// -------------------------------------------------------------- top level

namespace {

template <typename T>
MsgType type_of();

template <>
MsgType type_of<Request>() {
    return MsgType::Request;
}
template <>
MsgType type_of<Prepare>() {
    return MsgType::Prepare;
}
template <>
MsgType type_of<Commit>() {
    return MsgType::Commit;
}
template <>
MsgType type_of<Reply>() {
    return MsgType::Reply;
}
template <>
MsgType type_of<CheckpointMsg>() {
    return MsgType::Checkpoint;
}
template <>
MsgType type_of<ViewChange>() {
    return MsgType::ViewChange;
}
template <>
MsgType type_of<NewView>() {
    return MsgType::NewView;
}
template <>
MsgType type_of<StateRequest>() {
    return MsgType::StateRequest;
}
template <>
MsgType type_of<StateResponse>() {
    return MsgType::StateResponse;
}

}  // namespace

Bytes encode_message(const Message& message) {
    Writer w;
    std::visit(
        [&w](const auto& msg) {
            w.u8(static_cast<std::uint8_t>(
                type_of<std::decay_t<decltype(msg)>>()));
            msg.encode(w);
        },
        message);
    return std::move(w).take();
}

std::optional<Message> decode_message(ByteView data) {
    try {
        Reader r(data);
        const auto type = static_cast<MsgType>(r.u8());
        Message out = [&]() -> Message {
            switch (type) {
                case MsgType::Request: return Request::decode(r);
                case MsgType::Prepare: return Prepare::decode(r);
                case MsgType::Commit: return Commit::decode(r);
                case MsgType::Reply: return Reply::decode(r);
                case MsgType::Checkpoint: return CheckpointMsg::decode(r);
                case MsgType::ViewChange: return ViewChange::decode(r);
                case MsgType::NewView: return NewView::decode(r);
                case MsgType::StateRequest: return StateRequest::decode(r);
                case MsgType::StateResponse:
                    return StateResponse::decode(r);
            }
            throw DecodeError("unknown message type");
        }();
        r.expect_done();
        return out;
    } catch (const DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace troxy::hybster
