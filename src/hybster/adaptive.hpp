// Load-driven batch sizing.
//
// Fixed batch boundaries trade latency for throughput: a large
// batch_size_max helps a saturated pipeline but makes an idle system wait
// for company (or for the batch-delay timer). Following the spirit of the
// paper's adaptive fast-read switch (§IV-B) — observe recent behaviour,
// adjust the mechanism — this controller tracks an exponentially weighted
// moving average of the *served load*: how many items each recent
// delay-sized window actually delivered. The effective batch boundary
// grows only as far as the observed service rate warrants.
//
// Feeding the controller from served work rather than instantaneous queue
// depth matters for ramp-up: a boundary of 1 keeps the queue at depth 1
// no matter how fast items arrive (every enqueue flushes immediately), so
// a depth-fed EWMA could never observe rising load. The served count per
// window, by contrast, directly measures the arrival rate — an idle
// system serves ≈ 1 item per window and keeps single-request latency,
// while a saturated one serves tens per window and opens the boundary to
// the configured maximum within a few windows.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace troxy::hybster {

class AdaptiveBatchController {
  public:
    /// `alpha_percent` is the EWMA weight of a new window sample in
    /// percent (integer arithmetic keeps the simulation deterministic
    /// across platforms — no floating point drift).
    explicit AdaptiveBatchController(unsigned alpha_percent = 20) noexcept
        : alpha_percent_(alpha_percent) {}

    /// Records `count` items served (flushed/cut) at simulated time `now`.
    /// `window` is the caller's batch-delay bound: counts folding into one
    /// EWMA sample accumulate per window of that length, so the smoothed
    /// value estimates "items per delay period" — exactly the batch size
    /// the load can fill before the flush timer would fire. A zero window
    /// treats every call as its own sample (each served batch size feeds
    /// the EWMA directly).
    void record_served(std::size_t count, sim::SimTime now,
                       sim::Duration window) noexcept {
        if (window == 0) {
            fold(static_cast<std::uint64_t>(count) * 100);
            return;
        }
        if (!window_open_) {
            window_open_ = true;
            window_start_ = now;
        }
        // Close every fully elapsed window first; a long idle gap folds a
        // bounded number of empty windows (the EWMA has decayed to ~zero
        // by then anyway) and re-anchors at `now`.
        int folded = 0;
        while (now >= window_start_ + window) {
            fold(served_in_window_ * 100);
            served_in_window_ = 0;
            window_start_ += window;
            if (++folded >= kMaxGapWindows) {
                window_start_ = now;
                break;
            }
        }
        served_in_window_ += static_cast<std::uint64_t>(count);
    }

    /// The batch boundary to use right now: the smoothed served-per-window
    /// count rounded up, clamped to [1, configured_max]. Rounding up lets
    /// the boundary track rising load one step ahead of the average.
    [[nodiscard]] std::size_t effective(std::size_t configured_max) const
        noexcept {
        const std::size_t target =
            static_cast<std::size_t>((ewma_x100_ + 99) / 100);
        return std::clamp<std::size_t>(target, 1, configured_max);
    }

    /// The smoothed served-per-window estimate, scaled by 100 (two digits
    /// of fraction). Exposed so benches can record what the controller saw.
    [[nodiscard]] std::uint64_t ewma_x100() const noexcept {
        return ewma_x100_;
    }

  private:
    static constexpr int kMaxGapWindows = 32;

    void fold(std::uint64_t sample_x100) noexcept {
        if (ewma_x100_ == 0) {
            ewma_x100_ = sample_x100;
        } else {
            ewma_x100_ = (ewma_x100_ * (100 - alpha_percent_) +
                          sample_x100 * alpha_percent_) /
                         100;
        }
    }

    unsigned alpha_percent_;
    std::uint64_t ewma_x100_ = 0;
    bool window_open_ = false;
    sim::SimTime window_start_ = 0;
    std::uint64_t served_in_window_ = 0;
};

}  // namespace troxy::hybster
