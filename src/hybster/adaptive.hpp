// Load-driven batch sizing.
//
// Fixed batch boundaries trade latency for throughput: a large
// batch_size_max helps a saturated pipeline but makes an idle system wait
// for company (or for the batch-delay timer). Following the spirit of the
// paper's adaptive fast-read switch (§IV-B) — observe recent behaviour,
// adjust the mechanism — this controller tracks an exponentially weighted
// moving average of the queue depth seen at enqueue time and lets the
// effective batch boundary grow only as far as the load actually warrants.
// An idle system observes depth ≈ 1, the EWMA stays ≈ 1, and every request
// is cut into its own batch immediately: single-request latency exactly as
// with batching disabled. Under a closed-loop burst the observed depth
// approaches the offered concurrency and the boundary opens up to the
// configured maximum within a few tens of observations.
#pragma once

#include <algorithm>
#include <cstddef>

namespace troxy::hybster {

class AdaptiveBatchController {
  public:
    /// `alpha_percent` is the EWMA weight of a new observation in percent
    /// (integer arithmetic keeps the simulation deterministic across
    /// platforms — no floating point drift).
    explicit AdaptiveBatchController(unsigned alpha_percent = 20) noexcept
        : alpha_percent_(alpha_percent) {}

    /// Records the queue depth observed when a request was enqueued
    /// (including the request itself, so depth >= 1).
    void observe(std::size_t depth) noexcept {
        // Fixed-point EWMA, scaled by 100 to keep two digits of fraction.
        const std::uint64_t sample = static_cast<std::uint64_t>(depth) * 100;
        if (ewma_x100_ == 0) {
            ewma_x100_ = sample;
        } else {
            ewma_x100_ = (ewma_x100_ * (100 - alpha_percent_) +
                          sample * alpha_percent_) /
                         100;
        }
    }

    /// The batch boundary to use right now: the smoothed depth rounded up,
    /// clamped to [1, configured_max]. Rounding up lets the boundary track
    /// rising load one step ahead of the average.
    [[nodiscard]] std::size_t effective(std::size_t configured_max) const
        noexcept {
        const std::size_t target =
            static_cast<std::size_t>((ewma_x100_ + 99) / 100);
        return std::clamp<std::size_t>(target, 1, configured_max);
    }

    [[nodiscard]] std::uint64_t ewma_x100() const noexcept {
        return ewma_x100_;
    }

  private:
    unsigned alpha_percent_;
    std::uint64_t ewma_x100_ = 0;
};

}  // namespace troxy::hybster
