// Merkle-chunked checkpoint snapshots.
//
// A service checkpoint is split into fixed-size chunks whose hashes form
// the leaves of a binary Merkle tree; the tree's root *is* the checkpoint
// digest the replicas certify in their CheckpointMsgs. State transfer can
// then ship a checkpoint as a verifiable chunk stream: a rejoiner
// advertises the chunk hashes it already holds, receives only the chunks
// it misses, verifies each against the manifest (and the manifest against
// the certified root), and resumes a half-finished transfer after a crash
// or loss window instead of restarting from byte zero.
//
// Hashing is domain-separated (RFC 6962 style): leaf hashes are computed
// over 0x00 || chunk and interior nodes over 0x01 || left || right, so an
// interior node can never be passed off as a leaf — the manifest → root
// mapping is injective up to SHA-256 collisions, which makes the chunk
// stream exactly as trustworthy as the monolithic snapshot it replaces.
// An odd node at any level is promoted unchanged to the next level.
#pragma once

#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "enclave/meter.hpp"

namespace troxy::hybster {

/// A checkpoint snapshot in transferable form: the chunks, their leaf
/// hashes in chunk order (the manifest), and the Merkle root that the
/// checkpoint certificates bind. Chunks are immutable and shared:
/// the stable checkpoint, the durable chunk store and in-flight
/// zero-copy wire frames all reference the same buffers, so banking or
/// resending a chunk never copies its payload.
struct ChunkedSnapshot {
    std::vector<std::shared_ptr<const Bytes>> chunks;
    std::vector<crypto::Sha256Digest> manifest;
    crypto::Sha256Digest root{};

    [[nodiscard]] std::size_t total_bytes() const noexcept {
        std::size_t total = 0;
        for (const auto& chunk : chunks) {
            if (chunk) total += chunk->size();
        }
        return total;
    }
};

/// Leaf hash of one chunk (0x00-prefixed), charged to the meter.
crypto::Sha256Digest chunk_leaf_hash(enclave::CostedCrypto& crypto,
                                     ByteView chunk);

/// Folds a manifest of leaf hashes into the Merkle root (0x01-prefixed
/// interior nodes, odd nodes promoted), charging one hash per interior
/// node. An empty manifest has a well-defined constant root, the digest
/// of the single domain byte — the "nothing stable yet" marker.
crypto::Sha256Digest merkle_root(enclave::CostedCrypto& crypto,
                                 const std::vector<crypto::Sha256Digest>&
                                     manifest);

/// Splits `snapshot` into `chunk_size`-byte chunks (the last may be
/// short; an empty snapshot yields one empty chunk so every checkpoint
/// has at least one leaf) and builds manifest and root.
ChunkedSnapshot chunk_snapshot(enclave::CostedCrypto& crypto,
                               ByteView snapshot, std::size_t chunk_size);

}  // namespace troxy::hybster
