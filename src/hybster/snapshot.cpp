#include "hybster/snapshot.hpp"

#include "common/assert.hpp"

namespace troxy::hybster {

namespace {

constexpr std::uint8_t kLeafDomain = 0x00;
constexpr std::uint8_t kNodeDomain = 0x01;

}  // namespace

crypto::Sha256Digest chunk_leaf_hash(enclave::CostedCrypto& crypto,
                                     ByteView chunk) {
    Bytes input;
    input.reserve(1 + chunk.size());
    input.push_back(kLeafDomain);
    input.insert(input.end(), chunk.begin(), chunk.end());
    return crypto.hash(input);
}

crypto::Sha256Digest merkle_root(
    enclave::CostedCrypto& crypto,
    const std::vector<crypto::Sha256Digest>& manifest) {
    if (manifest.empty()) {
        return crypto.hash(ByteView(&kNodeDomain, 1));
    }
    std::vector<crypto::Sha256Digest> level = manifest;
    while (level.size() > 1) {
        std::vector<crypto::Sha256Digest> next;
        next.reserve((level.size() + 1) / 2);
        std::size_t i = 0;
        for (; i + 1 < level.size(); i += 2) {
            Bytes input;
            input.reserve(1 + 2 * crypto::kSha256DigestSize);
            input.push_back(kNodeDomain);
            input.insert(input.end(), level[i].begin(), level[i].end());
            input.insert(input.end(), level[i + 1].begin(),
                         level[i + 1].end());
            next.push_back(crypto.hash(input));
        }
        if (i < level.size()) next.push_back(level[i]);  // odd: promote
        level = std::move(next);
    }
    return level.front();
}

ChunkedSnapshot chunk_snapshot(enclave::CostedCrypto& crypto,
                               ByteView snapshot, std::size_t chunk_size) {
    TROXY_ASSERT(chunk_size > 0, "chunk size must be positive");
    ChunkedSnapshot out;
    const std::size_t count =
        snapshot.empty() ? 1 : (snapshot.size() + chunk_size - 1) / chunk_size;
    out.chunks.reserve(count);
    out.manifest.reserve(count);
    for (std::size_t offset = 0; offset == 0 || offset < snapshot.size();
         offset += chunk_size) {
        const std::size_t len =
            std::min(chunk_size, snapshot.size() - offset);
        Bytes chunk(snapshot.begin() + static_cast<std::ptrdiff_t>(offset),
                    snapshot.begin() + static_cast<std::ptrdiff_t>(offset + len));
        out.manifest.push_back(chunk_leaf_hash(crypto, chunk));
        out.chunks.push_back(
            std::make_shared<const Bytes>(std::move(chunk)));
    }
    out.root = merkle_root(crypto, out.manifest);
    return out;
}

}  // namespace troxy::hybster
