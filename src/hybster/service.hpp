// Replicated-service interface (the state machine under SMR).
//
// The fast-read optimization "assumes that read and write requests can be
// distinguished before executing them and that it can be determined which
// part of the state a request is about to access or modify" (§IV-A).
// classify() exposes exactly that: an operation kind plus the state key
// the request touches. execute() must be deterministic — all correct
// replicas apply requests in sequence order and must produce identical
// replies. Checkpoint/restore support the protocol's garbage collection
// and state transfer.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/cost.hpp"

namespace troxy::hybster {

struct RequestInfo {
    bool is_read = false;
    /// Identifier of the state partition the request touches; the
    /// fast-read cache is keyed and invalidated by this.
    std::string state_key;
    /// Write-set closure beyond state_key: additional cache partitions a
    /// mutation invalidates (and that gate fast reads keyed on them) —
    /// e.g. a KV mutation also touches every scan prefix covering its
    /// key. These are *invalidation* targets only; execution-conflict
    /// classes are formed on state_key alone (two writes under a common
    /// scan prefix still commute at the exact-key level).
    std::vector<std::string> extra_keys;

    /// state_key followed by extra_keys (the full touched-key set).
    [[nodiscard]] std::vector<std::string> all_keys() const {
        std::vector<std::string> keys;
        keys.reserve(1 + extra_keys.size());
        keys.push_back(state_key);
        keys.insert(keys.end(), extra_keys.begin(), extra_keys.end());
        return keys;
    }
};

class Service {
  public:
    virtual ~Service() = default;

    /// Inspects a request without executing it (trusted-side use).
    [[nodiscard]] virtual RequestInfo classify(ByteView request) const = 0;

    /// Deterministically executes a request and returns the reply payload.
    virtual Bytes execute(ByteView request) = 0;

    /// Serializes the full service state.
    [[nodiscard]] virtual Bytes checkpoint() const = 0;

    /// Replaces the service state with a checkpoint.
    virtual void restore(ByteView snapshot) = 0;

    /// Modelled CPU cost of executing this request (charged on the
    /// replica's node in addition to protocol costs).
    [[nodiscard]] virtual sim::Duration execution_cost(
        ByteView request) const {
        (void)request;
        return 0;
    }
};

using ServicePtr = std::unique_ptr<Service>;

/// Factory so each replica can own an identical, independent instance.
using ServiceFactory = std::function<ServicePtr()>;

}  // namespace troxy::hybster
