// Replicated-service interface (the state machine under SMR).
//
// The fast-read optimization "assumes that read and write requests can be
// distinguished before executing them and that it can be determined which
// part of the state a request is about to access or modify" (§IV-A).
// classify() exposes exactly that: an operation kind plus the state key
// the request touches. execute() must be deterministic — all correct
// replicas apply requests in sequence order and must produce identical
// replies. Checkpoint/restore support the protocol's garbage collection
// and state transfer.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "sim/cost.hpp"

namespace troxy::hybster {

struct RequestInfo {
    bool is_read = false;
    /// Identifier of the state partition the request touches; the
    /// fast-read cache is keyed and invalidated by this.
    std::string state_key;
};

class Service {
  public:
    virtual ~Service() = default;

    /// Inspects a request without executing it (trusted-side use).
    [[nodiscard]] virtual RequestInfo classify(ByteView request) const = 0;

    /// Deterministically executes a request and returns the reply payload.
    virtual Bytes execute(ByteView request) = 0;

    /// Serializes the full service state.
    [[nodiscard]] virtual Bytes checkpoint() const = 0;

    /// Replaces the service state with a checkpoint.
    virtual void restore(ByteView snapshot) = 0;

    /// Modelled CPU cost of executing this request (charged on the
    /// replica's node in addition to protocol costs).
    [[nodiscard]] virtual sim::Duration execution_cost(
        ByteView request) const {
        (void)request;
        return 0;
    }
};

using ServicePtr = std::unique_ptr<Service>;

/// Factory so each replica can own an identical, independent instance.
using ServiceFactory = std::function<ServicePtr()>;

}  // namespace troxy::hybster
