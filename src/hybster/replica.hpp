// Hybster replica: hybrid-fault-model BFT state machine replication.
//
// Leader-based ordering with trusted-counter certificates (TrinX):
//
//   REQUEST → leader assigns the next sequence number and broadcasts a
//   PREPARE certified with its per-view ordering counter; every follower
//   validates the counter continuity (value = seq - view_start + 1),
//   certifies a COMMIT with its own counter and broadcasts it. An entry is
//   committed once f+1 distinct replicas (the leader's PREPARE counts as
//   its COMMIT) vouch for the same request digest — sufficient in the
//   hybrid fault model because certified messages cannot equivocate.
//   Committed entries execute in sequence order; each replica emits a
//   REPLY through the host's deliver_reply hook (which in a Troxy
//   deployment authenticates it inside the trusted subsystem and keeps
//   the fast-read cache coherent, §IV-A).
//
// Checkpoints every `checkpoint_interval` sequences garbage-collect the
// log; view changes replace an unresponsive leader using certified
// VIEW-CHANGE/NEW-VIEW messages carrying the prepared-request history.
//
// The replica itself is *untrusted* code — it may be subjected to fault
// injection (crash, reply dropping/corruption) — while every certificate
// it emits goes through the trusted TrinX subsystem, so its misbehaviour
// is detectable exactly as in the paper's model.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "enclave/trinx.hpp"
#include "hybster/config.hpp"
#include "hybster/messages.hpp"
#include "hybster/service.hpp"
#include "net/envelope.hpp"
#include "net/outbox.hpp"
#include "sim/cost.hpp"

namespace troxy::hybster {

/// Injectable misbehaviour for experiments and tests. The replica is the
/// untrusted part of the machine; its trusted subsystem stays correct.
struct FaultProfile {
    bool crashed = false;          // drops everything (crash fault)
    bool drop_replies = false;     // executes but never sends replies
    bool corrupt_replies = false;  // flips bytes in the reply result
                                   // (after trusted authentication — the
                                   // voter must reject these)
    bool mute_agreement = false;   // sends no PREPARE/COMMIT (leader DoS)
};

class Replica {
  public:
    struct Hooks {
        /// Verifies an incoming request's client certificate.
        std::function<bool(enclave::CostedCrypto&, const Request&)>
            verify_request;

        /// Authenticates and transmits a reply for an executed request.
        /// The hook owns transport (baseline: encrypt to the client's
        /// secure channel; Troxy: certify in the enclave, send to the
        /// contact replica) and must queue into the outbox.
        std::function<void(enclave::CostedCrypto&, net::Outbox&,
                           const Request&, Reply)>
            deliver_reply;
    };

    Replica(net::Fabric& fabric, sim::Node& node, Config config,
            std::uint32_t replica_id, ServicePtr service,
            std::shared_ptr<enclave::TrinX> trinx,
            const sim::CostProfile& profile, Hooks hooks);

    Replica(const Replica&) = delete;
    Replica& operator=(const Replica&) = delete;

    /// Entry point for Channel::Hybster payloads addressed to this node.
    void on_message(sim::NodeId from, ByteView payload);

    /// Local submission from a co-located component (the Troxy): orders
    /// the request if leader, otherwise forwards it to the leader.
    void submit(const Request& request);

    /// Handles an optimistic (non-ordered) read: executes against the
    /// current state and replies immediately. Used by the PBFT-like
    /// baseline read optimization.
    void execute_optimistic_read(const Request& request);

    void set_faults(const FaultProfile& faults) noexcept { faults_ = faults; }

    [[nodiscard]] ViewNumber view() const noexcept { return view_; }
    [[nodiscard]] bool is_leader() const noexcept {
        return config_.leader_of(view_) == id_;
    }
    [[nodiscard]] SequenceNumber last_executed() const noexcept {
        return last_executed_;
    }
    [[nodiscard]] SequenceNumber last_stable() const noexcept {
        return last_stable_;
    }
    [[nodiscard]] std::uint64_t view_changes() const noexcept {
        return view_changes_;
    }
    [[nodiscard]] const Config& config() const noexcept { return config_; }
    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] Service& service() noexcept { return *service_; }

  private:
    struct LogEntry {
        std::optional<Prepare> prepare;
        std::map<std::uint32_t, Commit> commits;
        bool executed = false;
    };

    // --- message handlers (all charge costs to the passed meter) ---
    void handle_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                        Request&& request);
    void handle_prepare(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                        Prepare&& prepare);
    void handle_commit(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                       Commit&& commit);
    void handle_checkpoint(enclave::CostedCrypto& crypto,
                           CheckpointMsg&& checkpoint);
    void handle_view_change(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, ViewChange&& view_change);
    void handle_new_view(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                         NewView&& new_view);

    // --- ordering ---
    void order_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                       const Request& request);
    void try_execute(enclave::CostedCrypto& crypto, net::Outbox& outbox);
    void execute_entry(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                       SequenceNumber seq, LogEntry& entry);
    [[nodiscard]] bool committed(const LogEntry& entry) const;
    void maybe_checkpoint(enclave::CostedCrypto& crypto, net::Outbox& outbox);

    // --- view change ---
    void start_view_change(ViewNumber new_view);
    void maybe_assemble_new_view(enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox, ViewNumber view);
    void reissue_forwarded(enclave::CostedCrypto& crypto,
                           net::Outbox& outbox);
    void arm_progress_timer();

    // --- plumbing ---
    void broadcast(net::Outbox& outbox, const Message& message);
    void send_to(net::Outbox& outbox, std::uint32_t replica,
                 const Message& message);
    [[nodiscard]] CounterValue expected_counter(SequenceNumber seq) const;
    [[nodiscard]] enclave::CounterId prepare_counter_id() const;
    [[nodiscard]] enclave::CounterId commit_counter_id() const;

    net::Fabric& fabric_;
    sim::Node& node_;
    Config config_;
    std::uint32_t id_;
    ServicePtr service_;
    std::shared_ptr<enclave::TrinX> trinx_;
    const sim::CostProfile& profile_;
    Hooks hooks_;
    FaultProfile faults_;

    ViewNumber view_ = 0;
    SequenceNumber view_start_ = 1;  // first sequence number of this view
    SequenceNumber next_seq_ = 1;    // leader: next to assign
    SequenceNumber last_executed_ = 0;
    SequenceNumber last_stable_ = 0;
    std::map<SequenceNumber, LogEntry> log_;

    // Duplicate suppression + retransmit support: last reply per client.
    struct ClientRecord {
        std::uint64_t last_number = 0;
        std::optional<Reply> last_reply;
        std::optional<Request> last_request;
    };
    std::map<sim::NodeId, ClientRecord> clients_;

    // Checkpoint collection: seq → digest → replicas vouching.
    std::map<SequenceNumber,
             std::map<Bytes, std::set<std::uint32_t>>>
        checkpoint_votes_;
    std::map<SequenceNumber, Bytes> own_checkpoints_;  // seq → snapshot

    // Requests forwarded to the leader but not yet executed locally; a
    // non-empty set keeps the progress timer armed so an unresponsive
    // leader is eventually suspected, and pending requests are re-ordered
    // or re-forwarded after a view change (they may have died with the
    // old leader).
    std::map<RequestId, Request> forwarded_;

    // View change state.
    std::map<ViewNumber, std::map<std::uint32_t, ViewChange>> view_changes_rx_;
    ViewNumber highest_view_change_sent_ = 0;
    bool in_view_change_ = false;
    std::uint64_t view_changes_ = 0;
    std::uint64_t timer_generation_ = 0;
    bool timer_armed_ = false;
};

}  // namespace troxy::hybster
