// Hybster replica: hybrid-fault-model BFT state machine replication.
//
// Leader-based ordering with trusted-counter certificates (TrinX):
//
//   REQUEST → the leader accumulates requests into a Batch (cut when it
//   reaches config.batch_size_max or after config.batch_delay, whichever
//   comes first), assigns the batch the next sequence number and
//   broadcasts ONE PREPARE certified with its per-view ordering counter;
//   every follower validates the counter continuity (value = seq -
//   view_start + 1), verifies each member request, certifies a COMMIT
//   with its own counter and broadcasts it. An entry is committed once
//   f+1 distinct replicas (the leader's PREPARE counts as its COMMIT)
//   vouch for the same batch digest — sufficient in the hybrid fault
//   model because certified messages cannot equivocate. Committed entries
//   execute in sequence order, member by member; each replica emits one
//   REPLY per member through the host's deliver_reply hook (which in a
//   Troxy deployment authenticates it inside the trusted subsystem and
//   keeps the fast-read cache coherent, §IV-A). Batching amortizes the
//   trusted-counter certification — the dominant ordered-path cost —
//   across the batch; batch_size_max = 1 reproduces the unbatched flow.
//
// Checkpoints every `checkpoint_interval` executed *requests* (batch
// members) garbage-collect the log; view changes replace an unresponsive
// leader using certified VIEW-CHANGE/NEW-VIEW messages carrying the
// prepared-batch history (an uncut pending batch is folded back into the
// forwarded set and re-proposed in the new view).
//
// The replica itself is *untrusted* code — it may be subjected to fault
// injection (crash, reply dropping/corruption) — while every certificate
// it emits goes through the trusted TrinX subsystem, so its misbehaviour
// is detectable exactly as in the paper's model.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "enclave/trinx.hpp"
#include "hybster/adaptive.hpp"
#include "hybster/config.hpp"
#include "hybster/messages.hpp"
#include "hybster/service.hpp"
#include "hybster/snapshot.hpp"
#include "net/envelope.hpp"
#include "net/outbox.hpp"
#include "sim/cost.hpp"

namespace troxy::hybster {

/// Injectable misbehaviour for experiments and tests. The replica is the
/// untrusted part of the machine; its trusted subsystem stays correct.
struct FaultProfile {
    bool crashed = false;          // drops everything (crash fault)
    bool drop_replies = false;     // executes but never sends replies
    bool corrupt_replies = false;  // flips bytes in the reply result
                                   // (after trusted authentication — the
                                   // voter must reject these)
    bool mute_agreement = false;   // sends no PREPARE/COMMIT (leader DoS)
};

class Replica {
  public:
    struct Hooks {
        /// Verifies an incoming request's client certificate.
        std::function<bool(enclave::CostedCrypto&, const Request&)>
            verify_request;

        /// Authenticates and transmits a reply for an executed request.
        /// The hook owns transport (baseline: encrypt to the client's
        /// secure channel; Troxy: certify in the enclave, send to the
        /// contact replica) and must queue into the outbox.
        std::function<void(enclave::CostedCrypto&, net::Outbox&,
                           const Request&, Reply)>
            deliver_reply;

        /// One executed batch member awaiting delivery. The request
        /// pointer stays valid for the duration of the hook call.
        struct ExecutedReply {
            const Request* request = nullptr;
            Reply reply;
        };
        /// Batched variant: when set, an executed batch's replies are
        /// delivered in ONE call (a Troxy host certifies them all in a
        /// single enclave transition). Retransmissions and optimistic
        /// reads still go through deliver_reply.
        std::function<void(enclave::CostedCrypto&, net::Outbox&,
                           std::vector<ExecutedReply>&&)>
            deliver_replies;
    };

    Replica(net::Fabric& fabric, sim::Node& node, Config config,
            std::uint32_t replica_id, ServicePtr service,
            std::shared_ptr<enclave::TrinX> trinx,
            const sim::CostProfile& profile, Hooks hooks);

    Replica(const Replica&) = delete;
    Replica& operator=(const Replica&) = delete;

    /// Entry point for Channel::Hybster payloads addressed to this node.
    void on_message(sim::NodeId from, ByteView payload);

    /// Local submission from a co-located component (the Troxy): orders
    /// the request if leader, otherwise forwards it to the leader.
    void submit(const Request& request);

    /// Batched local submission: handles several pending client requests
    /// in one metered step (one dispatch, one outbox flush), letting a
    /// batching leader cut them into a single Prepare.
    void submit_all(std::vector<Request> requests);

    /// Pre-formed batch submission: a burst that should enter the
    /// ordering pipeline as ONE batch (e.g. the Troxy's conflicted
    /// fast-read fallbacks). On the leader the whole burst is cut into a
    /// single Prepare (split only at batch_size_max); on a follower the
    /// burst is forwarded in one metered step and rides one coalesced
    /// wire record. All of handle_request's verification, retransmission
    /// and dedup logic still applies per member.
    void submit_prebatched(std::vector<Request> requests);

    /// Handles an optimistic (non-ordered) read: executes against the
    /// current state and replies immediately. Used by the PBFT-like
    /// baseline read optimization.
    void execute_optimistic_read(const Request& request);

    /// Crash-recovery entry point: resets every piece of volatile state in
    /// place (the object must outlive a restart because scheduled timers
    /// capture `this`), installs a fresh service instance and starts the
    /// rejoin protocol via begin_rejoin(). The trusted subsystem (TrinX
    /// counters) is *not* reset — trusted state survives a crash of the
    /// untrusted part by design.
    void restart(ServicePtr fresh_service);

    /// Starts checkpoint state transfer: broadcast a StateRequest and,
    /// until f+1 peers agree on a snapshot, process nothing but
    /// StateResponses. After restoring, the replica forces a view change —
    /// a fresh view restarts everyone's ordering counters from a common
    /// origin and makes the new leader repropose the log tail above the
    /// checkpoint, which is how the rejoiner catches up to the quorum.
    void begin_rejoin();

    void set_faults(const FaultProfile& faults) noexcept { faults_ = faults; }

    [[nodiscard]] ViewNumber view() const noexcept { return view_; }
    [[nodiscard]] bool is_leader() const noexcept {
        return config_.leader_of(view_) == id_;
    }
    [[nodiscard]] SequenceNumber last_executed() const noexcept {
        return last_executed_;
    }
    [[nodiscard]] SequenceNumber last_stable() const noexcept {
        return last_stable_;
    }
    [[nodiscard]] std::uint64_t view_changes() const noexcept {
        return view_changes_;
    }
    [[nodiscard]] bool rejoining() const noexcept { return rejoining_; }
    [[nodiscard]] std::uint64_t state_transfers() const noexcept {
        return state_transfers_;
    }
    [[nodiscard]] const Config& config() const noexcept { return config_; }
    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] Service& service() noexcept { return *service_; }
    /// Smoothed served-load estimate of the leader's batch controller
    /// (requests per batch-delay window, ×100). For benches/Status.
    [[nodiscard]] std::uint64_t batch_ewma_x100() const noexcept {
        return batch_controller_.ewma_x100();
    }

    /// Cumulative execution-stage accounting (conflict-aware lanes).
    struct ExecStats {
        /// Committed batches run through the lane scheduler (only
        /// counted with execution_lanes > 1; one lane keeps the serial
        /// per-member charge).
        std::uint64_t scheduled_batches = 0;
        /// Members of those batches (noops excluded).
        std::uint64_t scheduled_requests = 0;
        /// Members that queued behind an earlier same-class member.
        std::uint64_t conflict_stalls = 0;
        /// Sum over batches of lanes carrying work (avg = /batches).
        std::uint64_t lanes_used_sum = 0;
        /// What the scheduled batches would have cost serially.
        sim::Duration serial_cost{0};
        /// Makespan actually charged for them.
        sim::Duration charged_cost{0};
        /// Leader: batches cut into Prepares (any lane count).
        std::uint64_t batches_cut = 0;
        /// Pre-formed bursts accepted via submit_prebatched().
        std::uint64_t prebatched_submits = 0;
    };
    [[nodiscard]] const ExecStats& exec_stats() const noexcept {
        return exec_stats_;
    }

    /// Cumulative Merkle-incremental state-transfer accounting, both
    /// sides: as responder (sent/skipped/full) and as requester
    /// (received/reused/resumed).
    struct StateTransferStats {
        /// Responder: chunk payload bytes actually shipped.
        std::uint64_t bytes_sent = 0;
        /// Responder: what the served snapshots would have cost shipped
        /// whole (the monolithic-transfer baseline).
        std::uint64_t bytes_full = 0;
        std::uint64_t chunks_sent = 0;
        /// Responder: chunks withheld because the requester advertised
        /// their hashes.
        std::uint64_t chunks_skipped = 0;
        /// Requester: chunks received and verified against a manifest.
        std::uint64_t chunks_received = 0;
        /// Requester: manifest entries satisfied from the local durable
        /// chunk store instead of the wire.
        std::uint64_t chunks_reused = 0;
        /// Requester: transfers that continued past a retry with partial
        /// progress instead of restarting from byte zero.
        std::uint64_t transfers_resumed = 0;
    };
    [[nodiscard]] const StateTransferStats& state_stats() const noexcept {
        return state_stats_;
    }

    /// Wipes the durable chunk store — models losing the on-disk snapshot
    /// area in addition to the crash. Test/bench hook for measuring the
    /// full-transfer baseline.
    void clear_chunk_store() { chunk_store_.clear(); }

  private:
    struct LogEntry {
        std::optional<Prepare> prepare;
        std::map<std::uint32_t, Commit> commits;
        bool executed = false;
    };

    // --- message handlers (all charge costs to the passed meter) ---
    void handle_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                        Request&& request);
    void handle_prepare(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                        Prepare&& prepare);
    void handle_commit(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                       Commit&& commit);
    void handle_checkpoint(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                           CheckpointMsg&& checkpoint);
    void handle_view_change(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, ViewChange&& view_change);
    void handle_new_view(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                         NewView&& new_view);

    // --- state transfer (crash-recovery rejoin + lag catch-up) ---
    void handle_state_request(enclave::CostedCrypto& crypto,
                              net::Outbox& outbox, StateRequest&& request);
    void handle_state_response(enclave::CostedCrypto& crypto,
                               net::Outbox& outbox, StateResponse&& response);
    /// Ships one window of the chunk stream as a zero-copy FragmentChain
    /// (inline index/length prefixes over shared chunk buffers);
    /// materializes byte-identically to the flat StateResponse frame.
    void send_state_window(net::Outbox& outbox, const StateResponse& base,
                           const ChunkedSnapshot& chunked,
                           const std::vector<std::uint32_t>& to_send,
                           std::size_t start, std::size_t end,
                           std::uint32_t requester);
    void request_state_transfer(enclave::CostedCrypto& crypto,
                                net::Outbox& outbox);
    void begin_state_transfer(enclave::CostedCrypto& crypto,
                              net::Outbox& outbox);
    void adopt_state(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                     ViewNumber view, SequenceNumber view_start,
                     SequenceNumber last_stable, Bytes snapshot,
                     ChunkedSnapshot chunked,
                     std::vector<CheckpointMsg> proof);
    /// Assembles the snapshot from the completed transfer's chunk set and
    /// adopts it.
    void complete_transfer(enclave::CostedCrypto& crypto,
                           net::Outbox& outbox);
    /// Replaces the durable chunk store's contents with the chunks of the
    /// now-stable checkpoint.
    void rebuild_chunk_store(const ChunkedSnapshot& chunked);
    void arm_state_transfer_timer();

    // --- ordering (leader batching) ---
    void enqueue_for_batch(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                           const Request& request);
    void cut_batch(enclave::CostedCrypto& crypto, net::Outbox& outbox);
    void arm_batch_timer();
    void stash_pending_batch();
    [[nodiscard]] bool request_in_flight(const RequestId& id) const;
    void rebuild_in_flight();
    void try_execute(enclave::CostedCrypto& crypto, net::Outbox& outbox);
    void execute_entry(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                       SequenceNumber seq, LogEntry& entry);
    [[nodiscard]] bool committed(const LogEntry& entry) const;
    void maybe_checkpoint(enclave::CostedCrypto& crypto, net::Outbox& outbox);

    // --- view change ---
    void start_view_change(ViewNumber new_view);
    void maybe_assemble_new_view(enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox, ViewNumber view);
    void reissue_forwarded(enclave::CostedCrypto& crypto,
                           net::Outbox& outbox);
    void arm_progress_timer();

    // --- plumbing ---
    /// Builds the per-handler send buffer; coalesces destination bursts
    /// into Bundle frames when the config enables wire coalescing.
    [[nodiscard]] net::Outbox make_outbox() {
        return net::Outbox(fabric_, node_, config_.coalesce_wire,
                           /*record_cost=*/0, config_.wire_zero_copy,
                           &config_.transport);
    }
    void broadcast(net::Outbox& outbox, const Message& message);
    void send_to(net::Outbox& outbox, std::uint32_t replica,
                 const Message& message);
    [[nodiscard]] CounterValue expected_counter(SequenceNumber seq) const;
    [[nodiscard]] enclave::CounterId prepare_counter_id() const;
    [[nodiscard]] enclave::CounterId commit_counter_id() const;

    net::Fabric& fabric_;
    sim::Node& node_;
    Config config_;
    std::uint32_t id_;
    ServicePtr service_;
    std::shared_ptr<enclave::TrinX> trinx_;
    const sim::CostProfile& profile_;
    Hooks hooks_;
    FaultProfile faults_;

    ViewNumber view_ = 0;
    SequenceNumber view_start_ = 1;  // first sequence number of this view
    SequenceNumber next_seq_ = 1;    // leader: next to assign
    SequenceNumber last_executed_ = 0;
    SequenceNumber last_stable_ = 0;
    std::map<SequenceNumber, LogEntry> log_;

    // Leader batching: verified requests waiting for the current batch to
    // be cut. Non-empty only on the leader between an enqueue and the
    // size/delay-triggered cut; drained back into forwarded_ when a view
    // change interrupts an uncut batch.
    std::vector<Request> pending_batch_;
    std::uint64_t batch_timer_generation_ = 0;
    bool batch_timer_armed_ = false;
    /// Load tracker for config_.adaptive_batching: shrinks the effective
    /// cut boundary under light load (idle = single-request latency).
    AdaptiveBatchController batch_controller_;

    // Index over pending_batch_ plus the members of every unexecuted
    // prepared log entry: the duplicate-suppression check on the leader's
    // submission hot path must not scan the log (O(log span × batch size)
    // per request at large batches). Updated at enqueue, prepare install
    // and execute; rebuilt wholesale on the rare paths that replace the
    // log (view change, state transfer, restart).
    std::unordered_set<RequestId, RequestIdHash> in_flight_;

    // True while submit_prebatched() feeds a pre-formed burst through
    // handle_request: enqueue_for_batch accumulates without cutting (up
    // to batch_size_max) or arming the delay timer; the remainder is cut
    // as one batch when the burst ends.
    bool prebatching_ = false;

    ExecStats exec_stats_;

    // Requests executed since the last checkpoint cut. The checkpoint
    // interval counts requests (batch members), not sequence numbers, so
    // batching does not stretch the log span between checkpoints; all
    // replicas execute identical batches in identical order, hence they
    // trigger checkpoints at identical sequence numbers.
    std::uint64_t executed_since_checkpoint_ = 0;

    // Duplicate suppression + retransmit support: last reply per client.
    struct ClientRecord {
        std::uint64_t last_number = 0;
        std::optional<Reply> last_reply;
        std::optional<Request> last_request;
    };
    std::map<sim::NodeId, ClientRecord> clients_;

    // Checkpoint collection: seq → digest → certified vote per replica.
    // Full messages are kept (not just ids) so the f+1 votes behind the
    // stable checkpoint can be handed out as a state-transfer proof.
    std::map<SequenceNumber,
             std::map<Bytes, std::map<std::uint32_t, CheckpointMsg>>>
        checkpoint_votes_;
    std::map<SequenceNumber, Bytes> own_checkpoints_;  // seq → snapshot
    /// Chunked form of own_checkpoints_ (same keys, pruned together):
    /// what handle_state_request serves from.
    std::map<SequenceNumber, ChunkedSnapshot> own_chunks_;
    /// The f+1 certified votes that made last_stable_ stable; attached to
    /// StateResponses so one response suffices to prove the snapshot.
    std::vector<CheckpointMsg> stable_proof_;

    /// Durable chunk store (leaf hash → chunk bytes): models the
    /// *untrusted* on-disk snapshot area, so restart() deliberately keeps
    /// it. It needs no trust — every chunk a transfer consumes is
    /// re-verified against the certified Merkle root, so a corrupted or
    /// rolled-back disk can only cause a re-fetch, never a wrong state.
    /// Rebuilt from the newest stable checkpoint's chunks; extended by
    /// in-progress transfers (which is what makes them resumable).
    /// Values are shared with own_chunks_ and in-flight wire frames, so
    /// banking or rebuilding never copies chunk payloads.
    std::map<Bytes, std::shared_ptr<const Bytes>> chunk_store_;

    // Requests forwarded to the leader but not yet executed locally; a
    // non-empty set keeps the progress timer armed so an unresponsive
    // leader is eventually suspected, and pending requests are re-ordered
    // or re-forwarded after a view change (they may have died with the
    // old leader).
    std::map<RequestId, Request> forwarded_;

    // View change state.
    std::map<ViewNumber, std::map<std::uint32_t, ViewChange>> view_changes_rx_;
    ViewNumber highest_view_change_sent_ = 0;
    bool in_view_change_ = false;
    std::uint64_t view_changes_ = 0;
    std::uint64_t timer_generation_ = 0;
    bool timer_armed_ = false;

    // State transfer. `rejoining_` gates everything but StateResponses
    // (post-restart the replica has no state to safely act on);
    // `awaiting_state_` alone marks a *live* replica that fell behind a
    // stable checkpoint and keeps participating while it waits.
    // A response carrying a checkpoint proof is adopted on its own;
    // proofless responses (last_stable == 0) are collected per coordinate
    // tuple (view, view_start, last_stable, snapshot digest) until f+1
    // responders match.
    bool rejoining_ = false;
    bool awaiting_state_ = false;
    std::uint64_t state_transfers_ = 0;
    std::uint64_t state_timer_generation_ = 0;
    std::map<std::tuple<ViewNumber, SequenceNumber, SequenceNumber, Bytes>,
             std::pair<std::set<std::uint32_t>, StateResponse>>
        state_responses_;

    /// A proven chunked transfer in progress. Survives retries (the
    /// resume path: a retried StateRequest advertises everything already
    /// received) and is only replaced by a transfer for a *newer* stable
    /// checkpoint; cleared on adoption and restart.
    struct TransferProgress {
        SequenceNumber seq = 0;
        crypto::Sha256Digest root{};
        std::vector<crypto::Sha256Digest> manifest;
        std::vector<CheckpointMsg> proof;
        ViewNumber view = 0;
        SequenceNumber view_start = 0;
        std::set<std::uint32_t> missing;  // manifest indices still needed
        std::uint64_t received = 0;
        bool resume_counted = false;
    };
    std::optional<TransferProgress> transfer_;
    StateTransferStats state_stats_;
};

}  // namespace troxy::hybster
