#include "hybster/replica.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "hybster/exec_schedule.hpp"

namespace troxy::hybster {

namespace {
constexpr std::uint8_t kFlagNoop = Request::kFlagNoop;

bool digests_equal(const crypto::Sha256Digest& a,
                   const crypto::Sha256Digest& b) noexcept {
    return constant_time_equal(a, b);
}

/// Map key for the durable chunk store (leaf hash as bytes).
Bytes store_key(const crypto::Sha256Digest& d) {
    return Bytes(d.begin(), d.end());
}

/// Bound on the have-chunks list a StateRequest advertises: enough for
/// snapshots far beyond anything the sim runs, while keeping a
/// pathological store from inflating the request past the wire cap.
constexpr std::size_t kMaxAdvertisedChunks = 8192;
}  // namespace

Replica::Replica(net::Fabric& fabric, sim::Node& node, Config config,
                 std::uint32_t replica_id, ServicePtr service,
                 std::shared_ptr<enclave::TrinX> trinx,
                 const sim::CostProfile& profile, Hooks hooks)
    : fabric_(fabric),
      node_(node),
      config_(std::move(config)),
      id_(replica_id),
      service_(std::move(service)),
      trinx_(std::move(trinx)),
      profile_(profile),
      hooks_(std::move(hooks)) {
    config_.validate();
    TROXY_ASSERT(service_ != nullptr, "replica needs a service");
    TROXY_ASSERT(trinx_ != nullptr, "replica needs a trusted subsystem");
}

enclave::CounterId Replica::prepare_counter_id() const {
    return static_cast<enclave::CounterId>(2 * view_);
}

enclave::CounterId Replica::commit_counter_id() const {
    return static_cast<enclave::CounterId>(2 * view_ + 1);
}

CounterValue Replica::expected_counter(SequenceNumber seq) const {
    return seq - view_start_ + 1;
}

void Replica::broadcast(net::Outbox& outbox, const Message& message) {
    // Each destination gets its own frame (the Outbox consumes buffers),
    // so every copy is drawn from the network's recycled wire buffers.
    sim::BufferPool& pool = outbox.fabric().network().pool();
    const Bytes encoded = encode_message(message);
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(config_.n());
         ++r) {
        if (r == id_) continue;
        outbox.send(config_.node_of(r),
                    net::wrap_pooled(pool, net::Channel::Hybster, encoded));
    }
}

void Replica::send_to(net::Outbox& outbox, std::uint32_t replica,
                      const Message& message) {
    sim::BufferPool& pool = outbox.fabric().network().pool();
    outbox.send(config_.node_of(replica),
                net::wrap_pooled(pool, net::Channel::Hybster,
                                 encode_message(message)));
}

void Replica::on_message(sim::NodeId from, ByteView payload) {
    if (faults_.crashed) return;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();
    crypto.charge_dispatch();

    auto decoded = decode_message(payload);
    if (!decoded) {
        outbox.flush(meter);  // charge the wasted parse work
        return;
    }

    // A rejoining replica has no state it can safely act on: until the
    // snapshot is installed, only state-transfer traffic is processed.
    if (rejoining_) {
        if (auto* response = std::get_if<StateResponse>(&*decoded)) {
            handle_state_response(crypto, outbox, std::move(*response));
        }
        outbox.flush(meter);
        return;
    }

    std::visit(
        [&](auto&& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, Request>) {
                handle_request(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, Prepare>) {
                handle_prepare(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, Commit>) {
                handle_commit(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, CheckpointMsg>) {
                handle_checkpoint(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, ViewChange>) {
                handle_view_change(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, NewView>) {
                handle_new_view(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, StateRequest>) {
                handle_state_request(crypto, outbox, std::move(msg));
            } else if constexpr (std::is_same_v<T, StateResponse>) {
                handle_state_response(crypto, outbox, std::move(msg));
            }
            // Reply messages are never addressed to a replica.
        },
        std::move(*decoded));
    (void)from;

    outbox.flush(meter);
}

void Replica::submit(const Request& request) {
    if (faults_.crashed || rejoining_) return;
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();
    handle_request(crypto, outbox, Request(request));
    outbox.flush(meter);
}

void Replica::submit_all(std::vector<Request> requests) {
    if (faults_.crashed || rejoining_ || requests.empty()) return;
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();
    for (Request& request : requests) {
        handle_request(crypto, outbox, std::move(request));
    }
    outbox.flush(meter);
}

void Replica::submit_prebatched(std::vector<Request> requests) {
    if (faults_.crashed || rejoining_ || requests.empty()) return;
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();
    ++exec_stats_.prebatched_submits;
    prebatching_ = true;
    for (Request& request : requests) {
        handle_request(crypto, outbox, std::move(request));
    }
    prebatching_ = false;
    // Cut whatever the burst accumulated as one batch, regardless of the
    // adaptive boundary or the delay timer: the burst already waited
    // once (for its cache responses) and arrives pre-formed.
    if (is_leader() && !in_view_change_ && !pending_batch_.empty()) {
        cut_batch(crypto, outbox);
    }
    outbox.flush(meter);
}

void Replica::execute_optimistic_read(const Request& request) {
    if (faults_.crashed || rejoining_) return;
    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();

    if (!hooks_.verify_request ||
        !hooks_.verify_request(crypto, request)) {
        outbox.flush(meter);
        return;
    }

    // Execute against the *current* state without ordering; the client
    // accepts the result only if f+1 replicas agree (PBFT-like read
    // optimization), retrying as an ordered request on conflict.
    //
    // The execution is deferred to the read's processing-completion time:
    // the read samples whatever state the replica has reached by then.
    // Replicas under different load sample at different points, which is
    // precisely what makes optimistic reads conflict with concurrent
    // writes (§VI-C3).
    outbox.defer([this, request]() {
        enclave::CostMeter exec_meter;
        enclave::CostedCrypto exec_crypto(profile_, exec_meter);
        net::Outbox exec_outbox = make_outbox();

        exec_meter.add(service_->execution_cost(request.payload));
        Bytes result = service_->execute(request.payload);

        Reply reply;
        reply.kind = Reply::Kind::Optimistic;
        reply.view = view_;
        reply.seq = last_executed_;
        reply.request_id = request.id;
        reply.request_digest = request.digest_with(exec_crypto);
        reply.result = std::move(result);
        reply.replica = id_;

        if (!faults_.drop_replies && hooks_.deliver_reply) {
            hooks_.deliver_reply(exec_crypto, exec_outbox, request,
                                 std::move(reply));
        }
        exec_outbox.flush(exec_meter);
    });
    outbox.flush(meter);
}

void Replica::handle_request(enclave::CostedCrypto& crypto,
                             net::Outbox& outbox, Request&& request) {
    if (request.is_optimistic()) {
        execute_optimistic_read(request);
        return;
    }

    if (!hooks_.verify_request ||
        !hooks_.verify_request(crypto, request)) {
        return;  // unauthenticated request: discard
    }

    // Retransmission of an executed request: resend the stored reply.
    auto& record = clients_[request.id.client];
    if (record.last_reply && record.last_reply->request_id == request.id) {
        if (!faults_.drop_replies && hooks_.deliver_reply) {
            hooks_.deliver_reply(crypto, outbox, *record.last_request,
                                 Reply(*record.last_reply));
        }
        return;
    }

    if (!is_leader()) {
        // Follower: forward to the leader (Fig. 5c) and watch progress.
        forwarded_.emplace(request.id, request);
        send_to(outbox, config_.leader_of(view_), Message(request));
        arm_progress_timer();
        return;
    }

    if (in_view_change_) return;  // ordering paused

    enqueue_for_batch(crypto, outbox, request);
}

bool Replica::request_in_flight(const RequestId& id) const {
    return in_flight_.contains(id);
}

void Replica::rebuild_in_flight() {
    in_flight_.clear();
    for (const Request& pending : pending_batch_) {
        in_flight_.insert(pending.id);
    }
    for (const auto& [seq, entry] : log_) {
        if (!entry.prepare || entry.executed) continue;
        for (const Request& member : entry.prepare->batch.requests) {
            in_flight_.insert(member.id);
        }
    }
}

void Replica::enqueue_for_batch(enclave::CostedCrypto& crypto,
                                net::Outbox& outbox, const Request& request) {
    // Suppress re-ordering of a request already in flight (pending batch
    // or unexecuted log entry).
    if (request_in_flight(request.id)) return;

    pending_batch_.push_back(request);
    in_flight_.insert(request.id);
    if (prebatching_) {
        // A pre-formed burst accumulates into one batch; only the wire
        // maximum forces a split. submit_prebatched cuts the remainder.
        if (pending_batch_.size() >= config_.batch_size_max) {
            cut_batch(crypto, outbox);
        }
        return;
    }
    // The adaptive controller tracks served load (requests per delay
    // window, fed at cut time) and shrinks the cut boundary under light
    // load: an idle system cuts immediately (single-request latency), a
    // saturated one opens up to the configured maximum.
    std::size_t boundary = config_.batch_size_max;
    if (config_.adaptive_batching) {
        boundary = batch_controller_.effective(config_.batch_size_max);
    }
    if (pending_batch_.size() >= boundary || config_.batch_delay == 0) {
        cut_batch(crypto, outbox);
    } else {
        arm_batch_timer();
        // A pending batch is pending work: keep the progress timer armed
        // so a leader that loses its batch timer is still suspected.
        arm_progress_timer();
    }
}

void Replica::cut_batch(enclave::CostedCrypto& crypto, net::Outbox& outbox) {
    if (pending_batch_.empty()) return;
    ++batch_timer_generation_;  // cancel any armed delay timer
    batch_timer_armed_ = false;
    ++exec_stats_.batches_cut;

    Prepare prepare;
    prepare.view = view_;
    prepare.seq = next_seq_++;
    prepare.replica = id_;
    prepare.batch.requests = std::move(pending_batch_);
    pending_batch_.clear();
    if (config_.adaptive_batching) {
        batch_controller_.record_served(prepare.batch.requests.size(),
                                        fabric_.simulator().now(),
                                        config_.batch_delay);
    }
    // Member digests and the batch digest are computed (and charged) once
    // here; followers and the execution path reuse the cached values.
    (void)prepare.batch.digest_with(crypto);

    const auto certified = trinx_->certify_continuing(
        crypto, prepare_counter_id(), prepare.certified_view());
    prepare.counter_value = certified.value;
    prepare.cert = certified.certificate;
    TROXY_ASSERT(prepare.counter_value == expected_counter(prepare.seq),
                 "leader counter out of sync with sequence numbers");

    auto& entry = log_[prepare.seq];
    entry.prepare = std::move(prepare);

    if (!faults_.mute_agreement) {
        broadcast(outbox, Message(*entry.prepare));
    }
    arm_progress_timer();
    try_execute(crypto, outbox);
}

void Replica::arm_batch_timer() {
    if (batch_timer_armed_ || faults_.crashed || rejoining_) return;
    batch_timer_armed_ = true;
    const std::uint64_t generation = ++batch_timer_generation_;

    fabric_.simulator().after(config_.batch_delay, [this, generation]() {
        if (generation != batch_timer_generation_) return;
        batch_timer_armed_ = false;
        if (faults_.crashed || rejoining_ || in_view_change_) return;
        if (!is_leader()) return;  // lost leadership while the batch waited

        enclave::CostMeter meter;
        enclave::CostedCrypto crypto(profile_, meter);
        net::Outbox outbox = make_outbox();
        cut_batch(crypto, outbox);
        outbox.flush(meter);
    });
}

void Replica::stash_pending_batch() {
    ++batch_timer_generation_;  // cancel any armed delay timer
    batch_timer_armed_ = false;
    // Fold the uncut batch back into the forwarded set: after the view
    // change these requests are re-proposed by the new leader (us or a
    // peer) via reissue_forwarded(), exactly like requests that died with
    // the old leader.
    for (Request& request : pending_batch_) {
        in_flight_.erase(request.id);
        forwarded_.emplace(request.id, std::move(request));
    }
    pending_batch_.clear();
}

void Replica::handle_prepare(enclave::CostedCrypto& crypto,
                             net::Outbox& outbox, Prepare&& prepare) {
    if (prepare.view != view_ || in_view_change_) return;
    if (prepare.replica != config_.leader_of(view_)) return;
    if (prepare.seq <= last_stable_) return;  // garbage-collected slot
    if (prepare.counter_value != expected_counter(prepare.seq)) return;

    if (prepare.batch.empty()) return;  // a batch orders at least one request

    // Member digests are computed and charged once here; the certificate
    // check, the COMMIT below and the execution path all reuse the
    // memoized values.
    const crypto::Sha256Digest batch_digest =
        prepare.batch.digest_with(crypto);
    if (!trinx_->verify_continuing(crypto, prepare.replica,
                                   prepare_counter_id(),
                                   prepare.counter_value,
                                   prepare.certified_view(), prepare.cert)) {
        return;
    }
    // Validate every embedded client request as well: a Byzantine leader
    // must not be able to inject unauthenticated requests into a batch.
    for (const Request& member : prepare.batch.requests) {
        if (member.flags & kFlagNoop) continue;
        if (!hooks_.verify_request ||
            !hooks_.verify_request(crypto, member)) {
            return;
        }
    }

    auto& entry = log_[prepare.seq];
    if (entry.prepare) return;  // duplicate

    // Certify and broadcast our COMMIT over the batch structure
    // (member count + digest, same pair the PREPARE certified).
    Commit commit;
    commit.view = view_;
    commit.seq = prepare.seq;
    commit.replica = id_;
    commit.batch_size = static_cast<std::uint32_t>(prepare.batch.size());
    commit.batch_digest = batch_digest;
    entry.prepare = std::move(prepare);
    for (const Request& member : entry.prepare->batch.requests) {
        in_flight_.insert(member.id);
    }
    const auto certified = trinx_->certify_continuing(
        crypto, commit_counter_id(), commit.certified_view());
    commit.counter_value = certified.value;
    commit.cert = certified.certificate;

    entry.commits[id_] = commit;
    if (!faults_.mute_agreement) {
        broadcast(outbox, Message(commit));
    }
    arm_progress_timer();
    try_execute(crypto, outbox);
}

void Replica::handle_commit(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, Commit&& commit) {
    if (commit.view != view_ || in_view_change_) return;
    if (commit.seq <= last_stable_) return;
    if (commit.replica >= static_cast<std::uint32_t>(config_.n())) return;
    if (commit.counter_value != expected_counter(commit.seq)) return;
    if (commit.batch_size == 0) return;  // a batch has at least one member

    if (!trinx_->verify_continuing(crypto, commit.replica,
                                   commit_counter_id(), commit.counter_value,
                                   commit.certified_view(), commit.cert)) {
        return;
    }

    auto& entry = log_[commit.seq];
    entry.commits.emplace(commit.replica, std::move(commit));
    try_execute(crypto, outbox);
}

bool Replica::committed(const LogEntry& entry) const {
    if (!entry.prepare) return false;
    // Memoized: warm whenever the prepare was installed by cut_batch() or
    // handle_prepare(), so this costs nothing on the hot path.
    const crypto::Sha256Digest& digest = entry.prepare->batch.digest();
    const auto batch_size =
        static_cast<std::uint32_t>(entry.prepare->batch.size());
    // Vouchers: the leader via its PREPARE plus every replica with a
    // matching certified COMMIT (our own included once we created it).
    // A match requires the full certified batch structure — member count
    // AND digest — mirroring what the trusted counter certified.
    int vouchers = 1;
    for (const auto& [replica, commit] : entry.commits) {
        if (replica == entry.prepare->replica) continue;
        if (commit.batch_size == batch_size &&
            digests_equal(commit.batch_digest, digest)) {
            ++vouchers;
        }
    }
    return vouchers >= config_.quorum();
}

void Replica::try_execute(enclave::CostedCrypto& crypto,
                          net::Outbox& outbox) {
    for (;;) {
        const SequenceNumber next = last_executed_ + 1;
        const auto it = log_.find(next);
        if (it == log_.end() || it->second.executed ||
            !committed(it->second)) {
            break;
        }
        execute_entry(crypto, outbox, next, it->second);
    }
}

void Replica::execute_entry(enclave::CostedCrypto& crypto,
                            net::Outbox& outbox, SequenceNumber seq,
                            LogEntry& entry) {
    entry.executed = true;
    last_executed_ = seq;

    // Execute the batch member by member, in batch order; every member
    // gets its own REPLY (all carrying the batch's sequence number).
    // With the batched hook the replies accumulate and are delivered in
    // one call after the loop — a Troxy host certifies the whole executed
    // batch in a single enclave transition.
    //
    // Conflict-aware lanes: with execution_lanes > 1 the batch's CPU
    // time is the makespan of the greedy conflict-class schedule,
    // charged once up front instead of member by member. The execute()
    // calls below still run in strict batch order at every lane count —
    // the plan is a pure function of the batch contents, and lanes only
    // change *time*, never results — so replies and checkpoints stay
    // byte-identical across lane counts. One lane keeps the per-member
    // charge: the exact serial seed flow.
    const bool lane_scheduled = config_.execution_lanes > 1;
    if (lane_scheduled) {
        const ExecPlan plan = plan_execution(entry.prepare->batch,
                                             *service_,
                                             config_.execution_lanes);
        crypto.charge(plan.makespan);
        ++exec_stats_.scheduled_batches;
        exec_stats_.scheduled_requests +=
            plan.conflict_classes + plan.conflict_stalls;
        exec_stats_.conflict_stalls += plan.conflict_stalls;
        exec_stats_.lanes_used_sum += plan.lanes_used;
        exec_stats_.serial_cost += plan.serial;
        exec_stats_.charged_cost += plan.makespan;
    }
    std::vector<Hooks::ExecutedReply> executed;
    for (const Request& request : entry.prepare->batch.requests) {
        forwarded_.erase(request.id);
        in_flight_.erase(request.id);
        ++executed_since_checkpoint_;
        if (request.flags & kFlagNoop) continue;

        if (!lane_scheduled) {
            crypto.charge(service_->execution_cost(request.payload));
        }
        Bytes result = service_->execute(request.payload);

        Reply reply;
        reply.kind = Reply::Kind::Ordered;
        reply.view = view_;
        reply.seq = seq;
        reply.request_id = request.id;
        reply.request_digest = request.digest_with(crypto);
        reply.result = std::move(result);
        reply.replica = id_;

        auto& record = clients_[request.id.client];
        record.last_number = request.id.number;
        record.last_request = request;
        record.last_reply = reply;

        if (!faults_.drop_replies &&
            (hooks_.deliver_replies || hooks_.deliver_reply)) {
            if (faults_.corrupt_replies && !reply.result.empty()) {
                // Corruption happens in the untrusted part *after* the
                // trusted subsystem authenticated the reply — the hook
                // certifies first, so we corrupt inside a copy delivered
                // through a corrupting wrapper. Here we flip a byte before
                // certification to model a replica lying about the result;
                // the voter masks it because f+1 matching replies are
                // still required.
                reply.result[0] ^= 0xff;
            }
            if (hooks_.deliver_replies) {
                executed.push_back(
                    Hooks::ExecutedReply{&request, std::move(reply)});
            } else {
                hooks_.deliver_reply(crypto, outbox, request,
                                     std::move(reply));
            }
        }
    }
    if (!executed.empty()) {
        hooks_.deliver_replies(crypto, outbox, std::move(executed));
    }

    maybe_checkpoint(crypto, outbox);
    arm_progress_timer();
}

void Replica::maybe_checkpoint(enclave::CostedCrypto& crypto,
                               net::Outbox& outbox) {
    // The interval counts executed requests (batch members), so a batch
    // never delays nor splits a checkpoint: when the threshold is crossed
    // mid-batch the checkpoint lands at the batch's sequence number, after
    // the whole batch executed. All replicas execute identical batches in
    // identical order, so they checkpoint at identical sequence numbers.
    if (executed_since_checkpoint_ < config_.checkpoint_interval) return;
    executed_since_checkpoint_ = 0;
    const SequenceNumber seq = last_executed_;
    Bytes snapshot = service_->checkpoint();
    // The certified digest IS the Merkle root over the snapshot's chunks,
    // which is what lets state transfer ship the checkpoint incrementally
    // under the same certificate chain.
    ChunkedSnapshot chunked =
        chunk_snapshot(crypto, snapshot, config_.state_chunk_size);
    CheckpointMsg cp;
    cp.seq = seq;
    cp.state_digest = chunked.root;
    cp.replica = id_;
    cp.cert = trinx_->certify_independent(crypto, cp.certified_view());

    own_checkpoints_[seq] = std::move(snapshot);
    own_chunks_[seq] = std::move(chunked);

    const Bytes digest_key(cp.state_digest.begin(), cp.state_digest.end());
    auto& votes = checkpoint_votes_[seq][digest_key];
    votes.emplace(id_, cp);

    broadcast(outbox, Message(cp));

    // f+1 votes might already be present (we could be last to checkpoint).
    if (static_cast<int>(votes.size()) >= config_.quorum()) {
        if (seq > last_stable_) {
            last_stable_ = seq;
            stable_proof_.clear();
            for (const auto& [replica, vote] : votes) {
                stable_proof_.push_back(vote);
            }
            log_.erase(log_.begin(), log_.upper_bound(seq));
            checkpoint_votes_.erase(checkpoint_votes_.begin(),
                                    checkpoint_votes_.upper_bound(seq - 1));
            // Keep only the newest own snapshot.
            while (own_checkpoints_.size() > 1) {
                own_checkpoints_.erase(own_checkpoints_.begin());
            }
            while (own_chunks_.size() > 1) {
                own_chunks_.erase(own_chunks_.begin());
            }
            rebuild_chunk_store(own_chunks_.at(seq));
        }
    }
}

void Replica::handle_checkpoint(enclave::CostedCrypto& crypto,
                                net::Outbox& outbox,
                                CheckpointMsg&& checkpoint) {
    if (checkpoint.seq <= last_stable_) return;
    if (checkpoint.replica >= static_cast<std::uint32_t>(config_.n())) {
        return;
    }
    if (!trinx_->verify_independent(crypto, checkpoint.replica,
                                    checkpoint.certified_view(),
                                    checkpoint.cert)) {
        return;
    }

    const SequenceNumber seq = checkpoint.seq;
    const Bytes digest_key(checkpoint.state_digest.begin(),
                           checkpoint.state_digest.end());
    auto& votes = checkpoint_votes_[seq][digest_key];
    votes.emplace(checkpoint.replica, std::move(checkpoint));

    // Stability requires f+1 matching checkpoints *including our own*
    // (we can only truncate state we have actually reached).
    if (static_cast<int>(votes.size()) >= config_.quorum() &&
        votes.contains(id_) && seq > last_stable_) {
        last_stable_ = seq;
        stable_proof_.clear();
        for (const auto& [replica, vote] : votes) {
            stable_proof_.push_back(vote);
        }
        log_.erase(log_.begin(), log_.upper_bound(seq));
        checkpoint_votes_.erase(checkpoint_votes_.begin(),
                                checkpoint_votes_.upper_bound(seq - 1));
        if (const auto it = own_chunks_.find(seq); it != own_chunks_.end()) {
            rebuild_chunk_store(it->second);
        }
        return;
    }

    // Lag detection: f+1 *others* vouch for a checkpoint beyond what we
    // have executed. The quorum has garbage-collected that prefix, so we
    // can no longer catch up through ordinary commits — fetch a snapshot.
    if (static_cast<int>(votes.size()) >= config_.quorum() &&
        !votes.contains(id_) && seq > last_executed_) {
        begin_state_transfer(crypto, outbox);
    }
}

void Replica::arm_progress_timer() {
    // Pending work exists if the log holds unexecuted entries, a client
    // request was forwarded, or a view change is in flight; one timer at a
    // time is enough.
    if (timer_armed_ || faults_.crashed || rejoining_) return;
    timer_armed_ = true;
    const SequenceNumber executed_at_arm = last_executed_;
    const ViewNumber view_at_arm = view_;
    const std::uint64_t generation = ++timer_generation_;

    fabric_.simulator().after(config_.view_change_timeout, [this,
                                                            executed_at_arm,
                                                            view_at_arm,
                                                            generation]() {
        if (generation != timer_generation_) return;
        timer_armed_ = false;
        if (faults_.crashed || rejoining_) return;
        if (view_ != view_at_arm) return;

        const bool pending =
            in_view_change_ || !forwarded_.empty() ||
            !pending_batch_.empty() ||
            std::any_of(log_.begin(), log_.end(), [](const auto& kv) {
                return !kv.second.executed;
            });
        if (!pending) return;

        if (last_executed_ == executed_at_arm) {
            // No progress for a full timeout: suspect the leader. If a
            // view change is already pending, the view change itself has
            // stalled (the prospective leader may have crashed as well) —
            // escalate past the highest view we already proposed.
            start_view_change(
                std::max(view_, highest_view_change_sent_) + 1);
        } else {
            arm_progress_timer();
        }
    });
}

void Replica::start_view_change(ViewNumber new_view) {
    if (new_view <= view_ || new_view <= highest_view_change_sent_) return;
    highest_view_change_sent_ = new_view;
    in_view_change_ = true;
    ++view_changes_;
    // An uncut batch must survive the view change: fold it back into the
    // forwarded set so it is re-proposed once the new view starts.
    stash_pending_batch();

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();

    ViewChange vc;
    vc.new_view = new_view;
    vc.replica = id_;
    vc.last_stable = last_stable_;
    for (const auto& [seq, entry] : log_) {
        if (entry.prepare) vc.prepared.push_back(*entry.prepare);
    }
    vc.cert = trinx_->certify_independent(crypto, vc.certified_view());

    view_changes_rx_[new_view][id_] = vc;
    broadcast(outbox, Message(vc));
    maybe_assemble_new_view(crypto, outbox, new_view);
    outbox.flush(meter);
    // Keep a timer running: if this view change stalls (lost messages,
    // crashed prospective leader), the timer escalates to the next view.
    arm_progress_timer();
}

void Replica::handle_view_change(enclave::CostedCrypto& crypto,
                                 net::Outbox& outbox,
                                 ViewChange&& view_change) {
    if (view_change.new_view <= view_) return;
    if (view_change.replica >= static_cast<std::uint32_t>(config_.n())) {
        return;
    }
    if (!trinx_->verify_independent(crypto, view_change.replica,
                                    view_change.certified_view(),
                                    view_change.cert)) {
        return;
    }

    const ViewNumber v = view_change.new_view;
    view_changes_rx_[v][view_change.replica] = std::move(view_change);

    // Join the view change (a certified VC proves someone suspects the
    // leader; with crash-only trusted parts one vote is enough for us).
    if (v > highest_view_change_sent_) start_view_change(v);

    maybe_assemble_new_view(crypto, outbox, v);
}

void Replica::maybe_assemble_new_view(enclave::CostedCrypto& crypto,
                                      net::Outbox& outbox, ViewNumber view) {
    if (config_.leader_of(view) != id_) return;
    const auto it = view_changes_rx_.find(view);
    if (it == view_changes_rx_.end() ||
        static_cast<int>(it->second.size()) < config_.quorum()) {
        return;
    }
    if (view_ >= view) return;  // already moved on

    NewView nv;
    nv.view = view;
    nv.replica = id_;

    SequenceNumber max_stable = 0;
    std::map<SequenceNumber, Prepare> union_prepared;
    for (const auto& [replica, vc] : it->second) {
        nv.proofs.push_back(vc);
        max_stable = std::max(max_stable, vc.last_stable);
        for (const Prepare& p : vc.prepared) {
            const auto existing = union_prepared.find(p.seq);
            if (existing == union_prepared.end() ||
                existing->second.view < p.view) {
                union_prepared[p.seq] = p;
            }
        }
    }

    nv.start_seq = max_stable + 1;

    // Adopt the new view locally before re-certifying so the fresh
    // counters line up with expected_counter().
    view_ = view;
    view_start_ = nv.start_seq;
    next_seq_ = nv.start_seq;
    in_view_change_ = false;
    log_.clear();

    SequenceNumber max_seq = max_stable;
    for (const auto& [seq, p] : union_prepared) {
        max_seq = std::max(max_seq, seq);
    }

    for (SequenceNumber seq = nv.start_seq; seq <= max_seq; ++seq) {
        Prepare fresh;
        fresh.view = view_;
        fresh.seq = seq;
        fresh.replica = id_;
        const auto found = union_prepared.find(seq);
        if (found != union_prepared.end()) {
            fresh.batch = found->second.batch;  // whole batch, as prepared
        } else {
            Request noop;
            noop.flags = kFlagNoop;  // fill the counter gap
            fresh.batch.requests.push_back(std::move(noop));
        }
        (void)fresh.batch.digest_with(crypto);
        const auto certified = trinx_->certify_continuing(
            crypto, prepare_counter_id(), fresh.certified_view());
        fresh.counter_value = certified.value;
        fresh.cert = certified.certificate;
        nv.reproposed.push_back(fresh);

        auto& entry = log_[seq];
        entry.prepare = fresh;
        // Slots we already executed before the view change must not look
        // pending — try_execute() starts above last_executed_ and would
        // never clear them, leaving the progress timer firing forever.
        if (seq <= last_executed_) entry.executed = true;
        ++next_seq_;
    }
    rebuild_in_flight();  // the log was replaced wholesale above

    nv.cert = trinx_->certify_independent(crypto, nv.certified_view());
    broadcast(outbox, Message(nv));
    try_execute(crypto, outbox);
    reissue_forwarded(crypto, outbox);
    // The view can start above what we executed when the quorum stabilized
    // (and garbage-collected) a checkpoint we never reached; ordinary
    // commits can no longer fill that gap — fetch a snapshot.
    if (view_start_ > last_executed_ + 1) {
        begin_state_transfer(crypto, outbox);
    }
    arm_progress_timer();
}

void Replica::reissue_forwarded(enclave::CostedCrypto& crypto,
                                net::Outbox& outbox) {
    // Requests we accepted from clients may have died with the old
    // leader: order them ourselves (new leader) or re-forward them.
    const auto pending = forwarded_;
    for (const auto& [id, request] : pending) {
        bool in_log = false;
        for (const auto& [seq, entry] : log_) {
            if (!entry.prepare) continue;
            for (const Request& member : entry.prepare->batch.requests) {
                if (member.id == id) {
                    in_log = true;
                    break;
                }
            }
            if (in_log) break;
        }
        if (in_log) continue;
        if (is_leader()) {
            enqueue_for_batch(crypto, outbox, request);
        } else {
            send_to(outbox, config_.leader_of(view_), Message(request));
        }
    }
}

void Replica::handle_new_view(enclave::CostedCrypto& crypto,
                              net::Outbox& outbox, NewView&& new_view) {
    if (new_view.view <= view_) return;
    if (new_view.replica != config_.leader_of(new_view.view)) return;
    if (!trinx_->verify_independent(crypto, new_view.replica,
                                    new_view.certified_view(),
                                    new_view.cert)) {
        return;
    }
    // The proofs must contain f+1 valid view changes for this view.
    std::set<std::uint32_t> voters;
    for (const ViewChange& vc : new_view.proofs) {
        if (vc.new_view != new_view.view) continue;
        if (!trinx_->verify_independent(crypto, vc.replica,
                                        vc.certified_view(), vc.cert)) {
            continue;
        }
        voters.insert(vc.replica);
    }
    if (static_cast<int>(voters.size()) < config_.quorum()) return;

    // A deposed leader may still hold an uncut batch (the view changed
    // under it without it ever suspecting anyone): those requests go back
    // into the forwarded set and are re-issued below.
    stash_pending_batch();

    view_ = new_view.view;
    view_start_ = new_view.start_seq;
    next_seq_ = new_view.start_seq;
    in_view_change_ = false;
    log_.clear();

    // Process the re-proposed prepares through the normal path (they carry
    // fresh certificates from the new leader).
    for (Prepare& p : new_view.reproposed) {
        handle_prepare(crypto, outbox, std::move(p));
    }
    // Reproposed slots we already executed before the view change must not
    // look pending — try_execute() starts above last_executed_ and would
    // never clear them, leaving the progress timer firing forever.
    for (auto& [seq, entry] : log_) {
        if (seq <= last_executed_) entry.executed = true;
    }
    rebuild_in_flight();  // the log was replaced wholesale above
    reissue_forwarded(crypto, outbox);
    // Sequence gap below the new view's start: the quorum stabilized a
    // checkpoint we never reached (e.g. we were partitioned through it)
    // and garbage-collected the prefix, so commits can no longer fill the
    // hole — fetch a snapshot.
    if (view_start_ > last_executed_ + 1) {
        begin_state_transfer(crypto, outbox);
    }
    arm_progress_timer();
}

// ---------------------------------------------------------- state transfer

void Replica::restart(ServicePtr fresh_service) {
    TROXY_ASSERT(fresh_service != nullptr, "restart needs a fresh service");
    service_ = std::move(fresh_service);
    faults_ = FaultProfile{};

    view_ = 0;
    view_start_ = 1;
    next_seq_ = 1;
    last_executed_ = 0;
    last_stable_ = 0;
    log_.clear();
    clients_.clear();
    checkpoint_votes_.clear();
    own_checkpoints_.clear();
    forwarded_.clear();
    view_changes_rx_.clear();
    stable_proof_.clear();
    own_chunks_.clear();
    transfer_.reset();
    // chunk_store_ deliberately survives: it models the untrusted on-disk
    // snapshot area, and every chunk in it is re-verified against the
    // certified Merkle root before use — this is what makes the rejoin
    // incremental instead of a full re-download.
    highest_view_change_sent_ = 0;
    in_view_change_ = false;
    timer_armed_ = false;
    ++timer_generation_;  // invalidate timers armed before the crash
    ++state_timer_generation_;
    state_responses_.clear();
    awaiting_state_ = false;
    pending_batch_.clear();
    in_flight_.clear();
    batch_timer_armed_ = false;
    ++batch_timer_generation_;  // invalidate batch timers from before
    executed_since_checkpoint_ = 0;

    begin_rejoin();
}

void Replica::begin_rejoin() {
    rejoining_ = true;
    awaiting_state_ = true;

    enclave::CostMeter meter;
    enclave::CostedCrypto crypto(profile_, meter);
    net::Outbox outbox = make_outbox();
    request_state_transfer(crypto, outbox);
    outbox.flush(meter);
    arm_state_transfer_timer();
}

void Replica::request_state_transfer(enclave::CostedCrypto& crypto,
                                     net::Outbox& outbox) {
    StateRequest request;
    request.replica = id_;
    request.have = last_stable_;
    // Advertise every durable chunk (old checkpoints and partial-transfer
    // progress alike): responders skip these, so a retry resumes where the
    // last attempt stopped and an incremental rejoin ships only the delta.
    request.have_chunks.reserve(
        std::min(chunk_store_.size(), kMaxAdvertisedChunks));
    for (const auto& [key, chunk] : chunk_store_) {
        if (request.have_chunks.size() >= kMaxAdvertisedChunks) break;
        crypto::Sha256Digest d;
        std::copy(key.begin(), key.end(), d.begin());
        request.have_chunks.push_back(d);
    }
    request.cert =
        trinx_->certify_independent(crypto, request.certified_view());
    broadcast(outbox, Message(request));
}

void Replica::begin_state_transfer(enclave::CostedCrypto& crypto,
                                   net::Outbox& outbox) {
    if (awaiting_state_) return;  // a transfer is already in flight
    awaiting_state_ = true;
    request_state_transfer(crypto, outbox);
    arm_state_transfer_timer();
}

void Replica::arm_state_transfer_timer() {
    const std::uint64_t generation = ++state_timer_generation_;
    fabric_.simulator().after(config_.state_transfer_retry, [this,
                                                             generation]() {
        if (generation != state_timer_generation_) return;
        if (faults_.crashed) return;
        if (!rejoining_ && !awaiting_state_) return;

        // A retry with partial progress is a resume, not a restart: the
        // re-sent StateRequest advertises every chunk already banked.
        if (transfer_ && transfer_->received > 0 &&
            !transfer_->resume_counted) {
            transfer_->resume_counted = true;
            ++state_stats_.transfers_resumed;
        }

        enclave::CostMeter meter;
        enclave::CostedCrypto crypto(profile_, meter);
        net::Outbox outbox = make_outbox();
        request_state_transfer(crypto, outbox);
        outbox.flush(meter);
        arm_state_transfer_timer();
    });
}

void Replica::handle_state_request(enclave::CostedCrypto& crypto,
                                   net::Outbox& outbox,
                                   StateRequest&& request) {
    if (request.replica >= static_cast<std::uint32_t>(config_.n())) return;
    if (request.replica == id_) return;
    if (!trinx_->verify_independent(crypto, request.replica,
                                    request.certified_view(),
                                    request.cert)) {
        return;
    }

    StateResponse base;
    base.replica = id_;
    base.view = view_;
    base.view_start = view_start_;
    base.last_stable = last_stable_;
    if (last_stable_ == 0) {
        // Nothing stable yet: bare view coordinates, adopted by the
        // requester once f+1 responders agree on the tuple.
        base.root = merkle_root(crypto, {});
        base.cert =
            trinx_->certify_independent(crypto, base.certified_view());
        send_to(outbox, request.replica, Message(base));
        return;
    }

    const auto it = own_chunks_.find(last_stable_);
    // Our chunked snapshot and its stability proof should always exist
    // for the current stable checkpoint; if either is missing, stay
    // silent rather than answer with state we cannot prove.
    if (it == own_chunks_.end()) return;
    if (static_cast<int>(stable_proof_.size()) < config_.quorum()) {
        return;
    }
    const ChunkedSnapshot& chunked = it->second;
    base.root = chunked.root;
    base.manifest = chunked.manifest;
    base.proof = stable_proof_;
    // ONE certificate serves the whole stream: it covers only the
    // coordinates and the root, and every chunk verifies against the
    // manifest which folds to that root.
    base.cert = trinx_->certify_independent(crypto, base.certified_view());

    // Incremental: withhold every chunk the requester advertised.
    std::set<Bytes> has;
    for (const crypto::Sha256Digest& d : request.have_chunks) {
        has.insert(store_key(d));
    }
    std::vector<std::uint32_t> to_send;
    to_send.reserve(chunked.chunks.size());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(chunked.chunks.size()); ++i) {
        if (has.contains(store_key(chunked.manifest[i]))) {
            ++state_stats_.chunks_skipped;
        } else {
            to_send.push_back(i);
        }
    }
    state_stats_.bytes_full += chunked.total_bytes();

    if (to_send.empty()) {
        // The requester already holds every chunk; the manifest + proof
        // alone let it assemble and adopt.
        send_to(outbox, request.replica, Message(base));
        return;
    }
    for (std::size_t start = 0; start < to_send.size();
         start += config_.state_chunks_per_message) {
        const std::size_t end = std::min(
            start + config_.state_chunks_per_message, to_send.size());
        if (config_.wire_zero_copy) {
            send_state_window(outbox, base, chunked, to_send, start, end,
                              request.replica);
            continue;
        }
        StateResponse msg = base;
        for (std::size_t j = start; j < end; ++j) {
            const std::uint32_t idx = to_send[j];
            msg.chunk_index.push_back(idx);
            msg.chunks.push_back(*chunked.chunks[idx]);
            state_stats_.bytes_sent += chunked.chunks[idx]->size();
            ++state_stats_.chunks_sent;
        }
        send_to(outbox, request.replica, Message(msg));
    }
}

void Replica::send_state_window(net::Outbox& outbox,
                                const StateResponse& base,
                                const ChunkedSnapshot& chunked,
                                const std::vector<std::uint32_t>& to_send,
                                std::size_t start, std::size_t end,
                                std::uint32_t requester) {
    // Zero-copy chunk stream: the frame is a FragmentChain — the framing
    // head and proof tail written into pooled buffers, each chunk payload
    // referenced in place as a Shared fragment under an 8-byte inline
    // (index ‖ length) prefix. Materializing the chain reproduces
    // wrap(Hybster, encode_message(StateResponse)) byte for byte, so a
    // chain-unaware receiver (every host today, via the materialize
    // fallback) decodes it exactly like the flat path.
    sim::BufferPool& pool = outbox.fabric().network().pool();
    sim::FragmentChain chain = outbox.fabric().network().acquire_chain();
    Writer head(pool.acquire_empty(
        2 + 32 + crypto::kSha256DigestSize * (1 + base.manifest.size()) + 8));
    head.u8(static_cast<std::uint8_t>(net::Channel::Hybster));
    head.u8(static_cast<std::uint8_t>(MsgType::StateResponse));
    base.encode_head(head, end - start);
    chain.append_owned(std::move(head).take());
    for (std::size_t j = start; j < end; ++j) {
        const std::uint32_t idx = to_send[j];
        const auto len =
            static_cast<std::uint32_t>(chunked.chunks[idx]->size());
        std::uint8_t prefix[8];
        for (int b = 0; b < 4; ++b) {
            prefix[b] = static_cast<std::uint8_t>(idx >> (8 * b));
            prefix[4 + b] = static_cast<std::uint8_t>(len >> (8 * b));
        }
        chain.append_inline(ByteView(prefix, sizeof prefix));
        chain.append_shared(chunked.chunks[idx]);
        state_stats_.bytes_sent += chunked.chunks[idx]->size();
        ++state_stats_.chunks_sent;
    }
    Writer tail(pool.acquire_empty(64));
    base.encode_tail(tail);
    chain.append_owned(std::move(tail).take());
    outbox.send_chain(config_.node_of(requester), std::move(chain));
}

void Replica::handle_state_response(enclave::CostedCrypto& crypto,
                                    net::Outbox& outbox,
                                    StateResponse&& response) {
    if (!rejoining_ && !awaiting_state_) return;
    if (response.replica >= static_cast<std::uint32_t>(config_.n())) return;
    if (response.replica == id_) return;
    if (!trinx_->verify_independent(crypto, response.replica,
                                    response.certified_view(),
                                    response.cert)) {
        return;
    }
    // A live-but-lagging replica only accepts snapshots that move it
    // forward; a rejoiner (nothing executed) also accepts "no checkpoint
    // yet" responses — the forced view change then reproposes the full
    // log, which is the catch-up path for restarts before checkpoint one.
    if (!rejoining_ && response.last_stable <= last_executed_) return;

    if (response.last_stable == 0) {
        // No checkpoint anywhere yet: there is no proof to carry, so the
        // bare view coordinates are only adopted once f+1 responders agree
        // on the full tuple — a single Byzantine responder can neither
        // roll the requester back nor teleport it into a fictional view.
        if (response.view < view_) return;
        const auto key = std::make_tuple(
            response.view, response.view_start, response.last_stable,
            store_key(response.root));
        auto& [voters, sample] = state_responses_[key];
        if (voters.empty()) sample = response;
        voters.insert(response.replica);

        if (static_cast<int>(voters.size()) >= config_.quorum()) {
            const StateResponse adopted = sample;
            adopt_state(crypto, outbox, adopted.view, adopted.view_start, 0,
                        Bytes{}, ChunkedSnapshot{}, {});
        }
        return;
    }

    // Chunked stream message. The manifest must fold to the advertised
    // root (domain-separated hashing makes this binding injective), and
    // f+1 distinct certified checkpoint votes for (last_stable, root)
    // prove the manifest describes a real checkpoint — at least one vote
    // comes from a correct replica. A single proven responder therefore
    // suffices, which is essential when only one peer still holds the
    // state (e.g. one replica restarts while another lags).
    if (response.manifest.empty()) return;
    if (!digests_equal(merkle_root(crypto, response.manifest),
                       response.root)) {
        return;
    }
    std::set<std::uint32_t> proof_voters;
    for (const CheckpointMsg& vote : response.proof) {
        if (vote.seq != response.last_stable) continue;
        if (vote.replica >= static_cast<std::uint32_t>(config_.n())) {
            continue;
        }
        if (!digests_equal(vote.state_digest, response.root)) continue;
        if (!trinx_->verify_independent(crypto, vote.replica,
                                        vote.certified_view(), vote.cert)) {
            continue;
        }
        proof_voters.insert(vote.replica);
    }
    if (static_cast<int>(proof_voters.size()) < config_.quorum()) return;

    // Install or continue transfer progress. An in-flight transfer is
    // only displaced by a *newer* proven checkpoint (the cluster moved on
    // mid-transfer); equal-seq messages from any responder, including
    // retries, all feed the same progress record.
    if (transfer_ && (transfer_->seq != response.last_stable ||
                      !digests_equal(transfer_->root, response.root))) {
        if (response.last_stable <= transfer_->seq) return;
        transfer_.reset();
    }
    if (!transfer_) {
        TransferProgress progress;
        progress.seq = response.last_stable;
        progress.root = response.root;
        progress.manifest = response.manifest;
        progress.proof = response.proof;
        progress.view = response.view;
        progress.view_start = response.view_start;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(progress.manifest.size()); ++i) {
            if (chunk_store_.contains(store_key(progress.manifest[i]))) {
                ++state_stats_.chunks_reused;
            } else {
                progress.missing.insert(i);
            }
        }
        transfer_ = std::move(progress);
    } else if (response.view > transfer_->view) {
        transfer_->view = response.view;
        transfer_->view_start = response.view_start;
    }

    // Bank every new chunk that verifies against the manifest.
    for (std::size_t j = 0; j < response.chunks.size(); ++j) {
        const std::uint32_t idx = response.chunk_index[j];
        if (idx >= transfer_->manifest.size()) continue;
        if (!transfer_->missing.contains(idx)) continue;
        const crypto::Sha256Digest leaf =
            chunk_leaf_hash(crypto, response.chunks[j]);
        if (!digests_equal(leaf, transfer_->manifest[idx])) continue;
        chunk_store_[store_key(leaf)] =
            std::make_shared<const Bytes>(std::move(response.chunks[j]));
        transfer_->missing.erase(idx);
        ++transfer_->received;
        ++state_stats_.chunks_received;
    }

    if (transfer_->missing.empty()) complete_transfer(crypto, outbox);
}

void Replica::complete_transfer(enclave::CostedCrypto& crypto,
                                net::Outbox& outbox) {
    // Banked chunks normally all sit in the durable store, but a
    // live-lagging replica can stabilize its own checkpoint mid-transfer,
    // which rebuilds the store and may evict them. Re-mark whatever is
    // gone as missing and let the retry re-fetch it.
    bool incomplete = false;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(transfer_->manifest.size()); ++i) {
        if (!chunk_store_.contains(store_key(transfer_->manifest[i]))) {
            transfer_->missing.insert(i);
            incomplete = true;
        }
    }
    if (incomplete) return;

    TransferProgress progress = std::move(*transfer_);
    transfer_.reset();

    ChunkedSnapshot chunked;
    chunked.root = progress.root;
    chunked.manifest = progress.manifest;
    Bytes snapshot;
    chunked.chunks.reserve(progress.manifest.size());
    for (const crypto::Sha256Digest& leaf : progress.manifest) {
        const auto it = chunk_store_.find(store_key(leaf));
        snapshot.insert(snapshot.end(), it->second->begin(),
                        it->second->end());
        chunked.chunks.push_back(it->second);
    }
    adopt_state(crypto, outbox, progress.view, progress.view_start,
                progress.seq, std::move(snapshot), std::move(chunked),
                std::move(progress.proof));
}

void Replica::rebuild_chunk_store(const ChunkedSnapshot& chunked) {
    chunk_store_.clear();
    for (std::size_t i = 0; i < chunked.chunks.size(); ++i) {
        chunk_store_[store_key(chunked.manifest[i])] = chunked.chunks[i];
    }
}

void Replica::adopt_state(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                          ViewNumber view, SequenceNumber view_start,
                          SequenceNumber last_stable, Bytes snapshot,
                          ChunkedSnapshot chunked,
                          std::vector<CheckpointMsg> proof) {
    ++state_transfers_;
    const bool was_rejoining = rejoining_;
    // A live replica that merely lagged keeps its own view coordinates
    // when they are already ahead of the responder's (a proven snapshot is
    // valid regardless of the view it was reported from).
    const bool same_view = view == view_ && view_start == view_start_;
    rejoining_ = false;
    awaiting_state_ = false;
    state_responses_.clear();
    transfer_.reset();
    ++state_timer_generation_;  // cancel the retry timer

    if (view >= view_) {
        view_ = view;
        view_start_ = view_start;
    }
    last_stable_ = std::max(last_stable_, last_stable);
    if (last_stable > last_executed_) {
        last_executed_ = last_stable;
        // The snapshot is the state right after the checkpoint that reset
        // the peers' request counters, so ours resets too.
        executed_since_checkpoint_ = 0;
    }
    next_seq_ = std::max(next_seq_, last_stable + 1);
    log_.erase(log_.begin(), log_.upper_bound(last_stable));
    rebuild_in_flight();  // possibly unexecuted entries were dropped
    if (last_stable > 0) {
        service_->restore(snapshot);
        rebuild_chunk_store(chunked);
        own_checkpoints_[last_stable] = std::move(snapshot);
        own_chunks_[last_stable] = std::move(chunked);
        stable_proof_ = std::move(proof);
        checkpoint_votes_.erase(
            checkpoint_votes_.begin(),
            checkpoint_votes_.upper_bound(last_stable - 1));
    }
    // Match highest_view_change_sent_ to the adopted view so the forced
    // view change below is not suppressed by a pre-crash value.
    highest_view_change_sent_ =
        std::max(highest_view_change_sent_, view_);
    in_view_change_ = false;

    if (!was_rejoining && same_view) {
        // We fell behind inside the view we are already in (typically a
        // NewView whose start was above our execution point): the log tail
        // above the checkpoint is still valid and our counters for this
        // view are in sync, so simply resume executing.
        try_execute(crypto, outbox);
        arm_progress_timer();
        return;
    }

    // The snapshot restores the service, but our ordering counters are
    // still desynchronized from the quorum (restarted, or the quorum moved
    // views while we waited). A view change fixes both wholesale: the
    // fresh view gives everyone new counter ids starting from a common
    // view_start, and the new leader reproposes the certified log tail
    // above the checkpoint, which is exactly the suffix we still miss.
    start_view_change(view_ + 1);
}

}  // namespace troxy::hybster
