// Hybster wire messages.
//
// All structures encode to length-delimited binary via common/serialize;
// decode validates sizes and throws DecodeError on malformed input, which
// handlers translate into "discard the message".
//
// Certificates: PREPAREs and COMMITs carry trusted-counter certificates
// (TrinX) that bind the message to one counter value — within a view,
// counter value and sequence number are related by value = seq -
// view_start + 1, so a Byzantine replica cannot certify two different
// messages for the same slot (Hybster's anti-equivocation core). REPLYs
// carry an *independent* certificate from the replica's trusted subsystem
// (the Troxy in a Troxy deployment; §IV-A requires the voter to only
// count replies authenticated by the sender's Troxy).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "enclave/meter.hpp"
#include "enclave/trinx.hpp"
#include "hybster/config.hpp"

namespace troxy::hybster {

using enclave::Certificate;
using enclave::CounterValue;

enum class MsgType : std::uint8_t {
    Request = 1,
    Prepare = 2,
    Commit = 3,
    Reply = 4,
    ViewChange = 5,
    NewView = 6,
    Checkpoint = 7,
    StateRequest = 8,
    StateResponse = 9,
};

/// Identifies a logical client request: (reply destination, number).
struct RequestId {
    sim::NodeId client = 0;
    std::uint64_t number = 0;

    auto operator<=>(const RequestId&) const = default;
};

/// Hash for unordered containers keyed by RequestId.
struct RequestIdHash {
    std::size_t operator()(const RequestId& id) const noexcept {
        // splitmix64-style finalizer over both fields.
        std::uint64_t x =
            (static_cast<std::uint64_t>(id.client) << 32) ^ id.number;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

struct Request {
    RequestId id;
    /// Bit 0: read-only; bit 1: client asks for optimistic (non-ordered)
    /// read execution — the PBFT-like baseline read optimization;
    /// bit 2: protocol no-op (view-change gap filler).
    std::uint8_t flags = 0;
    Bytes payload;
    /// Authenticator over the fields above. Legacy BFT clients attach one
    /// certificate per replica (index = replica id, pairwise keys); a
    /// Troxy attaches a single trusted-subsystem certificate.
    std::vector<Certificate> auth;

    static constexpr std::uint8_t kFlagRead = 0x01;
    static constexpr std::uint8_t kFlagOptimistic = 0x02;
    static constexpr std::uint8_t kFlagNoop = 0x04;

    [[nodiscard]] bool is_read() const noexcept { return flags & kFlagRead; }
    [[nodiscard]] bool is_optimistic() const noexcept {
        return flags & kFlagOptimistic;
    }

    /// Bytes covered by the certificate.
    [[nodiscard]] Bytes signed_view() const;
    void encode(Writer& w) const;
    static Request decode(Reader& r);

    /// Digest identifying this request in commits/replies. Memoized: the
    /// first call hashes signed_view(), later calls return the cached
    /// digest, so a request must not be mutated after its digest is taken.
    [[nodiscard]] const crypto::Sha256Digest& digest() const;

    /// Like digest(), but charges the hash cost to `crypto` — once: a
    /// cache hit costs nothing. All metered protocol paths use this so
    /// each request is hashed (and billed) exactly once per replica.
    [[nodiscard]] const crypto::Sha256Digest& digest_with(
        enclave::CostedCrypto& crypto) const;

  private:
    mutable std::optional<crypto::Sha256Digest> digest_cache_;
};

/// An ordered group of client requests proposed under one sequence number.
/// The whole batch is certified by a single trusted-counter certification
/// and identified by one digest, amortizing the per-slot protocol cost
/// across its members (a single-request batch reproduces the unbatched
/// message flow and digest byte-for-byte).
struct Batch {
    std::vector<Request> requests;

    [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
    [[nodiscard]] bool empty() const noexcept { return requests.empty(); }

    /// Digest ordering the batch: for one member, the member's own request
    /// digest (keeps batch=1 identical to the pre-batching wire contract);
    /// for k > 1 members, SHA-256 over the k concatenated member digests.
    /// The digest alone does NOT bind the member count (a crafted request
    /// whose signed bytes equal a concatenation of digests would collide),
    /// so every certified view pairs it with the count — see Prepare/
    /// Commit::certified_view() and Replica::committed().
    /// Memoized like Request::digest().
    [[nodiscard]] const crypto::Sha256Digest& digest() const;

    /// Charged variant: bills each member hash plus the combining hash to
    /// `crypto` exactly once across all calls.
    [[nodiscard]] const crypto::Sha256Digest& digest_with(
        enclave::CostedCrypto& crypto) const;

    void encode(Writer& w) const;
    static Batch decode(Reader& r);

  private:
    mutable std::optional<crypto::Sha256Digest> digest_cache_;
};

struct Prepare {
    ViewNumber view = 0;
    SequenceNumber seq = 0;
    std::uint32_t replica = 0;  // the leader
    CounterValue counter_value = 0;
    Batch batch;
    Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static Prepare decode(Reader& r);
};

struct Commit {
    ViewNumber view = 0;
    SequenceNumber seq = 0;
    std::uint32_t replica = 0;
    CounterValue counter_value = 0;
    /// Member count of the batch being committed. Certified alongside the
    /// digest: the (count, digest) pair pins the batch *structure*, so a
    /// certificate over a k-member batch can never double as one over a
    /// single request whose bytes collide with the combining-hash input.
    std::uint32_t batch_size = 0;
    crypto::Sha256Digest batch_digest{};
    Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static Commit decode(Reader& r);
};

struct Reply {
    enum class Kind : std::uint8_t { Ordered = 0, Optimistic = 1 };

    Kind kind = Kind::Ordered;
    ViewNumber view = 0;
    SequenceNumber seq = 0;
    RequestId request_id;
    /// Hash of the original request (§IV-A change (2): lets the voting
    /// Troxy identify the cache entry a write outdates).
    crypto::Sha256Digest request_digest{};
    Bytes result;
    std::uint32_t replica = 0;
    /// Independent certificate by the replica's trusted subsystem.
    Certificate cert{};

    /// Bytes covered by the certificate (everything except the cert).
    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static Reply decode(Reader& r);
};

struct CheckpointMsg {
    SequenceNumber seq = 0;
    crypto::Sha256Digest state_digest{};
    std::uint32_t replica = 0;
    Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static CheckpointMsg decode(Reader& r);
};

struct ViewChange {
    ViewNumber new_view = 0;
    std::uint32_t replica = 0;
    SequenceNumber last_stable = 0;  // latest stable checkpoint
    /// Certified prepares the replica has seen above the checkpoint.
    std::vector<Prepare> prepared;
    Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static ViewChange decode(Reader& r);
};

struct NewView {
    ViewNumber view = 0;
    std::uint32_t replica = 0;  // the new leader
    SequenceNumber start_seq = 0;
    std::vector<ViewChange> proofs;
    /// Requests the new leader re-proposes, in sequence order starting at
    /// start_seq (fresh prepares are issued by the new leader).
    std::vector<Prepare> reproposed;
    Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static NewView decode(Reader& r);
};

/// Asks peers for a state-transfer snapshot: sent by a replica that
/// restarted empty (crash-recovery rejoin) or detected, via a stable
/// checkpoint it cannot reach, that it fell behind the cluster.
/// `have_chunks` advertises the snapshot chunk hashes the requester
/// already holds in its durable chunk store (from an earlier checkpoint
/// or a partially completed transfer), so responders ship only what is
/// missing — the Merkle-incremental transfer path.
struct StateRequest {
    std::uint32_t replica = 0;       // the requester
    SequenceNumber have = 0;         // requester's latest stable checkpoint
    std::vector<crypto::Sha256Digest> have_chunks;
    Certificate cert{};

    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    static StateRequest decode(Reader& r);
};

/// Answer to a StateRequest: one message of the responder's chunked
/// checkpoint stream plus its current view coordinates. The stream is
/// self-certifying: `root` is the Merkle root over `manifest` (the chunk
/// leaf hashes in order) and `proof` carries the f+1 certified
/// CheckpointMsgs whose state digest IS that root, so ONE responder
/// suffices — at least one vote in a valid proof comes from a correct
/// replica, hence the manifest describes a real checkpoint of
/// `last_stable`. Each chunk verifies individually against the manifest,
/// which lets the requester accept chunks in any order, from any
/// responder, across retries. `chunk_index[i]` is the manifest position
/// of `chunks[i]`; chunks the requester advertised are skipped, so the
/// index list is generally non-contiguous. Responses with
/// last_stable == 0 carry no manifest or proof (nothing stable yet) and
/// the requester falls back to f+1 matching responses before adopting
/// the view coordinates.
struct StateResponse {
    std::uint32_t replica = 0;       // the responder
    ViewNumber view = 0;
    SequenceNumber view_start = 0;
    SequenceNumber last_stable = 0;  // snapshot's sequence number
    crypto::Sha256Digest root{};     // Merkle root == certified digest
    std::vector<crypto::Sha256Digest> manifest;
    std::vector<std::uint32_t> chunk_index;
    std::vector<Bytes> chunks;
    std::vector<CheckpointMsg> proof;
    Certificate cert{};

    /// Certified bytes: the coordinates plus the Merkle root only. The
    /// chunk payloads need no per-message certificate — they verify
    /// against the manifest and the manifest folds to the certified root
    /// — so a responder computes ONE certificate per transfer and reuses
    /// it across every message of the stream.
    [[nodiscard]] Bytes certified_view() const;
    void encode(Writer& w) const;
    /// Zero-copy framing split: encode() is byte-identical to
    /// encode_head(w, chunks.size()) ‖ per chunk (u32 index ‖ u32 length
    /// ‖ payload) ‖ encode_tail(w). A sender can therefore frame the
    /// chunk payloads as referenced fragments (inline index/length
    /// prefixes over shared chunk buffers) instead of copying them
    /// through a contiguous encode buffer.
    void encode_head(Writer& w, std::size_t chunk_count) const;
    void encode_tail(Writer& w) const;
    static StateResponse decode(Reader& r);
};

using Message = std::variant<Request, Prepare, Commit, Reply, CheckpointMsg,
                             ViewChange, NewView, StateRequest,
                             StateResponse>;

/// Serializes a message with its type tag.
Bytes encode_message(const Message& message);

/// Parses a message; nullopt on any malformed input.
std::optional<Message> decode_message(ByteView data);

}  // namespace troxy::hybster
