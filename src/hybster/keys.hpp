// Key-distribution helpers for experiment setup.
//
// Real deployments establish pairwise client↔replica secrets during
// connection setup; the simulation derives them from a master secret at
// *setup time* (trusted experiment code) and hands each party only the
// keys it is entitled to. Byzantine fault injection operates on protocol
// objects, which therefore can never sign with another party's identity.
#pragma once

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "crypto/hmac.hpp"
#include "sim/node.hpp"

namespace troxy::hybster {

/// Pairwise secret between a client node and replica `replica`.
inline Bytes client_replica_key(ByteView master, sim::NodeId client,
                                std::uint32_t replica) {
    Writer info;
    info.u32(client);
    info.u32(replica);
    return crypto::hkdf(to_bytes("troxy-client-key"), master, info.data(),
                        32);
}

}  // namespace troxy::hybster
