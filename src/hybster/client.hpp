// Traditional client-side BFT library — the component Troxy relocates to
// the server side.
//
// The client connects to every replica over a secure channel, attaches a
// per-replica authenticator to each request, sends the request to the
// current leader (broadcasting on retransmit so followers can trigger a
// view change against an unresponsive leader), and votes over the replies:
// a result is accepted once f+1 replies from distinct replicas carry the
// same request digest and result, each authenticated with the pairwise
// client↔replica secret (§II-A).
//
// With `optimistic_reads` the client additionally implements the
// PBFT-like read optimization the paper uses as baseline (§VI-C2): reads
// go to all replicas for immediate non-ordered execution; if the replies
// conflict (concurrent writes) the read is retried as a normal ordered
// request (§VI-C3).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "crypto/x25519.hpp"
#include "enclave/meter.hpp"
#include "hybster/config.hpp"
#include "hybster/messages.hpp"
#include "net/fabric.hpp"
#include "net/outbox.hpp"
#include "net/secure_channel.hpp"
#include "sim/cost.hpp"

namespace troxy::hybster {

class Client {
  public:
    struct Options {
        sim::Duration retransmit_timeout = sim::milliseconds(1000);
        /// Use the PBFT-like read optimization for read requests.
        bool optimistic_reads = false;
    };

    /// Called with the voted result and the view it was executed in.
    using Callback = std::function<void(Bytes result)>;

    /// `pinned_keys[r]` is replica r's channel identity key;
    /// `replica_keys[r]` the pairwise authentication secret with r.
    Client(net::Fabric& fabric, sim::Node& node, Config config,
           std::vector<crypto::X25519Key> pinned_keys,
           std::vector<Bytes> replica_keys, const sim::CostProfile& profile,
           Options options);

    /// Establishes secure channels to all replicas; `ready` fires once
    /// all handshakes completed.
    void start(std::function<void()> ready);

    /// Issues a request; `callback` fires once the result is trustworthy.
    void invoke(Bytes payload, bool is_read, Callback callback);

    /// Entry point for Channel::Client payloads addressed to this node.
    void on_message(sim::NodeId from, ByteView payload);

    [[nodiscard]] bool connected() const noexcept {
        return established_ == static_cast<int>(config_.n());
    }

    /// Number of optimistic reads that had to be retried ordered.
    [[nodiscard]] std::uint64_t read_conflicts() const noexcept {
        return read_conflicts_;
    }
    [[nodiscard]] std::uint64_t optimistic_attempts() const noexcept {
        return optimistic_attempts_;
    }

  private:
    struct Pending {
        Bytes payload;
        std::uint8_t flags = 0;
        Callback callback;
        /// replica → (digest ‖ result) key of its verified reply.
        std::map<std::uint32_t, Bytes> votes;
        std::map<Bytes, int> tally;
        bool done = false;
        std::uint64_t retransmits = 0;
    };

    void send_request(enclave::CostedCrypto& crypto, net::Outbox& outbox,
                      std::uint64_t number, bool broadcast);
    void handle_reply(enclave::CostedCrypto& crypto, Reply&& reply);
    void finish(std::uint64_t number, Pending& pending, Bytes result);
    /// Takes `failed` by value: the caller's map entry is erased inside,
    /// so the state must be moved out before that.
    void retry_ordered(std::uint64_t number, Pending failed);
    void arm_retransmit(std::uint64_t number);
    [[nodiscard]] Request build_request(enclave::CostedCrypto& crypto,
                                        std::uint64_t number,
                                        const Bytes& payload,
                                        std::uint8_t flags) const;

    net::Fabric& fabric_;
    sim::Node& node_;
    Config config_;
    std::vector<crypto::X25519Key> pinned_keys_;
    std::vector<Bytes> replica_keys_;
    const sim::CostProfile& profile_;
    Options options_;

    std::vector<std::optional<net::SecureChannelClient>> channels_;
    int established_ = 0;
    std::function<void()> ready_;

    std::uint64_t next_number_ = 1;
    std::map<std::uint64_t, Pending> pending_;
    std::uint32_t believed_leader_ = 0;
    std::uint64_t read_conflicts_ = 0;
    std::uint64_t optimistic_attempts_ = 0;
    std::uint64_t handshake_seed_ = 0;
};

}  // namespace troxy::hybster
