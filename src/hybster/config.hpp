// Static configuration of a Hybster group.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "sim/cost.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"

namespace troxy::hybster {

using ViewNumber = std::uint64_t;
using SequenceNumber = std::uint64_t;

struct Config {
    /// Tolerated Byzantine faults; the hybrid fault model needs 2f+1
    /// replicas (§III-B).
    int f = 1;

    /// Node ids of the replicas, index == replica id.
    std::vector<sim::NodeId> replicas;

    /// Ordered requests per checkpoint. Counted in *requests* (batch
    /// members), not sequence numbers, so batching does not stretch the
    /// distance between checkpoints; with batch_size_max = 1 the two
    /// notions coincide.
    SequenceNumber checkpoint_interval = 128;

    /// Maximum requests the leader orders under one Prepare/Commit round
    /// (one trusted-counter certification per batch). 1 = unbatched: the
    /// pre-batching message flow, request for request.
    std::size_t batch_size_max = 1;

    /// How long the leader holds an incomplete batch before cutting it
    /// (the max-delay bound: an idle system keeps single-request latency).
    /// 0 = cut immediately after every enqueue, i.e. batching disabled
    /// regardless of batch_size_max. Must stay well below
    /// view_change_timeout or followers will suspect a batching leader.
    sim::Duration batch_delay = 0;

    /// Coalesce each handler's outgoing burst into one Bundle frame per
    /// destination (one wire record instead of N). Off by default so the
    /// unbatched message flow stays byte-identical to the seed.
    bool coalesce_wire = false;

    /// Ship coalesced bursts as scatter-gather fragment chains instead of
    /// flattening them into one contiguous Bundle buffer. Wire bytes are
    /// identical; only copies and allocations disappear. Off by default
    /// so existing runs replay bit-identically.
    bool wire_zero_copy = false;

    /// Per-record transport send cost (syscall vs kernel-bypass doorbell)
    /// charged by each Outbox flush. The default none() charges nothing —
    /// the seed's implicit model.
    sim::TransportProfile transport = sim::TransportProfile::none();

    /// Modeled execution lanes per replica (state-machine parallelism).
    /// A committed batch is partitioned into conflict classes by the
    /// service's touched-key sets; disjoint classes run on parallel
    /// lanes and the batch's charged CPU time is the makespan of a
    /// greedy schedule instead of the serial sum. 1 = today's serial
    /// execution, cost- and wire-identical.
    std::size_t execution_lanes = 1;

    /// Let an EWMA of the leader's enqueue-time queue depth shrink the
    /// effective batch boundary below batch_size_max under light load, so
    /// an idle system keeps single-request latency while a loaded one
    /// still cuts full batches.
    bool adaptive_batching = false;

    /// How long a non-leader waits for an ordered request it knows about
    /// before suspecting the leader.
    sim::Duration view_change_timeout = sim::milliseconds(500);

    /// Retry interval for checkpoint state transfer while a restarted or
    /// lagging replica waits for f+1 matching snapshots. A retry re-sends
    /// the StateRequest with the chunk hashes already received, so a
    /// half-finished transfer resumes instead of restarting.
    sim::Duration state_transfer_retry = sim::milliseconds(250);

    /// Snapshot chunk size for Merkle-incremental state transfer: service
    /// checkpoints are split into chunks of this many bytes, hashed into
    /// a Merkle tree whose root is the certified checkpoint digest.
    std::size_t state_chunk_size = 4096;

    /// Maximum chunks shipped per StateResponse message; a transfer
    /// larger than this becomes a stream of responses.
    std::size_t state_chunks_per_message = 64;

    /// Shard identity in a partitioned deployment: this group serves the
    /// shard_id-th key range of shard_count. The defaults are the
    /// single-group identity, so unsharded deployments are untouched.
    /// Ships in the config (not derived) so per-group keys, counters and
    /// certificates can never be replayed across shards by a Byzantine
    /// router.
    int shard_id = 0;
    int shard_count = 1;

    [[nodiscard]] int n() const noexcept {
        return static_cast<int>(replicas.size());
    }

    /// Agreement quorum in the hybrid fault model: f+1.
    [[nodiscard]] int quorum() const noexcept { return f + 1; }

    [[nodiscard]] std::uint32_t leader_of(ViewNumber view) const noexcept {
        return static_cast<std::uint32_t>(view %
                                          static_cast<ViewNumber>(n()));
    }

    [[nodiscard]] sim::NodeId node_of(std::uint32_t replica) const {
        TROXY_ASSERT(replica < replicas.size(), "replica id out of range");
        return replicas[replica];
    }

    /// Replica id for a node id, or -1 if the node is not a replica.
    [[nodiscard]] int replica_of(sim::NodeId node) const noexcept {
        for (std::size_t i = 0; i < replicas.size(); ++i) {
            if (replicas[i] == node) return static_cast<int>(i);
        }
        return -1;
    }

    void validate() const {
        TROXY_ASSERT(n() == 2 * f + 1,
                     "hybrid fault model requires exactly 2f+1 replicas");
        TROXY_ASSERT(checkpoint_interval > 0, "checkpoint interval > 0");
        TROXY_ASSERT(batch_size_max >= 1, "batch size must be at least 1");
        // Batch::decode drops batches above 2^16 members; a leader allowed
        // to cut bigger ones would emit Prepares every follower discards.
        TROXY_ASSERT(batch_size_max <= (1u << 16),
                     "batch size must not exceed the wire limit (65536)");
        TROXY_ASSERT(batch_delay < view_change_timeout,
                     "batch delay must stay below the view-change timeout");
        TROXY_ASSERT(execution_lanes >= 1,
                     "at least one execution lane is required");
        TROXY_ASSERT(state_chunk_size >= 64,
                     "state chunks below 64 bytes are all hash overhead");
        TROXY_ASSERT(state_chunks_per_message >= 1,
                     "a state response must carry at least one chunk");
        TROXY_ASSERT(shard_count >= 1,
                     "a deployment has at least one shard");
        TROXY_ASSERT(shard_id >= 0 && shard_id < shard_count,
                     "shard id must lie in [0, shard_count)");
    }
};

}  // namespace troxy::hybster
